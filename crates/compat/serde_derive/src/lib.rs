//! Offline shim for `serde_derive`.
//!
//! This workspace builds without network access, so the real serde derive
//! macros are replaced by no-op derives: `#[derive(Serialize, Deserialize)]`
//! stays legal on every type, and swapping the real serde back in later is a
//! one-line Cargo.toml change. No serialization code is generated — nothing
//! in the workspace currently serializes through serde at runtime.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
