//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free locking API
//! (`lock()` returns the guard directly). Poisoning is ignored — a poisoned
//! lock yields its inner guard, matching parking_lot's behavior of not
//! poisoning at all.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
