//! Offline shim for `criterion`.
//!
//! Implements the criterion API surface the workspace's benches use
//! (`bench_function`, `benchmark_group` + `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `black_box`, `criterion_group!` /
//! `criterion_main!`) on top of a simple wall-clock loop: a short warm-up,
//! then timed batches until a time budget is spent, reporting the mean
//! iteration time to stdout. No statistics, plots or baselines — swap the
//! real criterion back in for those.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1_500);

/// How batched inputs are sized (accepted for source compatibility; the shim
/// always materializes one input per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// (total busy time, iterations) accumulated for the current benchmark.
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (untimed).
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE {
            black_box(routine());
            self.iterations += 1;
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            black_box(routine(setup()));
        }
        while self.elapsed < MEASURE {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("{name:<40} (no iterations)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / self.iterations as u128;
        println!(
            "{name:<40} {:>12} ns/iter ({} iterations)",
            per_iter, self.iterations
        );
    }
}

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
