//! Offline shim for `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over integer /
//! float ranges, and `seq::SliceRandom::shuffle` — on top of a xoshiro256++
//! generator seeded through SplitMix64. The streams differ from the real
//! `rand` crate (which uses ChaCha12 for `StdRng`), but they are deterministic
//! per seed, which is all the reproduction relies on.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface (the subset of `rand_core::RngCore` we need).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn next_f64<R: RngCore>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + next_f64(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions (the `shuffle`/`choose` subset).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(3..=9usize);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
