//! Offline shim for `proptest`.
//!
//! A miniature property-testing harness that is source-compatible with the
//! subset of proptest this workspace uses: the `proptest!` test macro (with
//! `#![proptest_config(...)]`), `prop_assert!` / `prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, range and charclass-regex strategies,
//! `.prop_map`, `proptest::collection::vec` and `proptest::option::of`.
//!
//! Differences from the real crate: no shrinking (a failing case panics with
//! the assertion message and the case index), and string strategies support
//! only the `[class]{m,n}` regex shape the workspace actually uses.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator driving every strategy (xoshiro-free SplitMix64;
/// statistical quality is ample for test-input generation).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a so each test gets its own deterministic stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct OneOf<V> {
    pub arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide - self.start as $wide) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as $wide + v as $wide) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(
    u8 => i128, u16 => i128, u32 => i128, u64 => i128, usize => i128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128
);

/// Charclass-regex string strategy: supports exactly the `[class]{m,n}` shape
/// (with `a-z` ranges inside the class), e.g. `"[a-zA-Z0-9 ]{0,12}"`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_charclass_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_charclass_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for `vec`: a fixed length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias towards Some, as the real crate does (3:1).
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}: {}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}: {}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed on case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn charclass_parser_handles_ranges_and_literals() {
        let (alphabet, min, max) = super::parse_charclass_pattern("[a-c9 ]{0,12}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', '9', ' ']);
        assert_eq!((min, max), (0, 12));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            n in 1usize..10,
            xs in crate::collection::vec(-5i64..5, 0..8),
            s in "[a-z]{1,6}",
            o in crate::option::of(0i32..3),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(xs.len() < 8);
            for x in &xs { prop_assert!((-5..5).contains(x)); }
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            if let Some(v) = o { prop_assert!((0..3).contains(&v)); }
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(-1i64),
            (0i64..10).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == -1 || (v % 2 == 0 && (0..20).contains(&v)));
        }
    }
}
