//! Offline shim for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names (trait + derive) so that
//! workspace code keeps the standard serde annotations while building fully
//! offline. The traits are intentionally empty: nothing in the workspace
//! serializes through serde at runtime yet, and replacing this shim with the
//! real crate is a one-line Cargo.toml change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
