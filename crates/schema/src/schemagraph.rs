//! The database schema graph `G_s` (§3.3): table vertices, column vertices,
//! table–table edges for primary/foreign-key joinability and table–column
//! edges. DSG's random walk runs on this graph; KQE later extends it to the
//! plan-iterative graph.

use crate::normalize::NormalizedDb;
use serde::{Deserialize, Serialize};
use tqs_sql::types::ColumnType;

/// A table–table edge: the two tables can be equi-joined on `column`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEdge {
    pub left_table: String,
    pub right_table: String,
    pub column: String,
}

/// A column vertex attached to its table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnVertex {
    pub table: String,
    pub column: String,
    pub ty: ColumnType,
    pub is_key: bool,
}

/// The schema graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchemaGraph {
    pub tables: Vec<String>,
    pub join_edges: Vec<JoinEdge>,
    pub columns: Vec<ColumnVertex>,
}

impl SchemaGraph {
    /// Build the schema graph from a normalized database: one table vertex
    /// per schema table, one join edge per foreign-key relationship, one
    /// column vertex per attribute column (RowID excluded).
    pub fn build(db: &NormalizedDb) -> SchemaGraph {
        let tables = db.table_names();
        let mut join_edges = Vec::new();
        for (from, cols, to, _ref_cols) in db.catalog.foreign_key_edges() {
            if cols.len() == 1 {
                join_edges.push(JoinEdge {
                    left_table: from,
                    right_table: to,
                    column: cols[0].clone(),
                });
            }
        }
        let mut columns = Vec::new();
        for m in &db.metas {
            for c in &m.columns {
                columns.push(ColumnVertex {
                    table: m.name.clone(),
                    column: c.clone(),
                    ty: db.attr_type(c).unwrap_or(ColumnType::Text),
                    is_key: m.implicit_pk.contains(c),
                });
            }
        }
        SchemaGraph {
            tables,
            join_edges,
            columns,
        }
    }

    /// Tables adjacent to `table` via a join edge, with the join column.
    pub fn neighbors(&self, table: &str) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for e in &self.join_edges {
            if e.left_table.eq_ignore_ascii_case(table) {
                out.push((e.right_table.clone(), e.column.clone()));
            } else if e.right_table.eq_ignore_ascii_case(table) {
                out.push((e.left_table.clone(), e.column.clone()));
            }
        }
        out
    }

    /// Columns of one table.
    pub fn columns_of(&self, table: &str) -> Vec<&ColumnVertex> {
        self.columns
            .iter()
            .filter(|c| c.table.eq_ignore_ascii_case(table))
            .collect()
    }

    /// Total vertex count (tables + columns), the |V| used by Algorithm 1's
    /// outer loop.
    pub fn vertex_count(&self) -> usize {
        self.tables.len() + self.columns.len()
    }

    /// Is the graph connected over join edges? A disconnected schema graph
    /// means random walks cannot reach some tables.
    pub fn is_join_connected(&self) -> bool {
        if self.tables.is_empty() {
            return true;
        }
        let mut visited = vec![false; self.tables.len()];
        let idx = |name: &str| {
            self.tables
                .iter()
                .position(|t| t.eq_ignore_ascii_case(name))
                .unwrap_or(0)
        };
        let mut stack = vec![0usize];
        visited[0] = true;
        while let Some(i) = stack.pop() {
            for (n, _) in self.neighbors(&self.tables[i]) {
                let j = idx(&n);
                if !visited[j] {
                    visited[j] = true;
                    stack.push(j);
                }
            }
        }
        visited.into_iter().all(|v| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{FdDiscoveryConfig, FdSet};
    use crate::normalize::normalize;
    use tqs_storage::widegen::{shopping_orders, ShoppingConfig};

    fn graph() -> (NormalizedDb, SchemaGraph) {
        let wide = shopping_orders(&ShoppingConfig {
            n_rows: 150,
            ..Default::default()
        });
        let fds = FdSet::discover(&wide, &FdDiscoveryConfig::default());
        let db = normalize(wide, &fds);
        let g = SchemaGraph::build(&db);
        (db, g)
    }

    #[test]
    fn tables_and_edges_follow_fks() {
        let (db, g) = graph();
        assert_eq!(g.tables.len(), db.metas.len());
        // the base table is joinable to the goods and user dimensions
        let base_neighbors = g.neighbors("T1");
        assert!(base_neighbors.iter().any(|(_, c)| c == "goodsId"));
        assert!(base_neighbors.iter().any(|(_, c)| c == "userId"));
        // the goods table is joinable to the goodsName table
        let goods = db.table_with_pk("goodsId").unwrap().name.clone();
        assert!(g.neighbors(&goods).iter().any(|(_, c)| c == "goodsName"));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let (_db, g) = graph();
        for e in &g.join_edges {
            assert!(g
                .neighbors(&e.left_table)
                .iter()
                .any(|(t, c)| t == &e.right_table && c == &e.column));
            assert!(g
                .neighbors(&e.right_table)
                .iter()
                .any(|(t, c)| t == &e.left_table && c == &e.column));
        }
    }

    #[test]
    fn column_vertices_have_types_and_key_flags() {
        let (db, g) = graph();
        let goods = db.table_with_pk("goodsId").unwrap().name.clone();
        let cols = g.columns_of(&goods);
        assert!(!cols.is_empty());
        assert!(cols.iter().any(|c| c.column == "goodsId" && c.is_key));
        assert!(cols.iter().any(|c| c.column == "goodsName" && !c.is_key));
        assert!(g.vertex_count() > g.tables.len());
    }

    #[test]
    fn shopping_schema_graph_is_connected() {
        let (_db, g) = graph();
        assert!(g.is_join_connected());
        // an empty graph is trivially connected
        assert!(SchemaGraph::default().is_join_connected());
    }
}
