//! Ground-truth result generation (§3.4).
//!
//! Given a join query over the normalized schema, fold the per-table join
//! bitmaps with the rules of Table 2, pull the surviving wide-table rows,
//! deduplicate, then apply the query's filters, grouping and projections with
//! the *reference* expression evaluator. The output is the result set a
//! correct DBMS must return (full-set verification), or must at least contain
//! (subset verification, used when a cross join is present).

use crate::normalize::NormalizedDb;
use std::collections::HashMap;
use tqs_sql::ast::{AggFunc, Expr, JoinType, SelectItem, SelectStmt};
use tqs_sql::eval::{
    eval_expr, eval_predicate, ChainedResolver, ColumnResolver, EvalError, ScopedRow,
    SubqueryHandler, SubqueryMemo,
};
use tqs_sql::value::{sql_compare, KeyBuf, SqlCmp, Value};
use tqs_storage::{ResultSet, Row};

/// Errors raised while recovering ground truth. `Unsupported` marks query
/// shapes outside the generator's contract (the orchestrator simply skips
/// them rather than reporting a bug).
#[derive(Debug, Clone, PartialEq)]
pub enum GtError {
    UnknownTable(String),
    Unsupported(String),
    Eval(EvalError),
}

impl std::fmt::Display for GtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GtError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            GtError::Unsupported(m) => write!(f, "unsupported for ground truth: {m}"),
            GtError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for GtError {}

impl From<EvalError> for GtError {
    fn from(e: EvalError) -> Self {
        GtError::Eval(e)
    }
}

/// The recovered ground truth for one query.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    pub result: ResultSet,
    /// Subset verification mode (cross join present): the DBMS result must
    /// contain every ground-truth row but may contain more.
    pub subset_mode: bool,
}

impl GroundTruth {
    /// Check a DBMS result set against this ground truth.
    pub fn matches(&self, observed: &ResultSet) -> bool {
        if self.subset_mode {
            self.result.subset_of(observed)
        } else {
            self.result.same_bag(observed)
        }
    }
}

/// Evaluator bound to one normalized database.
pub struct GroundTruthEvaluator<'a> {
    db: &'a NormalizedDb,
}

impl<'a> GroundTruthEvaluator<'a> {
    pub fn new(db: &'a NormalizedDb) -> Self {
        GroundTruthEvaluator { db }
    }

    /// `getGT(q)` from Algorithm 1.
    pub fn evaluate(&self, stmt: &SelectStmt) -> Result<GroundTruth, GtError> {
        if stmt.limit.is_some() {
            return Err(GtError::Unsupported("LIMIT changes cardinality".into()));
        }
        // Resolve bindings → schema tables; reject self-joins (the wide table
        // cannot disambiguate two copies of the same table).
        let mut bindings: Vec<(String, String)> = Vec::new(); // (binding, table)
        for tref in stmt.from.tables() {
            let table = self
                .db
                .meta(&tref.table)
                .ok_or_else(|| GtError::UnknownTable(tref.table.clone()))?
                .name
                .clone();
            if bindings.iter().any(|(_, t)| t.eq_ignore_ascii_case(&table)) {
                return Err(GtError::Unsupported(format!("self-join on {table}")));
            }
            bindings.push((tref.binding().to_string(), table));
        }

        // Visible bindings: everything except the right side of semi/anti
        // joins (those only filter).
        let mut visible: Vec<bool> = vec![true; bindings.len()];
        for (i, j) in stmt.from.joins.iter().enumerate() {
            if matches!(j.join_type, JoinType::Semi | JoinType::Anti) {
                visible[i + 1] = false;
            }
        }

        // Join conditions and output expressions may only reference visible
        // bindings (plus, for a join's own ON, its right-hand binding).
        for (i, j) in stmt.from.joins.iter().enumerate() {
            if let Some(on) = &j.on {
                for c in on.column_refs() {
                    if let Some(t) = &c.table {
                        let idx = bindings.iter().position(|(b, _)| b.eq_ignore_ascii_case(t));
                        match idx {
                            Some(k) if k == i + 1 || visible[k] => {}
                            _ => {
                                return Err(GtError::Unsupported(format!(
                                    "join condition references out-of-scope binding {t}"
                                )))
                            }
                        }
                    }
                }
            }
        }

        // Right/full outer joins are only supported as the first join step:
        // later in a chain their result contains NULL-extended rows for right
        // rows unmatched *by the accumulated left side*, which the per-table
        // bitmap fold cannot express. The query generator respects the same
        // restriction, so in practice this only rejects hand-written queries.
        for (i, j) in stmt.from.joins.iter().enumerate() {
            if i > 0 && matches!(j.join_type, JoinType::RightOuter | JoinType::FullOuter) {
                return Err(GtError::Unsupported(
                    "right/full outer join after the first join step".into(),
                ));
            }
        }

        // Fold the join bitmap per Table 2.
        let mut subset_mode = false;
        let mut acc = self
            .db
            .bitmap
            .bitmap(&bindings[0].1)
            .ok_or_else(|| GtError::UnknownTable(bindings[0].1.clone()))?
            .clone();
        for (i, j) in stmt.from.joins.iter().enumerate() {
            let right = self
                .db
                .bitmap
                .bitmap(&bindings[i + 1].1)
                .ok_or_else(|| GtError::UnknownTable(bindings[i + 1].1.clone()))?;
            acc = match j.join_type {
                JoinType::Inner | JoinType::Semi => acc.and(right),
                JoinType::LeftOuter => acc,
                JoinType::RightOuter => right.clone(),
                JoinType::FullOuter => acc.or(right),
                JoinType::Anti => acc.and_not(right),
                JoinType::Cross => {
                    subset_mode = true;
                    acc.and(right)
                }
            };
        }

        // Build scoped rows for the surviving wide rows.
        let visible_bindings: Vec<&(String, String)> = bindings
            .iter()
            .zip(&visible)
            .filter(|(_, v)| **v)
            .map(|(b, _)| b)
            .collect();
        // Deduplicate witnesses by schema-row *identity* (the RowID-map
        // targets), not by cell values: many wide rows witness the same
        // combination of schema rows (that is what denormalization means),
        // but two *distinct* schema rows whose contents happen to coincide —
        // e.g. after NULL-noise corrupted their keys — must keep their own
        // result rows, exactly as a physical scan returns both.
        let mut scoped_rows: Vec<Vec<(String, String, Value)>> = Vec::new();
        let mut seen: std::collections::HashSet<KeyBuf> = std::collections::HashSet::new();
        let mut identity = KeyBuf::new();
        for wide_row in acc.ones() {
            identity.clear();
            for (_, table) in &visible_bindings {
                let rowid = if self.db.bitmap.get(table, wide_row) {
                    self.db.rowid_map.get(wide_row, table)
                } else {
                    None
                };
                // Tagged so `None` and `Some(0)` stay distinct.
                match rowid {
                    Some(id) => identity.push_int(id as i128),
                    None => identity.push_null(),
                }
            }
            if !seen.contains(&identity) {
                seen.insert(identity.clone());
                scoped_rows.push(self.scope_for(wide_row, &visible_bindings));
            }
        }

        // WHERE filter with the reference evaluator.
        let sub = GtSubqueries {
            db: self.db,
            memo: Default::default(),
        };
        if let Some(pred) = &stmt.where_clause {
            let mut kept = Vec::new();
            for scope in scoped_rows {
                let resolver = ScopedRow::new(&scope);
                if eval_predicate(pred, &resolver, &sub)? == Some(true) {
                    kept.push(scope);
                }
            }
            scoped_rows = kept;
        }

        // Projection / aggregation. Aggregates cannot be verified in subset
        // mode (a cross join's full result multiplies the counts), so such
        // queries are skipped rather than misjudged.
        if subset_mode && (stmt.has_aggregates() || !stmt.group_by.is_empty()) {
            return Err(GtError::Unsupported("aggregation over a cross join".into()));
        }
        let result = if stmt.has_aggregates() || !stmt.group_by.is_empty() {
            self.aggregate(stmt, &scoped_rows, &sub)?
        } else {
            self.project(stmt, &scoped_rows, &visible_bindings, &sub)?
        };

        let result = if stmt.distinct {
            distinct(result)
        } else {
            result
        };
        Ok(GroundTruth {
            result,
            subset_mode,
        })
    }

    fn scope_for(
        &self,
        wide_row: usize,
        visible_bindings: &[&(String, String)],
    ) -> Vec<(String, String, Value)> {
        let mut scope = Vec::new();
        for (binding, table) in visible_bindings.iter() {
            let matched = self.db.bitmap.get(table, wide_row);
            let meta = self.db.meta(table).expect("resolved table");
            for col in &meta.columns {
                let v = if matched {
                    self.db
                        .wide
                        .cell(wide_row as u64, col)
                        .cloned()
                        .unwrap_or(Value::Null)
                } else {
                    Value::Null
                };
                scope.push((binding.clone(), col.clone(), v));
            }
        }
        scope
    }

    fn project(
        &self,
        stmt: &SelectStmt,
        scoped_rows: &[Vec<(String, String, Value)>],
        visible_bindings: &[&(String, String)],
        sub: &GtSubqueries<'_>,
    ) -> Result<ResultSet, GtError> {
        let mut columns: Vec<String> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    for (binding, table) in visible_bindings {
                        let meta = self.db.meta(table).expect("resolved");
                        for c in &meta.columns {
                            columns.push(format!("{binding}.{c}"));
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| format!("{expr:?}")));
                }
                SelectItem::Aggregate { .. } => {
                    return Err(GtError::Unsupported(
                        "aggregate outside GROUP BY path".into(),
                    ))
                }
            }
        }
        let mut rs = ResultSet::new(columns);
        for scope in scoped_rows {
            let resolver = ScopedRow::new(scope);
            let mut row = Vec::new();
            for item in &stmt.items {
                match item {
                    SelectItem::Wildcard => {
                        for (binding, _table) in visible_bindings {
                            for (_b, _c, v) in scope.iter().filter(|(b, _, _)| b == binding) {
                                row.push(v.clone());
                            }
                        }
                    }
                    SelectItem::Expr { expr, .. } => {
                        row.push(eval_expr(expr, &resolver, sub)?);
                    }
                    SelectItem::Aggregate { .. } => unreachable!(),
                }
            }
            rs.rows.push(Row::new(row));
        }
        Ok(rs)
    }

    fn aggregate(
        &self,
        stmt: &SelectStmt,
        scoped_rows: &[Vec<(String, String, Value)>],
        sub: &GtSubqueries<'_>,
    ) -> Result<ResultSet, GtError> {
        // Group rows by the GROUP BY key (global group when empty) — a
        // reusable binary key instead of a formatted string per row.
        let mut groups: HashMap<KeyBuf, Vec<usize>> = HashMap::new();
        let mut order: Vec<KeyBuf> = Vec::new();
        let mut key = KeyBuf::new();
        for (i, scope) in scoped_rows.iter().enumerate() {
            let resolver = ScopedRow::new(scope);
            key.clear();
            for g in &stmt.group_by {
                let v = eval_expr(g, &resolver, sub)?;
                key.push_group(&v);
            }
            match groups.get_mut(&key) {
                Some(members) => members.push(i),
                None => {
                    order.push(key.clone());
                    groups.insert(key.clone(), vec![i]);
                }
            }
        }
        if stmt.group_by.is_empty() && groups.is_empty() {
            // aggregate over an empty input still yields one row
            order.push(KeyBuf::new());
            groups.insert(KeyBuf::new(), Vec::new());
        }
        let columns: Vec<String> = stmt
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => "*".to_string(),
                SelectItem::Expr { alias, expr } => {
                    alias.clone().unwrap_or_else(|| format!("{expr:?}"))
                }
                SelectItem::Aggregate { func, alias, .. } => {
                    alias.clone().unwrap_or_else(|| format!("{func:?}"))
                }
            })
            .collect();
        let mut rs = ResultSet::new(columns);
        for key in order {
            let members = &groups[&key];
            let mut row = Vec::new();
            for item in &stmt.items {
                match item {
                    SelectItem::Wildcard => {
                        return Err(GtError::Unsupported("wildcard with GROUP BY".into()))
                    }
                    SelectItem::Expr { expr, .. } => {
                        // must be (functionally) a group key: evaluate on the
                        // first member
                        let v = match members.first() {
                            Some(&i) => {
                                let resolver = ScopedRow::new(&scoped_rows[i]);
                                eval_expr(expr, &resolver, sub)?
                            }
                            None => Value::Null,
                        };
                        row.push(v);
                    }
                    SelectItem::Aggregate { func, arg, .. } => {
                        row.push(self.eval_aggregate(*func, arg, members, scoped_rows, sub)?);
                    }
                }
            }
            rs.rows.push(Row::new(row));
        }
        Ok(rs)
    }

    fn eval_aggregate(
        &self,
        func: AggFunc,
        arg: &Option<Expr>,
        members: &[usize],
        scoped_rows: &[Vec<(String, String, Value)>],
        sub: &GtSubqueries<'_>,
    ) -> Result<Value, GtError> {
        let mut values = Vec::new();
        if let Some(expr) = arg {
            for &i in members {
                let resolver = ScopedRow::new(&scoped_rows[i]);
                values.push(eval_expr(expr, &resolver, sub)?);
            }
        }
        Ok(match func {
            AggFunc::CountStar => Value::Int(members.len() as i64),
            AggFunc::Count => Value::Int(values.iter().filter(|v| !v.is_null()).count() as i64),
            AggFunc::Sum | AggFunc::Avg => {
                let nums: Vec<f64> = values.iter().filter_map(|v| v.as_f64_lossy()).collect();
                if nums.is_empty() {
                    Value::Null
                } else if func == AggFunc::Sum {
                    Value::Double(nums.iter().sum())
                } else {
                    Value::Double(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => {
                let mut best: Option<Value> = None;
                for v in values.into_iter().filter(|v| !v.is_null()) {
                    best = Some(match best {
                        None => v,
                        Some(b) => match sql_compare(&v, &b) {
                            SqlCmp::Ordering(o) => {
                                let take = if func == AggFunc::Min {
                                    o == std::cmp::Ordering::Less
                                } else {
                                    o == std::cmp::Ordering::Greater
                                };
                                if take {
                                    v
                                } else {
                                    b
                                }
                            }
                            SqlCmp::Unknown => b,
                        },
                    });
                }
                best.unwrap_or(Value::Null)
            }
        })
    }
}

/// Reference subquery evaluation: generated subqueries are single-table
/// SELECTs, which we answer from the wide table via the table's bitmap
/// (distinct witnesses = the table's rows), chained to the outer scope for
/// correlated references.
struct GtSubqueries<'a> {
    db: &'a NormalizedDb,
    /// Memo for *uncorrelated* subqueries (shared semantics with the engine
    /// — see [`SubqueryMemo`]): for a row-invariant subquery the walk over
    /// the wide table was pure repeated work per outer row.
    memo: SubqueryMemo,
}

impl GtSubqueries<'_> {
    fn eval_subquery_inner(
        &self,
        stmt: &SelectStmt,
        outer: &dyn ColumnResolver,
    ) -> Result<Vec<Value>, EvalError> {
        if !stmt.from.joins.is_empty() {
            return Err(EvalError::Unsupported(
                "ground-truth subqueries must be single-table".into(),
            ));
        }
        let table = match self.db.meta(&stmt.from.base.table) {
            Some(m) => m.clone(),
            None => {
                return Err(EvalError::Unsupported(format!(
                    "unknown subquery table {}",
                    stmt.from.base.table
                )))
            }
        };
        let binding = stmt.from.base.binding().to_string();
        let bm = match self.db.bitmap.bitmap(&table.name) {
            Some(b) => b,
            None => return Ok(Vec::new()),
        };
        let expr = match stmt.items.first() {
            Some(SelectItem::Expr { expr, .. }) => expr.clone(),
            _ => {
                return Err(EvalError::Unsupported(
                    "subquery must project a single expression".into(),
                ))
            }
        };
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for wide_row in bm.ones() {
            let mut scope = Vec::new();
            for col in &table.columns {
                let v = self
                    .db
                    .wide
                    .cell(wide_row as u64, col)
                    .cloned()
                    .unwrap_or(Value::Null);
                scope.push((binding.clone(), col.clone(), v));
            }
            let fp = scope_fingerprint(&scope);
            if !seen.insert(fp) {
                continue;
            }
            let inner = ScopedRow::new(&scope);
            let resolver = ChainedResolver {
                inner: &inner,
                outer,
            };
            if let Some(pred) = &stmt.where_clause {
                if eval_predicate(pred, &resolver, self)? != Some(true) {
                    continue;
                }
            }
            out.push(eval_expr(&expr, &resolver, self)?);
        }
        Ok(out)
    }
}

impl SubqueryHandler for GtSubqueries<'_> {
    fn eval_subquery(
        &self,
        stmt: &SelectStmt,
        outer: &dyn ColumnResolver,
    ) -> Result<Vec<Value>, EvalError> {
        let cacheable = self
            .db
            .meta(&stmt.from.base.table)
            .map(|meta| {
                stmt.is_uncorrelated_single_table(&|name| {
                    meta.columns.iter().any(|c| c.eq_ignore_ascii_case(name))
                })
            })
            .unwrap_or(false);
        self.memo
            .get_or_eval(stmt, cacheable, || self.eval_subquery_inner(stmt, outer))
    }
}

fn scope_fingerprint(scope: &[(String, String, Value)]) -> KeyBuf {
    let mut fp = KeyBuf::new();
    for (_, _, v) in scope {
        fp.push_group(v);
    }
    fp
}

fn distinct(rs: ResultSet) -> ResultSet {
    rs.into_distinct()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{FdDiscoveryConfig, FdSet};
    use crate::normalize::normalize;
    use tqs_sql::ast::{FromClause, Join, TableRef};
    use tqs_sql::parser::parse_stmt;
    use tqs_storage::widegen::{shopping_orders, ShoppingConfig};

    fn db() -> NormalizedDb {
        let wide = shopping_orders(&ShoppingConfig {
            n_rows: 200,
            ..Default::default()
        });
        let fds = FdSet::discover(&wide, &FdDiscoveryConfig::default());
        normalize(wide, &fds)
    }

    fn goods_and_names(db: &NormalizedDb) -> (String, String) {
        (
            db.table_with_pk("goodsId").unwrap().name.clone(),
            db.table_with_pk("goodsName").unwrap().name.clone(),
        )
    }

    #[test]
    fn example_3_5_price_of_flower() {
        let d = db();
        let (goods, names) = goods_and_names(&d);
        let sql = format!(
            "SELECT {names}.price FROM {goods} INNER JOIN {names} ON \
             {goods}.goodsName = {names}.goodsName WHERE {goods}.goodsName = 'flower'"
        );
        let stmt = parse_stmt(&sql).unwrap();
        let gt = GroundTruthEvaluator::new(&d).evaluate(&stmt).unwrap();
        assert!(!gt.subset_mode);
        // all goods named "flower" share one price (goodsName → price), and
        // potentially several goodsIds carry that name
        assert!(!gt.result.is_empty());
        let first = &gt.result.rows[0].values[0];
        for r in &gt.result.rows {
            assert_eq!(format!("{}", r.values[0]), format!("{first}"));
        }
    }

    #[test]
    fn inner_join_cardinality_matches_dimension_size() {
        let d = db();
        let (goods, names) = goods_and_names(&d);
        let sql = format!(
            "SELECT {goods}.goodsId, {names}.price FROM {goods} INNER JOIN {names} \
             ON {goods}.goodsName = {names}.goodsName"
        );
        let stmt = parse_stmt(&sql).unwrap();
        let gt = GroundTruthEvaluator::new(&d).evaluate(&stmt).unwrap();
        // one row per goods row (goodsName always matches its price row)
        let n_goods = d.catalog.table(&goods).unwrap().row_count();
        assert_eq!(gt.result.row_count(), n_goods);
    }

    #[test]
    fn base_join_keeps_fact_multiplicity() {
        let d = db();
        let goods = d.table_with_pk("goodsId").unwrap().name.clone();
        let sql = format!(
            "SELECT T1.orderId, {goods}.goodsName FROM T1 INNER JOIN {goods} ON \
             T1.goodsId = {goods}.goodsId"
        );
        let stmt = parse_stmt(&sql).unwrap();
        let gt = GroundTruthEvaluator::new(&d).evaluate(&stmt).unwrap();
        // every base row joins exactly one goods row → row per base row
        let n_base = d.catalog.table("T1").unwrap().row_count();
        assert_eq!(gt.result.row_count(), n_base);
    }

    #[test]
    fn semi_and_anti_join_on_clean_data() {
        let d = db();
        let goods = d.table_with_pk("goodsId").unwrap().name.clone();
        let n_base = d.catalog.table("T1").unwrap().row_count();
        let semi = parse_stmt(&format!(
            "SELECT T1.orderId FROM T1 SEMI JOIN {goods} ON T1.goodsId = {goods}.goodsId"
        ))
        .unwrap();
        let gt = GroundTruthEvaluator::new(&d).evaluate(&semi).unwrap();
        assert_eq!(gt.result.row_count(), n_base);
        let anti = parse_stmt(&format!(
            "SELECT T1.orderId FROM T1 ANTI JOIN {goods} ON T1.goodsId = {goods}.goodsId"
        ))
        .unwrap();
        let gt = GroundTruthEvaluator::new(&d).evaluate(&anti).unwrap();
        assert_eq!(gt.result.row_count(), 0);
    }

    #[test]
    fn aggregates_and_group_by() {
        let d = db();
        let goods = d.table_with_pk("goodsId").unwrap().name.clone();
        let sql = format!(
            "SELECT {goods}.goodsName, COUNT(*) AS cnt FROM T1 INNER JOIN {goods} ON \
             T1.goodsId = {goods}.goodsId GROUP BY {goods}.goodsName"
        );
        let stmt = parse_stmt(&sql).unwrap();
        let gt = GroundTruthEvaluator::new(&d).evaluate(&stmt).unwrap();
        let total: i64 = gt
            .result
            .rows
            .iter()
            .map(|r| r.values[1].as_i128_exact().unwrap() as i64)
            .sum();
        assert_eq!(total as usize, d.catalog.table("T1").unwrap().row_count());
    }

    #[test]
    fn distinct_projection() {
        let d = db();
        let goods = d.table_with_pk("goodsId").unwrap().name.clone();
        let sql = format!(
            "SELECT DISTINCT {goods}.goodsName FROM T1 INNER JOIN {goods} ON \
             T1.goodsId = {goods}.goodsId"
        );
        let stmt = parse_stmt(&sql).unwrap();
        let gt = GroundTruthEvaluator::new(&d).evaluate(&stmt).unwrap();
        let names = d
            .catalog
            .table(&d.table_with_pk("goodsName").unwrap().name)
            .unwrap();
        assert_eq!(gt.result.row_count(), names.row_count());
    }

    #[test]
    fn cross_join_sets_subset_mode() {
        let d = db();
        let goods = d.table_with_pk("goodsId").unwrap().name.clone();
        let mut from = FromClause::single("T1");
        from.joins.push(Join {
            join_type: tqs_sql::ast::JoinType::Cross,
            table: TableRef::new(goods.clone()),
            on: None,
        });
        let mut stmt = tqs_sql::ast::SelectStmt::new(from);
        stmt.items = vec![SelectItem::column("T1", "orderId")];
        let gt = GroundTruthEvaluator::new(&d).evaluate(&stmt).unwrap();
        assert!(gt.subset_mode);
        // subset verification: a superset passes, a smaller set fails
        let mut superset = gt.result.clone();
        superset.rows.push(Row::new(vec![Value::str("extra")]));
        assert!(gt.matches(&superset));
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        let d = db();
        assert!(matches!(
            GroundTruthEvaluator::new(&d).evaluate(&parse_stmt("SELECT * FROM nosuch").unwrap()),
            Err(GtError::UnknownTable(_))
        ));
        assert!(matches!(
            GroundTruthEvaluator::new(&d).evaluate(
                &parse_stmt("SELECT T1.orderId FROM T1 JOIN T1 ON T1.orderId = T1.orderId")
                    .unwrap()
            ),
            Err(GtError::Unsupported(_))
        ));
        assert!(matches!(
            GroundTruthEvaluator::new(&d)
                .evaluate(&parse_stmt("SELECT T1.orderId FROM T1 LIMIT 3").unwrap()),
            Err(GtError::Unsupported(_))
        ));
    }

    #[test]
    fn in_subquery_ground_truth() {
        let d = db();
        let goods = d.table_with_pk("goodsId").unwrap().name.clone();
        let sql = format!(
            "SELECT T1.orderId FROM T1 WHERE T1.goodsId IN \
             (SELECT {goods}.goodsId FROM {goods} WHERE {goods}.goodsName = 'book')"
        );
        let stmt = parse_stmt(&sql).unwrap();
        let gt = GroundTruthEvaluator::new(&d).evaluate(&stmt).unwrap();
        // every returned base row indeed bought a 'book' good — cross-check
        // against the wide table directly.
        let expected = d
            .wide
            .table
            .rows
            .iter()
            .filter(|r| {
                let idx = d.wide.attr_index("goodsName").unwrap() + 1;
                r.get(idx).as_str() == Some("book")
            })
            .count();
        assert_eq!(gt.result.row_count(), expected);
    }
}
