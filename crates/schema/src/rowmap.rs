//! The RowID map table `T_RowIDMap` of §3.1: for every wide-table row, which
//! row of each schema table it was split into (if any), plus the reverse
//! mapping needed by noise injection (`RowMap(T_i, row_j)` → affected wide
//! rows).

use serde::{Deserialize, Serialize};

/// The RowID mapping `[RowID, T_i, row_j]`, stored densely as one
/// `Option<u32>` per (wide row, schema table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RowIdMap {
    pub table_names: Vec<String>,
    /// `map[wide_row][table_idx]` = row index in that schema table.
    map: Vec<Vec<Option<u32>>>,
}

impl RowIdMap {
    pub fn new(table_names: Vec<String>) -> Self {
        RowIdMap {
            table_names,
            map: Vec::new(),
        }
    }

    pub fn n_tables(&self) -> usize {
        self.table_names.len()
    }

    pub fn n_rows(&self) -> usize {
        self.map.len()
    }

    pub fn table_index(&self, table: &str) -> Option<usize> {
        self.table_names
            .iter()
            .position(|t| t.eq_ignore_ascii_case(table))
    }

    /// Append an all-NULL mapping row for a new wide row; returns its index.
    pub fn push_row(&mut self) -> usize {
        self.map.push(vec![None; self.table_names.len()]);
        self.map.len() - 1
    }

    pub fn set(&mut self, wide_row: usize, table: &str, schema_row: Option<u32>) {
        let ti = self.table_index(table).expect("known table");
        while self.map.len() <= wide_row {
            self.push_row();
        }
        self.map[wide_row][ti] = schema_row;
    }

    pub fn get(&self, wide_row: usize, table: &str) -> Option<u32> {
        let ti = self.table_index(table)?;
        self.map.get(wide_row).and_then(|r| r[ti])
    }

    /// `RowMap(T_i, row_j)`: all wide rows currently mapping to the given
    /// schema-table row.
    pub fn reverse(&self, table: &str, schema_row: u32) -> Vec<usize> {
        let ti = match self.table_index(table) {
            Some(i) => i,
            None => return Vec::new(),
        };
        self.map
            .iter()
            .enumerate()
            .filter(|(_, r)| r[ti] == Some(schema_row))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of wide rows that map into `table`.
    pub fn mapped_count(&self, table: &str) -> usize {
        let ti = match self.table_index(table) {
            Some(i) => i,
            None => return 0,
        };
        self.map.iter().filter(|r| r[ti].is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RowIdMap {
        // Mirrors Figure 4(a): 4 tables, wide rows 0..=5.
        let mut m = RowIdMap::new(vec!["T1".into(), "T2".into(), "T3".into(), "T4".into()]);
        for i in 0..6 {
            m.push_row();
            m.set(i, "T1", Some(i as u32));
        }
        m.set(0, "T2", Some(0));
        m.set(5, "T2", Some(1));
        m.set(0, "T3", Some(0));
        m.set(1, "T3", Some(1));
        m.set(5, "T3", Some(2));
        m.set(5, "T4", Some(2));
        m
    }

    #[test]
    fn get_set_round_trip() {
        let m = sample();
        assert_eq!(m.get(5, "T3"), Some(2));
        assert_eq!(m.get(5, "t4"), Some(2));
        assert_eq!(m.get(2, "T2"), None);
        assert_eq!(m.get(99, "T1"), None);
        assert_eq!(m.get(0, "T9"), None);
        assert_eq!(m.n_rows(), 6);
        assert_eq!(m.n_tables(), 4);
    }

    #[test]
    fn reverse_lookup_matches_paper_semantics() {
        let mut m = sample();
        m.set(1, "T2", Some(0));
        m.set(2, "T2", Some(0));
        // RowMap(T2, 0) = wide rows {0, 1, 2}, as in Example 3.3.
        assert_eq!(m.reverse("T2", 0), vec![0, 1, 2]);
        assert_eq!(m.reverse("T2", 7), Vec::<usize>::new());
        assert_eq!(m.reverse("T9", 0), Vec::<usize>::new());
    }

    #[test]
    fn push_row_extends_with_nulls() {
        let mut m = sample();
        let idx = m.push_row();
        assert_eq!(idx, 6);
        assert_eq!(m.get(6, "T1"), None);
        m.set(6, "T2", Some(0));
        assert_eq!(m.get(6, "T2"), Some(0));
    }

    #[test]
    fn mapped_count() {
        let m = sample();
        assert_eq!(m.mapped_count("T1"), 6);
        assert_eq!(m.mapped_count("T2"), 2);
        assert_eq!(m.mapped_count("T4"), 1);
        assert_eq!(m.mapped_count("nope"), 0);
    }

    #[test]
    fn set_beyond_end_grows() {
        let mut m = RowIdMap::new(vec!["A".into()]);
        m.set(3, "A", Some(9));
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.get(3, "A"), Some(9));
        assert_eq!(m.get(1, "A"), None);
    }
}
