//! Schema normalization: split the wide table into a 3NF multi-table schema
//! (3NF synthesis over the discovered FDs), populate the tables, and build
//! the RowID map table plus the join bitmap index (§3.1, Example 3.1/3.2).

use crate::bitmap::JoinBitmapIndex;
use crate::fd::FdSet;
use crate::rowmap::RowIdMap;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use tqs_sql::types::{ColumnDef, ColumnType};
use tqs_sql::value::Value;
use tqs_storage::{Catalog, ForeignKey, Row, Table, WideTable, ROW_ID};

/// Metadata about one generated schema table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaTableMeta {
    pub name: String,
    /// The implicit primary key (wide-table column names).
    pub implicit_pk: Vec<String>,
    /// All attribute columns (wide-table column names), PK first.
    /// The physical table additionally has an explicit `RowID` column.
    pub columns: Vec<String>,
    /// True for the table holding the wide table's candidate key (the
    /// "fact"/base table, `T1` in the paper's example).
    pub is_base: bool,
}

/// The fully-materialized testing database produced by DSG's data layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NormalizedDb {
    pub wide: WideTable,
    pub fds: FdSet,
    pub metas: Vec<SchemaTableMeta>,
    pub catalog: Catalog,
    pub rowid_map: RowIdMap,
    pub bitmap: JoinBitmapIndex,
}

impl NormalizedDb {
    pub fn meta(&self, table: &str) -> Option<&SchemaTableMeta> {
        self.metas
            .iter()
            .find(|m| m.name.eq_ignore_ascii_case(table))
    }

    /// The schema table whose implicit primary key is exactly `[col]`.
    pub fn table_with_pk(&self, col: &str) -> Option<&SchemaTableMeta> {
        self.metas
            .iter()
            .find(|m| m.implicit_pk.len() == 1 && m.implicit_pk[0].eq_ignore_ascii_case(col))
    }

    pub fn table_names(&self) -> Vec<String> {
        self.metas.iter().map(|m| m.name.clone()).collect()
    }

    /// Column type of a wide-table attribute.
    pub fn attr_type(&self, col: &str) -> Option<ColumnType> {
        self.wide.attr_type(col)
    }
}

/// Run 3NF synthesis over the minimal cover and materialize everything.
pub fn normalize(wide: WideTable, fds: &FdSet) -> NormalizedDb {
    let cover = fds.minimal_cover();
    let all_attrs = wide.attr_names();

    // 1. Group minimal-cover FDs by LHS → candidate dimension tables.
    let mut groups: BTreeMap<Vec<String>, Vec<String>> = BTreeMap::new();
    for fd in &cover.fds {
        let mut lhs = fd.lhs.clone();
        lhs.sort();
        groups.entry(lhs).or_default().push(fd.rhs.clone());
    }

    // 2. Base table: the wide table's candidate key plus every attribute not
    //    covered by any dimension table.
    let key = fds.candidate_key();
    let covered: HashSet<String> = groups
        .iter()
        .flat_map(|(lhs, rhs)| lhs.iter().chain(rhs.iter()).cloned())
        .collect();
    let mut base_cols: Vec<String> = key.clone();
    for a in &all_attrs {
        if !covered.contains(a) && !base_cols.contains(a) {
            base_cols.push(a.clone());
        }
    }
    // the key itself is covered implicitly — make sure key attributes that
    // are only LHS of dimension tables stay in the base table so joins exist.
    for k in &key {
        if !base_cols.contains(k) {
            base_cols.push(k.clone());
        }
    }

    // 3. Drop dimension tables whose columns are a subset of another table.
    let mut dim_tables: Vec<(Vec<String>, Vec<String>)> = groups
        .into_iter()
        .map(|(lhs, mut rhs)| {
            rhs.sort();
            rhs.dedup();
            (lhs, rhs)
        })
        .collect();
    let col_set = |lhs: &Vec<String>, rhs: &Vec<String>| -> HashSet<String> {
        lhs.iter().chain(rhs.iter()).cloned().collect()
    };
    let mut keep = vec![true; dim_tables.len()];
    for i in 0..dim_tables.len() {
        for j in 0..dim_tables.len() {
            if i != j && keep[i] && keep[j] {
                let a = col_set(&dim_tables[i].0, &dim_tables[i].1);
                let b = col_set(&dim_tables[j].0, &dim_tables[j].1);
                if a.is_subset(&b) && (a != b || i > j) {
                    keep[i] = false;
                }
            }
        }
    }
    dim_tables = dim_tables
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(t, _)| t)
        .collect();

    // 4. Assemble metas: base first (T1), dimensions after (T2, T3, ...).
    let mut metas = Vec::new();
    metas.push(SchemaTableMeta {
        name: "T1".to_string(),
        implicit_pk: key.clone(),
        columns: order_columns(&base_cols, &key),
        is_base: true,
    });
    for (i, (lhs, rhs)) in dim_tables.iter().enumerate() {
        let mut columns = lhs.clone();
        columns.extend(rhs.iter().cloned());
        metas.push(SchemaTableMeta {
            name: format!("T{}", i + 2),
            implicit_pk: lhs.clone(),
            columns,
            is_base: false,
        });
    }

    // 5. Build physical tables and populate them, recording the RowID map.
    let table_names: Vec<String> = metas.iter().map(|m| m.name.clone()).collect();
    let mut rowid_map = RowIdMap::new(table_names.clone());
    let mut catalog = Catalog::new();
    // per-table: dedup map from full-tuple fingerprint → row index
    let mut dedup: Vec<HashMap<String, u32>> = vec![HashMap::new(); metas.len()];
    let mut phys: Vec<Table> = metas
        .iter()
        .map(|m| {
            let mut cols =
                vec![ColumnDef::new(ROW_ID, ColumnType::BigInt { unsigned: false }).not_null()];
            for c in &m.columns {
                let ty = wide.attr_type(c).expect("column type");
                cols.push(ColumnDef::new(c.clone(), ty));
            }
            let mut t = Table::new(m.name.clone(), cols).with_primary_key(vec![ROW_ID]);
            // secondary key on the implicit PK (helps the index-join path)
            t.keys.push(m.implicit_pk.clone());
            t
        })
        .collect();

    for wide_row in 0..wide.row_count() {
        rowid_map.push_row();
        for (ti, m) in metas.iter().enumerate() {
            let values: Vec<Value> = m
                .columns
                .iter()
                .map(|c| {
                    wide.cell(wide_row as u64, c)
                        .cloned()
                        .unwrap_or(Value::Null)
                })
                .collect();
            // data cleaning: skip fragments whose implicit PK contains NULL
            let pk_has_null = m.implicit_pk.iter().any(|k| {
                let idx = m.columns.iter().position(|c| c == k).unwrap();
                values[idx].is_null()
            });
            if pk_has_null {
                continue;
            }
            let fp = fingerprint(&values);
            let row_idx = if let Some(&existing) = dedup[ti].get(&fp) {
                existing
            } else {
                let idx = phys[ti].row_count() as u32;
                let mut row = Vec::with_capacity(values.len() + 1);
                row.push(Value::Int(idx as i64));
                row.extend(values);
                phys[ti].push_row(Row::new(row)).expect("row arity");
                dedup[ti].insert(fp, idx);
                idx
            };
            rowid_map.set(wide_row, &m.name, Some(row_idx));
        }
    }

    // 6. Foreign keys: a table referencing another table's single-column
    //    implicit PK gets an explicit FK (and a secondary key on the column).
    for i in 0..metas.len() {
        for j in 0..metas.len() {
            if i == j {
                continue;
            }
            if metas[j].implicit_pk.len() == 1 {
                let pk = &metas[j].implicit_pk[0];
                let is_own_pk = metas[i].implicit_pk == vec![pk.clone()];
                if metas[i].columns.contains(pk) && !is_own_pk {
                    phys[i].foreign_keys.push(ForeignKey {
                        columns: vec![pk.clone()],
                        ref_table: metas[j].name.clone(),
                        ref_columns: vec![pk.clone()],
                    });
                    if !phys[i].keys.iter().any(|k| k == &vec![pk.clone()]) {
                        phys[i].keys.push(vec![pk.clone()]);
                    }
                }
            }
        }
    }

    for t in phys {
        catalog.add_table(t);
    }

    // 7. Join bitmap index from the RowID map.
    let mut bitmap = JoinBitmapIndex::new(table_names, wide.row_count());
    for row in 0..wide.row_count() {
        for m in &metas {
            if rowid_map.get(row, &m.name).is_some() {
                bitmap.set(&m.name, row, true);
            }
        }
    }

    NormalizedDb {
        wide,
        fds: fds.clone(),
        metas,
        catalog,
        rowid_map,
        bitmap,
    }
}

fn order_columns(cols: &[String], pk: &[String]) -> Vec<String> {
    let mut out: Vec<String> = pk.to_vec();
    for c in cols {
        if !out.contains(c) {
            out.push(c.clone());
        }
    }
    out
}

fn fingerprint(values: &[Value]) -> String {
    let mut s = String::new();
    for v in values {
        if v.is_null() {
            s.push_str("\u{0}N");
        } else {
            s.push_str(&format!("{}:{v}", v.type_tag()));
        }
        s.push('\u{1}');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{FdDiscoveryConfig, FdSet};
    use tqs_storage::widegen::{shopping_orders, tpch_like, ShoppingConfig, TpchLikeConfig};

    fn shopping_db() -> NormalizedDb {
        let wide = shopping_orders(&ShoppingConfig::default());
        let fds = FdSet::discover(&wide, &FdDiscoveryConfig::default());
        normalize(wide, &fds)
    }

    #[test]
    fn produces_base_plus_dimension_tables() {
        let db = shopping_db();
        assert!(db.metas.len() >= 4, "got {:?}", db.table_names());
        let base = db.meta("T1").unwrap();
        assert!(base.is_base);
        assert!(base.columns.contains(&"orderId".to_string()));
        assert!(base.columns.contains(&"goodsId".to_string()));
        assert!(base.columns.contains(&"userId".to_string()));
        // dimension tables for goodsId, goodsName and userId exist
        assert!(db.table_with_pk("goodsId").is_some());
        assert!(db.table_with_pk("goodsName").is_some());
        assert!(db.table_with_pk("userId").is_some());
        // derived attributes must not sit in the base table
        assert!(!base.columns.contains(&"goodsName".to_string()));
        assert!(!base.columns.contains(&"userName".to_string()));
    }

    #[test]
    fn dimension_tables_are_deduplicated_and_pk_unique() {
        let db = shopping_db();
        let goods = db.table_with_pk("goodsId").unwrap();
        let t = db.catalog.table(&goods.name).unwrap();
        // 24 goods in the generator config
        assert_eq!(t.row_count(), 24);
        // PK values are unique
        let idx = t.column_index("goodsId").unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in &t.rows {
            assert!(seen.insert(format!("{}", r.get(idx))));
        }
    }

    #[test]
    fn every_table_has_rowid_and_catalog_metadata() {
        let db = shopping_db();
        for m in &db.metas {
            let t = db.catalog.table(&m.name).unwrap();
            assert_eq!(t.columns[0].name, ROW_ID);
            assert_eq!(t.primary_key, vec![ROW_ID.to_string()]);
            assert!(!t.keys.is_empty());
            // RowID values are dense 0..n
            for (i, r) in t.rows.iter().enumerate() {
                assert_eq!(r.get(0), &Value::Int(i as i64));
            }
        }
    }

    #[test]
    fn foreign_keys_follow_fd_structure() {
        let db = shopping_db();
        let edges = db.catalog.foreign_key_edges();
        let has = |from: &str, col: &str, to: &str| {
            edges.iter().any(|(f, c, t, _)| {
                db.meta(f).map(|m| m.is_base).unwrap_or(false) == (from == "base")
                    && c == &vec![col.to_string()]
                    && db.table_with_pk(col).map(|m| &m.name) == Some(t)
                    || (from != "base" && f == from && c == &vec![col.to_string()] && t == to)
            })
        };
        // base table references the goodsId and userId dimensions
        assert!(has("base", "goodsId", ""));
        assert!(has("base", "userId", ""));
        // goods table references the goodsName table (T3.goodsName → T4)
        let goods = db.table_with_pk("goodsId").unwrap().name.clone();
        let names = db.table_with_pk("goodsName").unwrap().name.clone();
        assert!(has(&goods, "goodsName", &names));
    }

    #[test]
    fn rowid_map_and_bitmap_are_consistent() {
        let db = shopping_db();
        assert_eq!(db.rowid_map.n_rows(), db.wide.row_count());
        for row in 0..db.wide.row_count() {
            for m in &db.metas {
                let mapped = db.rowid_map.get(row, &m.name).is_some();
                assert_eq!(mapped, db.bitmap.get(&m.name, row), "{} row {row}", m.name);
                // mapped row index is in range
                if let Some(idx) = db.rowid_map.get(row, &m.name) {
                    let t = db.catalog.table(&m.name).unwrap();
                    assert!((idx as usize) < t.row_count());
                }
            }
        }
        // clean data: every wide row maps into every table
        for m in &db.metas {
            assert_eq!(db.rowid_map.mapped_count(&m.name), db.wide.row_count());
        }
    }

    #[test]
    fn mapped_rows_carry_the_wide_values() {
        let db = shopping_db();
        let goods = db.table_with_pk("goodsId").unwrap();
        let t = db.catalog.table(&goods.name).unwrap();
        for row in 0..20 {
            let idx = db.rowid_map.get(row, &goods.name).unwrap() as usize;
            let wide_val = db.wide.cell(row as u64, "goodsId").unwrap();
            let table_val = t.cell(idx, "goodsId").unwrap();
            assert_eq!(format!("{wide_val}"), format!("{table_val}"));
        }
    }

    #[test]
    fn tpch_like_normalizes_into_multiple_dimensions() {
        let wide = tpch_like(&TpchLikeConfig {
            n_rows: 200,
            ..Default::default()
        });
        let fds = FdSet::discover(&wide, &FdDiscoveryConfig::default());
        let db = normalize(wide, &fds);
        assert!(db.metas.len() >= 4);
        assert!(db.table_with_pk("partkey").is_some());
        assert!(db.table_with_pk("suppkey").is_some());
        assert!(db.table_with_pk("custkey").is_some());
        assert!(db.table_with_pk("nationkey").is_some());
    }
}
