//! Bitmaps, WAH run-length compression and the join bitmap index of §3.1.
//!
//! The join bitmap index holds one bit array per schema table; bit `i` of
//! table `T_j`'s array is 1 iff wide-table row `i` produced a row of `T_j`.
//! Ground-truth bitmaps of join queries are computed by folding these arrays
//! with the per-join-type rules of Table 2; the jump-intersection ordering
//! (sparsest first) keeps multi-way ANDs cheap.

use serde::{Deserialize, Serialize};

/// A fixed-length uncompressed bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        if v {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Grow to `new_len`, new bits cleared.
    pub fn resize(&mut self, new_len: usize) {
        self.words.resize(new_len.div_ceil(64), 0);
        self.len = new_len;
    }

    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits; used to order jump intersections.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    pub fn and(&self, other: &Bitmap) -> Bitmap {
        self.zip_with(other, |a, b| a & b)
    }

    pub fn or(&self, other: &Bitmap) -> Bitmap {
        self.zip_with(other, |a, b| a | b)
    }

    /// `self AND NOT other` — the anti-join rule.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        self.zip_with(other, |a, b| a & !b)
    }

    fn zip_with(&self, other: &Bitmap, f: impl Fn(u64, u64) -> u64) -> Bitmap {
        let len = self.len.max(other.len);
        let mut out = Bitmap::new(len);
        for i in 0..out.words.len() {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            out.words[i] = f(a, b);
        }
        out.mask_tail();
        out
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Indices of set bits, ascending.
    pub fn ones(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, w) in self.words.iter().enumerate() {
            let mut word = *w;
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                let idx = wi * 64 + b;
                if idx < self.len {
                    out.push(idx);
                }
                word &= word - 1;
            }
        }
        out
    }

    /// All bits set.
    pub fn full(len: usize) -> Bitmap {
        let mut b = Bitmap::new(len);
        for w in &mut b.words {
            *w = u64::MAX;
        }
        b.mask_tail();
        b
    }
}

/// Multi-way intersection using the jump-intersection heuristic: order the
/// operands by ascending density so the sparsest bitmap prunes first.
pub fn jump_intersect(bitmaps: &[&Bitmap]) -> Bitmap {
    assert!(!bitmaps.is_empty());
    let mut order: Vec<usize> = (0..bitmaps.len()).collect();
    order.sort_by(|&a, &b| {
        bitmaps[a]
            .density()
            .partial_cmp(&bitmaps[b].density())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut acc = bitmaps[order[0]].clone();
    for &i in &order[1..] {
        if acc.count_ones() == 0 {
            break; // jump out early
        }
        acc = acc.and(bitmaps[i]);
    }
    acc
}

/// WAH (word-aligned hybrid) compressed bitmap using 31-bit payload words.
///
/// A literal word stores 31 raw bits (MSB = 0). A fill word (MSB = 1) stores
/// a run of identical 31-bit groups: bit 30 is the fill bit, the low 30 bits
/// the run length in groups. The paper applies WAH when the join bitmap gets
/// large and sparse.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WahBitmap {
    words: Vec<u32>,
    len: usize,
}

impl WahBitmap {
    /// Compress an uncompressed bitmap.
    pub fn compress(src: &Bitmap) -> WahBitmap {
        let len = src.len();
        let n_groups = len.div_ceil(31);
        let mut words: Vec<u32> = Vec::new();
        let mut i = 0usize;
        while i < n_groups {
            let g = Self::group(src, i);
            if g == 0 || g == 0x7FFF_FFFF {
                // count run of identical fill groups
                let fill_bit = if g == 0 { 0u32 } else { 1u32 };
                let mut run = 1usize;
                while i + run < n_groups && Self::group(src, i + run) == g {
                    run += 1;
                }
                words.push(0x8000_0000 | (fill_bit << 30) | (run as u32 & 0x3FFF_FFFF));
                i += run;
            } else {
                words.push(g);
                i += 1;
            }
        }
        WahBitmap { words, len }
    }

    fn group(src: &Bitmap, g: usize) -> u32 {
        let mut out = 0u32;
        for b in 0..31 {
            let idx = g * 31 + b;
            if src.get(idx) {
                out |= 1 << b;
            }
        }
        out
    }

    /// Decompress back to an uncompressed bitmap.
    pub fn decompress(&self) -> Bitmap {
        let mut out = Bitmap::new(self.len);
        let mut g = 0usize;
        for w in &self.words {
            if w & 0x8000_0000 != 0 {
                let fill = (w >> 30) & 1 == 1;
                let run = (w & 0x3FFF_FFFF) as usize;
                if fill {
                    for gg in g..g + run {
                        for b in 0..31 {
                            let idx = gg * 31 + b;
                            if idx < self.len {
                                out.set(idx, true);
                            }
                        }
                    }
                }
                g += run;
            } else {
                for b in 0..31 {
                    if (w >> b) & 1 == 1 {
                        let idx = g * 31 + b;
                        if idx < self.len {
                            out.set(idx, true);
                        }
                    }
                }
                g += 1;
            }
        }
        out
    }

    /// Compressed size in 32-bit words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The join bitmap index: one bitmap per schema table, aligned on wide-table
/// RowIDs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinBitmapIndex {
    pub table_names: Vec<String>,
    pub bitmaps: Vec<Bitmap>,
    pub n_rows: usize,
}

impl JoinBitmapIndex {
    pub fn new(table_names: Vec<String>, n_rows: usize) -> Self {
        let bitmaps = table_names.iter().map(|_| Bitmap::new(n_rows)).collect();
        JoinBitmapIndex {
            table_names,
            bitmaps,
            n_rows,
        }
    }

    pub fn table_index(&self, table: &str) -> Option<usize> {
        self.table_names
            .iter()
            .position(|t| t.eq_ignore_ascii_case(table))
    }

    pub fn bitmap(&self, table: &str) -> Option<&Bitmap> {
        self.table_index(table).map(|i| &self.bitmaps[i])
    }

    pub fn set(&mut self, table: &str, row: usize, v: bool) {
        if let Some(i) = self.table_index(table) {
            if row >= self.bitmaps[i].len() {
                let new_len = row + 1;
                for b in &mut self.bitmaps {
                    b.resize(new_len);
                }
                self.n_rows = new_len;
            }
            self.bitmaps[i].set(row, v);
        }
    }

    pub fn get(&self, table: &str, row: usize) -> bool {
        self.bitmap(table).map(|b| b.get(row)).unwrap_or(false)
    }

    /// Grow all bitmaps to cover `n_rows` wide rows.
    pub fn grow(&mut self, n_rows: usize) {
        if n_rows > self.n_rows {
            for b in &mut self.bitmaps {
                b.resize(n_rows);
            }
            self.n_rows = n_rows;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(bits: &[usize], len: usize) -> Bitmap {
        let mut b = Bitmap::new(len);
        for &i in bits {
            b.set(i, true);
        }
        b
    }

    #[test]
    fn set_get_count() {
        let b = bm(&[0, 5, 63, 64, 99], 100);
        assert!(b.get(0) && b.get(5) && b.get(63) && b.get(64) && b.get(99));
        assert!(!b.get(1) && !b.get(98));
        assert!(!b.get(1000));
        assert_eq!(b.count_ones(), 5);
        assert_eq!(b.ones(), vec![0, 5, 63, 64, 99]);
    }

    #[test]
    fn logical_ops_match_table_2_rules() {
        let t1 = bm(&[0, 1, 2, 3], 6);
        let t2 = bm(&[2, 3, 4], 6);
        assert_eq!(t1.and(&t2).ones(), vec![2, 3]); // inner/semi join
        assert_eq!(t1.or(&t2).ones(), vec![0, 1, 2, 3, 4]); // full outer join
        assert_eq!(t1.and_not(&t2).ones(), vec![0, 1]); // anti join
    }

    #[test]
    fn ops_on_mismatched_lengths() {
        let a = bm(&[0, 70], 80);
        let b = bm(&[0], 10);
        assert_eq!(a.and(&b).ones(), vec![0]);
        assert_eq!(a.or(&b).ones(), vec![0, 70]);
    }

    #[test]
    fn full_and_density() {
        let f = Bitmap::full(70);
        assert_eq!(f.count_ones(), 70);
        assert!((f.density() - 1.0).abs() < 1e-9);
        assert!(Bitmap::new(0).is_empty());
    }

    #[test]
    fn jump_intersect_orders_by_sparsity() {
        let dense = Bitmap::full(200);
        let medium = bm(&(0..100).collect::<Vec<_>>(), 200);
        let sparse = bm(&[3, 50, 150], 200);
        let out = jump_intersect(&[&dense, &medium, &sparse]);
        assert_eq!(out.ones(), vec![3, 50]);
        // intersect with an empty bitmap jumps out early and yields empty
        let empty = Bitmap::new(200);
        assert_eq!(jump_intersect(&[&dense, &empty, &sparse]).count_ones(), 0);
    }

    #[test]
    fn wah_round_trip_sparse_and_dense() {
        for pattern in [
            vec![],
            vec![0],
            vec![1000],
            (0..31).collect::<Vec<_>>(),
            (0..1024).filter(|i| i % 97 == 0).collect::<Vec<_>>(),
            (0..1024).collect::<Vec<_>>(),
        ] {
            let orig = bm(&pattern, 1024);
            let wah = WahBitmap::compress(&orig);
            assert_eq!(wah.decompress(), orig, "pattern {pattern:?}");
        }
    }

    #[test]
    fn wah_compresses_sparse_bitmaps() {
        let sparse = bm(&[5, 50_000], 100_000);
        let wah = WahBitmap::compress(&sparse);
        // 100k bits is ~3226 groups uncompressed; the run-length encoding
        // must use far fewer words.
        assert!(wah.word_count() < 20, "got {}", wah.word_count());
        assert_eq!(wah.decompress().ones(), vec![5, 50_000]);
    }

    #[test]
    fn join_index_basic_operations() {
        let mut idx = JoinBitmapIndex::new(vec!["T1".into(), "T2".into()], 4);
        idx.set("T1", 0, true);
        idx.set("t2", 3, true);
        assert!(idx.get("t1", 0));
        assert!(idx.get("T2", 3));
        assert!(!idx.get("T2", 0));
        assert!(idx.bitmap("T9").is_none());
        idx.grow(10);
        assert_eq!(idx.bitmap("T1").unwrap().len(), 10);
        // setting past the end grows automatically
        idx.set("T1", 12, true);
        assert!(idx.get("T1", 12));
        assert_eq!(idx.n_rows, 13);
    }
}
