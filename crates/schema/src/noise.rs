//! Noise injection (§3.2): corrupt a small fraction of primary/foreign key
//! cells in the schema tables with boundary values or NULLs, then
//! re-synchronize the wide table, the RowID map and the join bitmap index so
//! that ground-truth recovery stays exact.
//!
//! One deliberate deviation from the paper's literal description: the Case-2
//! insertion (adding a wide row that keeps the referenced dimension content
//! reachable) is only performed when some referenced row would otherwise
//! become unreachable from the wide table. When other wide rows still map to
//! all the same dimension rows, inserting a duplicate witness is pointless,
//! so we skip it; when the insert does happen, any redundant witnesses it
//! carries are collapsed by the ground truth's identity-based row
//! deduplication — this is exactly the paper's own requirement that injected
//! noise "does not violate the ground-truth results of normal data".

use crate::normalize::NormalizedDb;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use tqs_sql::value::Value;

/// Which corruption is applied to a chosen key cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoiseKind {
    Null,
    Boundary,
}

/// Whether the corrupted column was the table's implicit primary key
/// (Case 1 of §3.2) or a foreign key column (Case 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NoiseCase {
    PrimaryKey,
    ForeignKey,
}

/// A record of one injected corruption, kept for bug-report provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseRecord {
    pub table: String,
    pub column: String,
    pub schema_row: u32,
    pub kind: NoiseKind,
    pub case: NoiseCase,
    pub value: Value,
    /// Wide-table row appended by the synchronization rules, if any.
    pub inserted_wide_row: Option<u64>,
}

/// Noise-injection configuration. `epsilon` is the fraction of rows corrupted
/// per key column (the paper's ε).
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    pub epsilon: f64,
    pub seed: u64,
    /// Hard cap on total injections (keeps small test schemas tractable).
    pub max_injections: usize,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            epsilon: 0.02,
            seed: 17,
            max_injections: 64,
        }
    }
}

/// Inject noise into `db` and return the records of what was corrupted.
pub fn inject_noise(db: &mut NormalizedDb, cfg: &NoiseConfig) -> Vec<NoiseRecord> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut records = Vec::new();
    let mut salt = 1u64;

    // Candidate (table, column, case) targets.
    let mut targets: Vec<(String, String, NoiseCase)> = Vec::new();
    for m in &db.metas {
        if m.implicit_pk.len() == 1 && !m.is_base {
            targets.push((
                m.name.clone(),
                m.implicit_pk[0].clone(),
                NoiseCase::PrimaryKey,
            ));
        }
    }
    for (from, cols, _to, _) in db.catalog.foreign_key_edges() {
        if cols.len() == 1 {
            targets.push((from, cols[0].clone(), NoiseCase::ForeignKey));
        }
    }
    targets.sort();
    targets.dedup();

    for (table, column, case) in targets {
        if records.len() >= cfg.max_injections {
            break;
        }
        let n_rows = match db.catalog.table(&table) {
            Some(t) => t.row_count(),
            None => continue,
        };
        if n_rows == 0 {
            continue;
        }
        let n_inject = ((n_rows as f64 * cfg.epsilon).ceil() as usize)
            .clamp(1, n_rows)
            .min(cfg.max_injections - records.len());
        let mut rows: Vec<usize> = (0..n_rows).collect();
        rows.shuffle(&mut rng);
        for &row in rows.iter().take(n_inject) {
            let kind = if rng.gen_bool(0.5) {
                NoiseKind::Null
            } else {
                NoiseKind::Boundary
            };
            let value = match kind {
                NoiseKind::Null => Value::Null,
                NoiseKind::Boundary => match unique_boundary(db, &table, &column, &mut salt) {
                    Some(v) => v,
                    None => Value::Null,
                },
            };
            if let Some(rec) = apply_noise(db, &table, &column, row as u32, case, kind, value) {
                records.push(rec);
            }
        }
    }
    records
}

/// Produce a boundary value for the column's type that appears nowhere in the
/// wide table column nor in the schema table column.
fn unique_boundary(db: &NormalizedDb, table: &str, column: &str, salt: &mut u64) -> Option<Value> {
    let ty = db.wide.attr_type(column)?;
    let existing: HashSet<String> = collect_existing(db, table, column);
    // First try the canonical boundary value, then salted alternates.
    let mut candidates = vec![ty.boundary_value()];
    for _ in 0..16 {
        *salt += 1;
        candidates.push(ty.alt_boundary_value(*salt));
    }
    candidates
        .into_iter()
        .find(|v| !existing.contains(&format!("{v}")))
}

fn collect_existing(db: &NormalizedDb, table: &str, column: &str) -> HashSet<String> {
    let mut out = HashSet::new();
    if let Some(idx) = db.wide.attr_index(column) {
        for r in &db.wide.table.rows {
            out.insert(format!("{}", r.get(idx + 1)));
        }
    }
    if let Some(t) = db.catalog.table(table) {
        if let Some(ci) = t.column_index(column) {
            for r in &t.rows {
                out.insert(format!("{}", r.get(ci)));
            }
        }
    }
    out
}

/// Apply one corruption and synchronize the wide table, RowID map and bitmap.
pub fn apply_noise(
    db: &mut NormalizedDb,
    table: &str,
    column: &str,
    schema_row: u32,
    case: NoiseCase,
    kind: NoiseKind,
    value: Value,
) -> Option<NoiseRecord> {
    let meta = db.meta(table)?.clone();
    // Columns functionally dependent on the corrupted column (Fd(col_k)).
    let dependents = db.fds.determined_by(column);
    // Tables whose attribute columns fall entirely inside {col} ∪ dependents.
    let mut span: Vec<String> = vec![column.to_string()];
    span.extend(dependents.iter().cloned());
    let dep_tables: Vec<String> = db
        .metas
        .iter()
        .filter(|m| m.columns.iter().all(|c| span.contains(c)))
        .map(|m| m.name.clone())
        .collect();

    // Affected wide rows: those currently mapping to the corrupted row.
    let affected: Vec<usize> = db.rowid_map.reverse(table, schema_row);
    if affected.is_empty() {
        return None;
    }
    let exemplar = affected[0];

    // Snapshot the exemplar's relevant values BEFORE mutating anything.
    let mut snapshot: Vec<(String, Value)> = Vec::new();
    for c in &span {
        snapshot.push((
            c.clone(),
            db.wide
                .cell(exemplar as u64, c)
                .cloned()
                .unwrap_or(Value::Null),
        ));
    }
    let exemplar_maps: Vec<(String, Option<u32>)> = dep_tables
        .iter()
        .map(|t| (t.clone(), db.rowid_map.get(exemplar, t)))
        .collect();

    // 1. Corrupt the schema table cell.
    {
        let t = db.catalog.table_mut(table)?;
        t.set_cell(schema_row as usize, column, value.clone())
            .ok()?;
    }

    // 2. Decide whether the synchronization needs the insertion rule: when
    //    *any* dependent-table target row would otherwise lose its last
    //    wide-table witness. Witness loss is per table, so requiring it of
    //    every table at once would leave single-table orphans behind —
    //    injections interact: an earlier corruption may already have drained
    //    all other witnesses of one target while its siblings keep theirs.
    //    The inserted row adds a redundant witness for the targets that are
    //    still reachable, which the ground truth's identity-based
    //    deduplication renders harmless.
    let needs_insert = match case {
        NoiseCase::PrimaryKey => true,
        NoiseCase::ForeignKey => dep_tables
            .iter()
            .any(|t| match db.rowid_map.get(exemplar, t) {
                Some(target) => db
                    .rowid_map
                    .reverse(t, target)
                    .iter()
                    .all(|r| affected.contains(r)),
                None => false,
            }),
    };

    // 3. Update rule on the affected wide rows.
    for &r in &affected {
        match case {
            NoiseCase::PrimaryKey => {
                // Dependent columns become NULL; the key column keeps its
                // original (now dangling) value.
                for c in &dependents {
                    let _ = db.wide.set_cell(r as u64, c, Value::Null);
                }
            }
            NoiseCase::ForeignKey => {
                let _ = db.wide.set_cell(r as u64, column, value.clone());
                for c in &dependents {
                    let _ = db.wide.set_cell(r as u64, c, Value::Null);
                }
            }
        }
        for t in &dep_tables {
            db.rowid_map.set(r, t, None);
            db.bitmap.set(t, r, false);
        }
        // In the primary-key case the corrupted table itself also loses the
        // witnesses (its old key no longer exists).
        if case == NoiseCase::PrimaryKey {
            db.rowid_map.set(r, table, None);
            db.bitmap.set(table, r, false);
        }
    }

    // 4. Insertion rule: append a wide row witnessing the corrupted /
    //    orphaned dimension content.
    let mut inserted = None;
    if needs_insert {
        let attrs: Vec<Value> = db
            .wide
            .attr_names()
            .iter()
            .map(|c| {
                if c.eq_ignore_ascii_case(column) {
                    match case {
                        NoiseCase::PrimaryKey => value.clone(),
                        // Case 2 keeps the ORIGINAL key value so the orphaned
                        // dimension rows stay reachable.
                        NoiseCase::ForeignKey => snapshot
                            .iter()
                            .find(|(sc, _)| sc == c)
                            .map(|(_, v)| v.clone())
                            .unwrap_or(Value::Null),
                    }
                } else if span.contains(c) {
                    snapshot
                        .iter()
                        .find(|(sc, _)| sc == c)
                        .map(|(_, v)| v.clone())
                        .unwrap_or(Value::Null)
                } else {
                    Value::Null
                }
            })
            .collect();
        let new_row = db.wide.append(attrs).ok()?;
        db.rowid_map.push_row();
        db.bitmap.grow(db.wide.row_count());
        for (t, target) in &exemplar_maps {
            let target = match case {
                // The new row witnesses the *corrupted* row of the noised
                // table itself, and the exemplar's rows of deeper dimensions.
                NoiseCase::PrimaryKey if t.eq_ignore_ascii_case(table) => Some(schema_row),
                _ => *target,
            };
            if let Some(idx) = target {
                db.rowid_map.set(new_row as usize, t, Some(idx));
                db.bitmap.set(t, new_row as usize, true);
            }
        }
        // Primary-key case: the noised table may not be in dep_tables when it
        // holds extra columns; make sure the new row still witnesses it.
        if case == NoiseCase::PrimaryKey
            && !dep_tables.iter().any(|t| t.eq_ignore_ascii_case(table))
        {
            db.rowid_map.set(new_row as usize, table, Some(schema_row));
            db.bitmap.set(table, new_row as usize, true);
        }
        inserted = Some(new_row);
    }

    Some(NoiseRecord {
        table: meta.name,
        column: column.to_string(),
        schema_row,
        kind,
        case,
        value,
        inserted_wide_row: inserted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{FdDiscoveryConfig, FdSet};
    use crate::normalize::normalize;
    use tqs_storage::widegen::{shopping_orders, ShoppingConfig};

    fn db() -> NormalizedDb {
        let wide = shopping_orders(&ShoppingConfig {
            n_rows: 120,
            ..Default::default()
        });
        let fds = FdSet::discover(&wide, &FdDiscoveryConfig::default());
        normalize(wide, &fds)
    }

    fn invariant_map_matches_bitmap(db: &NormalizedDb) {
        for row in 0..db.wide.row_count() {
            for m in &db.metas {
                assert_eq!(
                    db.rowid_map.get(row, &m.name).is_some(),
                    db.bitmap.get(&m.name, row),
                    "map/bitmap divergence at {} row {row}",
                    m.name
                );
            }
        }
    }

    #[test]
    fn primary_key_noise_follows_case_1_rules() {
        let mut d = db();
        let users = d.table_with_pk("userId").unwrap().name.clone();
        let before_rows = d.wide.row_count();
        let affected_before = d.rowid_map.reverse(&users, 0);
        assert!(!affected_before.is_empty());
        let rec = apply_noise(
            &mut d,
            &users,
            "userId",
            0,
            NoiseCase::PrimaryKey,
            NoiseKind::Boundary,
            Value::str("ZZZZZZZZ"),
        )
        .unwrap();
        // a new wide row was inserted carrying the noisy key + dependents
        let new_row = rec.inserted_wide_row.unwrap();
        assert_eq!(new_row as usize, before_rows);
        assert_eq!(
            d.wide.cell(new_row, "userId"),
            Some(&Value::str("ZZZZZZZZ"))
        );
        assert!(!d.wide.cell(new_row, "userName").unwrap().is_null());
        assert!(d.wide.cell(new_row, "goodsId").unwrap().is_null());
        // previously-mapped wide rows lost the dependent values and mapping
        for r in &affected_before {
            assert!(d.wide.cell(*r as u64, "userName").unwrap().is_null());
            assert_eq!(d.rowid_map.get(*r, &users), None);
            assert!(!d.bitmap.get(&users, *r));
            // the key value itself is kept (now dangling)
            assert!(!d.wide.cell(*r as u64, "userId").unwrap().is_null());
        }
        // the new row witnesses the corrupted user row
        assert_eq!(d.rowid_map.get(new_row as usize, &users), Some(0));
        invariant_map_matches_bitmap(&d);
    }

    #[test]
    fn foreign_key_noise_follows_case_2_rules() {
        let mut d = db();
        // corrupt the base table's goodsId FK in one row
        let base = "T1".to_string();
        let goods = d.table_with_pk("goodsId").unwrap().name.clone();
        // pick base row 0; its wide witnesses:
        let affected = d.rowid_map.reverse(&base, 0);
        assert!(!affected.is_empty());
        let r0 = affected[0];
        let old_goods_name = d.wide.cell(r0 as u64, "goodsName").unwrap().clone();
        assert!(!old_goods_name.is_null());
        let rec = apply_noise(
            &mut d,
            &base,
            "goodsId",
            0,
            NoiseCase::ForeignKey,
            NoiseKind::Boundary,
            Value::Int(65_535),
        )
        .unwrap();
        // the wide rows now carry the noisy FK and NULLed dependents
        for r in &affected {
            assert_eq!(d.wide.cell(*r as u64, "goodsId"), Some(&Value::Int(65_535)));
            assert!(d.wide.cell(*r as u64, "goodsName").unwrap().is_null());
            assert_eq!(d.rowid_map.get(*r, &goods), None);
        }
        // the goods dimension value 1111-ish is shared by other wide rows in
        // this dataset, so the insertion rule is usually skipped; either way
        // the invariant holds.
        if let Some(new_row) = rec.inserted_wide_row {
            assert_eq!(d.wide.cell(new_row, "goodsName"), Some(&old_goods_name));
        }
        invariant_map_matches_bitmap(&d);
    }

    #[test]
    fn inject_noise_respects_epsilon_and_uniqueness() {
        let mut d = db();
        let recs = inject_noise(
            &mut d,
            &NoiseConfig {
                epsilon: 0.05,
                seed: 5,
                max_injections: 20,
            },
        );
        assert!(!recs.is_empty());
        assert!(recs.len() <= 20);
        invariant_map_matches_bitmap(&d);
        // boundary values must be unique per column
        let mut seen = std::collections::HashSet::new();
        for r in &recs {
            if r.kind == NoiseKind::Boundary {
                assert!(
                    seen.insert(format!("{}:{}", r.column, r.value)),
                    "duplicate boundary noise {:?}",
                    r
                );
            }
        }
    }

    #[test]
    fn null_noise_on_primary_key_keeps_invariants() {
        let mut d = db();
        let goods = d.table_with_pk("goodsId").unwrap().name.clone();
        apply_noise(
            &mut d,
            &goods,
            "goodsId",
            3,
            NoiseCase::PrimaryKey,
            NoiseKind::Null,
            Value::Null,
        )
        .unwrap();
        // the schema table now holds a NULL key
        let t = d.catalog.table(&goods).unwrap();
        assert!(t.cell(3, "goodsId").unwrap().is_null());
        invariant_map_matches_bitmap(&d);
    }

    #[test]
    fn noise_on_unknown_row_is_a_noop() {
        let mut d = db();
        let goods = d.table_with_pk("goodsId").unwrap().name.clone();
        let n = d.catalog.table(&goods).unwrap().row_count() as u32;
        // reverse() of a non-existent row is empty → no record
        assert!(apply_noise(
            &mut d,
            &goods,
            "goodsId",
            n + 50,
            NoiseCase::PrimaryKey,
            NoiseKind::Null,
            Value::Null
        )
        .is_none());
    }
}
