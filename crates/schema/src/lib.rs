//! # tqs-schema
//!
//! The data layer of DSG (Data-guided Schema and query Generation):
//!
//! * [`fd`] — TANE-style functional-dependency discovery and FD-set algebra.
//! * [`normalize`] — 3NF synthesis of the wide table into schema tables with
//!   explicit RowIDs, the populated [`tqs_storage::Catalog`], the RowID map
//!   and the join bitmap index (§3.1).
//! * [`rowmap`] / [`bitmap`] — the RowID map table and the (optionally
//!   WAH-compressed) join bitmap index with jump intersection.
//! * [`noise`] — noise injection with wide-table synchronization (§3.2).
//! * [`groundtruth`] — ground-truth result recovery per Table 2 (§3.4).
//! * [`schemagraph`] — the schema graph `G_s` walked by the query generator.

pub mod bitmap;
pub mod fd;
pub mod groundtruth;
pub mod noise;
pub mod normalize;
pub mod rowmap;
pub mod schemagraph;

pub use bitmap::{jump_intersect, Bitmap, JoinBitmapIndex, WahBitmap};
pub use fd::{Fd, FdDiscoveryConfig, FdSet};
pub use groundtruth::{GroundTruth, GroundTruthEvaluator, GtError};
pub use noise::{inject_noise, NoiseCase, NoiseConfig, NoiseKind, NoiseRecord};
pub use normalize::{normalize, NormalizedDb, SchemaTableMeta};
pub use rowmap::RowIdMap;
pub use schemagraph::{ColumnVertex, JoinEdge, SchemaGraph};

#[cfg(test)]
mod proptests {
    use crate::bitmap::{Bitmap, WahBitmap};
    use proptest::prelude::*;

    fn arb_bitmap() -> impl Strategy<Value = Bitmap> {
        (
            1usize..400,
            proptest::collection::vec(any::<bool>(), 0..400),
        )
            .prop_map(|(len, bits)| {
                let mut b = Bitmap::new(len);
                for (i, v) in bits.into_iter().enumerate().take(len) {
                    b.set(i, v);
                }
                b
            })
    }

    proptest! {
        /// WAH compression is lossless.
        #[test]
        fn wah_round_trip(b in arb_bitmap()) {
            let wah = WahBitmap::compress(&b);
            prop_assert_eq!(wah.decompress(), b);
        }

        /// Bitmap algebra identities used by the Table 2 fold.
        #[test]
        fn bitmap_algebra(a in arb_bitmap(), b in arb_bitmap()) {
            let and = a.and(&b);
            let or = a.or(&b);
            let anti = a.and_not(&b);
            // AND ⊆ A, A ⊆ OR, anti ∩ b = ∅
            for i in and.ones() { prop_assert!(a.get(i) && b.get(i)); }
            for i in a.ones() { prop_assert!(or.get(i)); }
            for i in anti.ones() { prop_assert!(a.get(i) && !b.get(i)); }
            // |A| = |A∧B| + |A∧¬B|
            prop_assert_eq!(a.count_ones(), and.count_ones() + anti.count_ones());
        }
    }
}
