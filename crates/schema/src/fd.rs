//! Functional-dependency discovery (a level-wise, TANE-style miner) and the
//! FD-set operations (closure, transitive dependents, candidate key, minimal
//! cover) needed by schema normalization and noise injection.
//!
//! The paper uses TANE / HyFD; at wide-table widths of 8–20 columns a plain
//! level-wise search with partition counting is exact and fast enough, and it
//! produces the same artifact: the set of minimal FDs supported by the data.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use tqs_storage::WideTable;

/// A functional dependency `lhs → rhs` (single-attribute RHS).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fd {
    pub lhs: Vec<String>,
    pub rhs: String,
}

impl Fd {
    pub fn new(lhs: Vec<&str>, rhs: &str) -> Self {
        Fd {
            lhs: lhs.into_iter().map(String::from).collect(),
            rhs: rhs.into(),
        }
    }
}

impl std::fmt::Display for Fd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{}}} -> {}", self.lhs.join(", "), self.rhs)
    }
}

/// A set of FDs over the attribute columns of one wide table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FdSet {
    pub attributes: Vec<String>,
    pub fds: Vec<Fd>,
}

/// Configuration for FD discovery.
#[derive(Debug, Clone)]
pub struct FdDiscoveryConfig {
    /// Maximum LHS size explored by the level-wise search. The default is 1:
    /// single-attribute FDs are what drive the paper's schema decomposition
    /// (Example 3.1), and on small sampled wide tables composite LHS sets are
    /// prone to spurious, accidentally-satisfied dependencies that would
    /// produce degenerate dimension tables.
    pub max_lhs: usize,
}

impl Default for FdDiscoveryConfig {
    fn default() -> Self {
        FdDiscoveryConfig { max_lhs: 1 }
    }
}

/// A value fingerprint per row for one attribute (NULL gets its own marker so
/// NULL ≠ NULL for FD purposes does not split partitions spuriously — we
/// treat NULLs as one equivalence class, which is what the data-driven
/// normalizers do).
fn column_fingerprints(wide: &WideTable, attr: &str) -> Vec<String> {
    let idx = wide
        .attr_index(attr)
        .expect("attribute exists") // callers iterate over attr_names()
        + 1; // +1 to skip RowID in the underlying table
    wide.table
        .rows
        .iter()
        .map(|r| {
            let v = r.get(idx);
            if v.is_null() {
                "\u{0}NULL".to_string()
            } else {
                format!("{}:{v}", v.type_tag())
            }
        })
        .collect()
}

/// Count distinct groups of the projection onto `cols`.
fn group_count(fps: &HashMap<String, Vec<String>>, cols: &[String], n_rows: usize) -> usize {
    let mut seen: HashSet<String> = HashSet::with_capacity(n_rows);
    let parts: Vec<&Vec<String>> = cols.iter().map(|c| &fps[c]).collect();
    for row in 0..n_rows {
        let mut key = String::new();
        for p in &parts {
            key.push_str(&p[row]);
            key.push('\u{1}');
        }
        seen.insert(key);
    }
    seen.len()
}

impl FdSet {
    /// Discover the minimal FDs supported by the data, with LHS size up to
    /// `cfg.max_lhs`.
    pub fn discover(wide: &WideTable, cfg: &FdDiscoveryConfig) -> FdSet {
        let attributes = wide.attr_names();
        let n_rows = wide.row_count();
        let mut fps: HashMap<String, Vec<String>> = HashMap::new();
        for a in &attributes {
            fps.insert(a.clone(), column_fingerprints(wide, a));
        }
        let mut fds: Vec<Fd> = Vec::new();
        // Pre-compute distinct counts per single column.
        let singles: HashMap<String, usize> = attributes
            .iter()
            .map(|a| {
                (
                    a.clone(),
                    group_count(&fps, std::slice::from_ref(a), n_rows),
                )
            })
            .collect();

        // Level 1: single-attribute LHS.
        for lhs in &attributes {
            for rhs in &attributes {
                if lhs == rhs {
                    continue;
                }
                let combined = group_count(&fps, &[lhs.clone(), rhs.clone()], n_rows);
                if combined == singles[lhs] {
                    fds.push(Fd {
                        lhs: vec![lhs.clone()],
                        rhs: rhs.clone(),
                    });
                }
            }
        }
        // Higher levels: only add an FD if no subset of the LHS already
        // determines the RHS (minimality).
        for size in 2..=cfg.max_lhs {
            let combos = combinations(&attributes, size);
            for lhs in combos {
                let lhs_groups = group_count(&fps, &lhs, n_rows);
                for rhs in &attributes {
                    if lhs.contains(rhs) {
                        continue;
                    }
                    let already = fds
                        .iter()
                        .any(|fd| fd.rhs == *rhs && fd.lhs.iter().all(|c| lhs.contains(c)));
                    if already {
                        continue;
                    }
                    let mut with_rhs = lhs.clone();
                    with_rhs.push(rhs.clone());
                    if group_count(&fps, &with_rhs, n_rows) == lhs_groups {
                        fds.push(Fd {
                            lhs: lhs.clone(),
                            rhs: rhs.clone(),
                        });
                    }
                }
            }
        }
        FdSet { attributes, fds }
    }

    /// Attribute closure of `cols` under this FD set.
    pub fn closure(&self, cols: &[String]) -> HashSet<String> {
        let mut closed: HashSet<String> = cols.iter().cloned().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for fd in &self.fds {
                if !closed.contains(&fd.rhs) && fd.lhs.iter().all(|c| closed.contains(c)) {
                    closed.insert(fd.rhs.clone());
                    changed = true;
                }
            }
        }
        closed
    }

    /// All attributes transitively determined by the single column `col`
    /// (excluding `col` itself). This is `Fd(col_k)` in §3.2.
    pub fn determined_by(&self, col: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .closure(&[col.to_string()])
            .into_iter()
            .filter(|c| c != col)
            .collect();
        out.sort();
        out
    }

    /// A candidate key of the full attribute set: start from all attributes
    /// and greedily drop any attribute still implied by the rest.
    pub fn candidate_key(&self) -> Vec<String> {
        let mut key: Vec<String> = self.attributes.clone();
        let all: HashSet<String> = self.attributes.iter().cloned().collect();
        let mut i = 0;
        while i < key.len() {
            let mut trial = key.clone();
            trial.remove(i);
            if self.closure(&trial) == all {
                key.remove(i);
            } else {
                i += 1;
            }
        }
        key
    }

    /// Reduce to a minimal cover: drop extraneous LHS attributes, then drop
    /// FDs implied by the rest (e.g. the transitive `goodsId → price` when
    /// `goodsId → goodsName → price` is present).
    pub fn minimal_cover(&self) -> FdSet {
        let mut fds = self.fds.clone();
        // 1. remove extraneous LHS attributes
        for fd in fds.iter_mut() {
            let mut i = 0;
            while fd.lhs.len() > 1 && i < fd.lhs.len() {
                let mut trial = fd.lhs.clone();
                trial.remove(i);
                let tmp = FdSet {
                    attributes: self.attributes.clone(),
                    fds: self.fds.clone(),
                };
                if tmp.closure(&trial).contains(&fd.rhs) {
                    fd.lhs.remove(i);
                } else {
                    i += 1;
                }
            }
        }
        fds.sort_by(|a, b| (a.lhs.len(), &a.lhs, &a.rhs).cmp(&(b.lhs.len(), &b.lhs, &b.rhs)));
        fds.dedup();
        // 2. remove redundant FDs. Redundancy elimination is order-dependent;
        //    we test the "shortcut" FDs first (those whose RHS is reachable
        //    through an intermediate attribute, e.g. `goodsId → price` when
        //    `goodsId → goodsName → price` exists) so the surviving cover
        //    keeps the chain structure that 3NF synthesis turns into the
        //    paper's T1–T4 style decomposition.
        // score(X → A) = #{ B : (X → B) and (B → A) are both present, B ∉ X }
        let shortcut_score = |fd: &Fd, all: &[Fd]| -> usize {
            all.iter()
                .filter(|first| first.lhs == fd.lhs && first.rhs != fd.rhs)
                .filter(|first| {
                    all.iter().any(|second| {
                        second.lhs.len() == 1 && second.lhs[0] == first.rhs && second.rhs == fd.rhs
                    })
                })
                .count()
        };
        let mut order: Vec<usize> = (0..fds.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(shortcut_score(&fds[i], &fds)));
        let mut removed = vec![false; fds.len()];
        for &i in &order {
            let rest: Vec<Fd> = fds
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i && !removed[*j])
                .map(|(_, f)| f.clone())
                .collect();
            let tmp = FdSet {
                attributes: self.attributes.clone(),
                fds: rest,
            };
            if tmp.closure(&fds[i].lhs).contains(&fds[i].rhs) {
                removed[i] = true;
            }
        }
        let keep: Vec<Fd> = fds
            .into_iter()
            .zip(removed)
            .filter(|(_, r)| !r)
            .map(|(f, _)| f)
            .collect();
        FdSet {
            attributes: self.attributes.clone(),
            fds: keep,
        }
    }

    pub fn len(&self) -> usize {
        self.fds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Does `lhs → rhs` follow from this FD set?
    pub fn implies(&self, lhs: &[String], rhs: &str) -> bool {
        self.closure(lhs).contains(rhs)
    }
}

/// All `size`-combinations of `items`, in a stable order.
fn combinations(items: &[String], size: usize) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let n = items.len();
    if size > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..size).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i].clone()).collect());
        // advance
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - size {
                idx[i] += 1;
                for j in i + 1..size {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_storage::widegen::{shopping_orders, ShoppingConfig};

    fn shopping_fds() -> FdSet {
        let w = shopping_orders(&ShoppingConfig::default());
        FdSet::discover(&w, &FdDiscoveryConfig::default())
    }

    #[test]
    fn discovers_the_paper_example_fds() {
        let fds = shopping_fds();
        assert!(fds.implies(&["goodsId".into()], "goodsName"));
        assert!(fds.implies(&["goodsName".into()], "price"));
        assert!(fds.implies(&["userId".into()], "userName"));
        // and not nonsense
        assert!(!fds.implies(&["userName".into()], "goodsId"));
        assert!(!fds.implies(&["quantity".into()], "price"));
    }

    #[test]
    fn minimal_cover_drops_transitive_fds() {
        let fds = shopping_fds().minimal_cover();
        // `goodsId → price` is implied transitively via goodsName; a minimal
        // cover keeps at most one of the two goodsId FDs explicitly…
        let direct_price = fds
            .fds
            .iter()
            .any(|fd| fd.lhs == vec!["goodsId".to_string()] && fd.rhs == "price");
        let via_name = fds
            .fds
            .iter()
            .any(|fd| fd.lhs == vec!["goodsId".to_string()] && fd.rhs == "goodsName");
        assert!(!(direct_price && via_name), "cover kept a redundant FD");
        // …and the cover is smaller than the discovered set while still
        // implying everything.
        assert!(fds.len() < shopping_fds().len());
        assert!(fds.implies(&["goodsId".into()], "price"));
        assert!(fds.implies(&["goodsId".into()], "goodsName"));
    }

    #[test]
    fn closure_and_candidate_key() {
        let fds = shopping_fds();
        let cl = fds.closure(&["goodsId".into()]);
        assert!(cl.contains("goodsName"));
        assert!(cl.contains("price"));
        assert!(!cl.contains("userName"));
        let key = fds.candidate_key();
        // the key must determine everything
        assert_eq!(fds.closure(&key).len(), fds.attributes.len());
        // and must not contain derived attributes
        assert!(!key.contains(&"goodsName".to_string()));
        assert!(!key.contains(&"userName".to_string()));
        assert!(!key.contains(&"price".to_string()));
    }

    #[test]
    fn determined_by_is_transitive() {
        let fds = shopping_fds();
        let dep = fds.determined_by("goodsId");
        assert!(dep.contains(&"goodsName".to_string()));
        assert!(dep.contains(&"price".to_string()));
        assert!(!dep.contains(&"goodsId".to_string()));
    }

    #[test]
    fn combinations_enumerates_all() {
        let items: Vec<String> = vec!["a".into(), "b".into(), "c".into(), "d".into()];
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 4).len(), 1);
        assert_eq!(combinations(&items, 5).len(), 0);
    }

    #[test]
    fn handcrafted_fdset_operations() {
        let fds = FdSet {
            attributes: vec!["a".into(), "b".into(), "c".into()],
            fds: vec![Fd::new(vec!["a"], "b"), Fd::new(vec!["b"], "c")],
        };
        assert!(fds.implies(&["a".into()], "c"));
        assert_eq!(fds.candidate_key(), vec!["a".to_string()]);
        assert_eq!(
            fds.determined_by("a"),
            vec!["b".to_string(), "c".to_string()]
        );
        assert_eq!(format!("{}", fds.fds[0]), "{a} -> b");
    }
}
