//! Bug reports, the bug log (with root-cause de-duplication) and the
//! C-Reduce-style test-case minimizer.

use crate::backend::DbmsConnector;
use crate::oracle::{Oracle, OracleVerdict};
use serde::Serialize;
use tqs_engine::FaultKind;
use tqs_schema::GroundTruthEvaluator;
use tqs_sql::ast::{Expr, SelectItem, SelectStmt};
use tqs_sql::hints::HintSet;
use tqs_sql::render::render_stmt;
use tqs_storage::ResultSet;

/// How a bug was established — the verdict class a report carries. The
/// checking logic itself lives behind the [`Oracle`] trait
/// (see [`crate::oracle`]); this enum only labels the evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum OracleKind {
    /// Result set differs from the wide-table ground truth.
    GroundTruth,
    /// Two physical plans of the same query disagree (differential testing).
    Differential,
    /// Two engine builds disagree on the same statement (cross-engine
    /// differential testing).
    CrossEngine,
    /// A pivot row that must appear in the result is missing (PQS).
    PivotMissing,
    /// Ternary partitioning counts do not add up (TLP).
    Partitioning,
    /// Optimized vs non-optimizing rewrite disagree (NoRec).
    NonOptimizingRewrite,
    /// A plan from the enumerated plan space disagrees with the ground truth
    /// or the rest of the space, fails hint conformance, or violates cost
    /// sanity (the cost-model pick costing more than another enumerated
    /// plan).
    PlanSpace,
    /// A mutation workload (DML + transactions) left the database in a state
    /// that disagrees with the delta-maintained ground truth.
    Mutation,
    /// The harness itself panicked while hunting a cell. The report carries
    /// the panic payload (in `sql`) and the cell id (in `hint_label`); it is
    /// an incident record, not an engine bug, and reverification always
    /// classifies it Stale.
    HarnessPanic,
}

/// One detected logic bug.
#[derive(Debug, Clone, Serialize)]
pub struct BugReport {
    pub dbms: String,
    pub oracle: OracleKind,
    pub sql: String,
    pub transformed_sql: String,
    pub hint_label: String,
    pub expected_rows: usize,
    pub observed_rows: usize,
    /// Root-cause classification (the engine's fired faults — the analogue of
    /// the paper's developer analysis; empty when the oracle itself was the
    /// only witness).
    pub fired: Vec<FaultKind>,
    /// Minimized reproducer, if the reducer was run.
    pub minimized_sql: Option<String>,
    /// Canonical plan-graph fingerprint of the failing query
    /// ([`tqs_graph::plangraph::plan_fingerprint`]), stamped by whoever holds
    /// the schema description (the session, the campaign worker). `None`
    /// when no fingerprint was computed — de-duplication then falls back to
    /// the coarse [`signature`](Self::signature).
    ///
    /// Key-relevant fields (`dbms`, `fired`, `hint_label`, this one) feed the
    /// memoized dedup keys; code that mutates them after a key was read must
    /// reset [`keys`](Self::keys) (or go through
    /// [`with_fingerprint`](Self::with_fingerprint), which does).
    pub fingerprint: Option<u64>,
    /// Lazily memoized dedup keys — campaign-wide triage calls
    /// [`signature`](Self::signature)/[`class_key`](Self::class_key) once per
    /// *sighting*, and at fleet throughput re-`format!`ing them per
    /// divergence dominated triage allocation.
    pub keys: KeyCache,
}

/// Lazily computed [`BugReport`] dedup keys. Opaque on purpose: resetting it
/// to `KeyCache::default()` is the only outside operation, for callers that
/// mutate a report's key-relevant fields in place.
#[derive(Debug, Clone, Default, Serialize)]
pub struct KeyCache {
    signature: std::sync::OnceLock<String>,
    cause: std::sync::OnceLock<String>,
    class: std::sync::OnceLock<String>,
}

impl BugReport {
    /// Attach the canonical plan-graph fingerprint of the failing query.
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.set_fingerprint(Some(fingerprint));
        self
    }

    /// Set (or clear) the fingerprint in place, dropping the memoized keys it
    /// feeds — the sanctioned way to re-key an existing report.
    pub fn set_fingerprint(&mut self, fingerprint: Option<u64>) {
        self.fingerprint = fingerprint;
        self.keys = KeyCache::default();
    }

    fn fault_labels(&self) -> String {
        let faults: Vec<String> = self.fired.iter().map(|f| format!("{f:?}")).collect();
        faults.join(",")
    }

    /// Signature used for de-duplication: bugs with the same root cause and
    /// the same join-structure shape are counted once per "bug", many such
    /// bugs map to one "bug type". Computed once per report.
    pub fn signature(&self) -> &str {
        self.keys
            .signature
            .get_or_init(|| format!("{}|{}|{}", self.dbms, self.fault_labels(), self.hint_label))
    }

    /// The bug-*class* key a fleet deduplicates on: the build name plus the
    /// build-independent [`cause_key`](Self::cause_key) — structurally, so
    /// the two can never drift apart. Two hint sets tripping the same fault
    /// on isomorphic queries are one class, while the same fault on a
    /// structurally different plan stays a separate class. Without a
    /// stamped fingerprint this degenerates to the coarse
    /// [`signature`](Self::signature). Computed once per report.
    pub fn class_key(&self) -> &str {
        self.keys
            .class
            .get_or_init(|| format!("{}|{}", self.dbms, self.cause_key()))
    }

    /// Build-independent root cause: root-cause faults plus the canonical
    /// plan-graph fingerprint (falling back to the hint label when no
    /// fingerprint was stamped) — [`class_key`](Self::class_key) without the
    /// build name. Re-verification matches live re-executions of a corpus
    /// class against the recorded report with it, so a class keeps its
    /// identity across engine builds of the same profile (faulty vs
    /// fault-free) whose connector names differ. Computed once per report.
    pub fn cause_key(&self) -> &str {
        self.keys.cause.get_or_init(|| match self.fingerprint {
            Some(fp) => format!("{}|plan:{fp:016x}", self.fault_labels()),
            None => format!("{}|{}", self.fault_labels(), self.hint_label),
        })
    }

    /// The bug *type* identifiers (Table 4 granularity): one entry per
    /// root-cause fault, or the oracle when no fault provenance exists.
    pub fn bug_types(&self) -> Vec<String> {
        if self.fired.is_empty() {
            vec![format!("{:?}", self.oracle)]
        } else {
            self.fired.iter().map(|f| format!("{f:?}")).collect()
        }
    }

    /// A single combined label (used in report listings).
    pub fn bug_type(&self) -> String {
        self.bug_types().join("+")
    }
}

/// The accumulating bug log with de-duplication.
#[derive(Debug, Clone, Default, Serialize)]
pub struct BugLog {
    pub reports: Vec<BugReport>,
    seen_signatures: std::collections::HashSet<String>,
}

impl BugLog {
    pub fn new() -> Self {
        BugLog::default()
    }

    /// Add a report unless its bug class is already logged. Classes are the
    /// plan-fingerprint [`BugReport::class_key`] when a fingerprint was
    /// stamped, and the coarse [`BugReport::signature`] otherwise. Returns
    /// true when the report was new.
    pub fn push(&mut self, report: BugReport) -> bool {
        if self.seen_signatures.contains(report.class_key()) {
            return false;
        }
        self.seen_signatures.insert(report.class_key().to_string());
        self.reports.push(report);
        true
    }

    pub fn bug_count(&self) -> usize {
        self.reports.len()
    }

    /// Distinct bug types (root causes): each implicated fault counts once,
    /// matching the granularity of the paper's Table 4.
    pub fn bug_types(&self) -> Vec<String> {
        let mut t: Vec<String> = self.reports.iter().flat_map(|r| r.bug_types()).collect();
        t.sort();
        t.dedup();
        t
    }

    pub fn bug_type_count(&self) -> usize {
        self.bug_types().len()
    }

    /// Distinct fault kinds implicated across all reports.
    pub fn implicated_faults(&self) -> Vec<FaultKind> {
        let mut f: Vec<FaultKind> = self.reports.iter().flat_map(|r| r.fired.clone()).collect();
        f.sort();
        f.dedup();
        f
    }
}

/// Delta-debugging style minimizer: repeatedly try to drop joins, predicates
/// and projections while the mismatch against the ground truth persists.
pub fn minimize_query(
    stmt: &SelectStmt,
    hints: &HintSet,
    conn: &mut dyn DbmsConnector,
    gt: &GroundTruthEvaluator<'_>,
) -> SelectStmt {
    let mut still_fails = |candidate: &SelectStmt, conn: &mut dyn DbmsConnector| -> bool {
        let truth = match gt.evaluate(candidate) {
            Ok(t) => t,
            Err(_) => return false,
        };
        match conn.execute_with_hints(candidate, hints) {
            Ok(out) => !truth.matches(&out.result),
            Err(_) => false,
        }
    };
    minimize_by(stmt, conn, &mut still_fails)
}

/// Oracle-driven minimizer: shrink `stmt` while `oracle` keeps returning a
/// bug verdict for the candidate on `conn`. Works with *any*
/// [`Oracle`] implementation — ground truth, cross-engine differential,
/// or a baseline — instead of being hardwired to one verdict procedure.
pub fn minimize_with_oracle(
    stmt: &SelectStmt,
    oracle: &mut dyn Oracle,
    conn: &mut dyn DbmsConnector,
) -> SelectStmt {
    let mut still_fails = |candidate: &SelectStmt, conn: &mut dyn DbmsConnector| -> bool {
        matches!(oracle.check(candidate, conn), OracleVerdict::Bugs(_))
    };
    minimize_by(stmt, conn, &mut still_fails)
}

/// The shared reduction loop behind both minimizers.
fn minimize_by(
    stmt: &SelectStmt,
    conn: &mut dyn DbmsConnector,
    still_fails: &mut dyn FnMut(&SelectStmt, &mut dyn DbmsConnector) -> bool,
) -> SelectStmt {
    let mut current = stmt.clone();
    if !still_fails(&current, conn) {
        return current;
    }
    let mut progress = true;
    while progress {
        progress = false;
        // 1. try dropping the last join
        if !current.from.joins.is_empty() {
            let mut candidate = current.clone();
            let removed = candidate.from.joins.pop().unwrap();
            let removed_binding = removed.table.binding().to_string();
            strip_binding_references(&mut candidate, &removed_binding);
            if !candidate.items.is_empty() && still_fails(&candidate, conn) {
                current = candidate;
                progress = true;
                continue;
            }
        }
        // 2. try dropping the WHERE clause
        if current.where_clause.is_some() {
            let mut candidate = current.clone();
            candidate.where_clause = None;
            if still_fails(&candidate, conn) {
                current = candidate;
                progress = true;
                continue;
            }
        }
        // 3. try dropping GROUP BY / aggregation
        if !current.group_by.is_empty() {
            let mut candidate = current.clone();
            candidate.group_by.clear();
            candidate.items.retain(|i| !i.is_aggregate());
            if !candidate.items.is_empty() && still_fails(&candidate, conn) {
                current = candidate;
                progress = true;
                continue;
            }
        }
        // 4. try shrinking the projection to one column
        if current.items.len() > 1 {
            let mut candidate = current.clone();
            candidate.items.truncate(1);
            if still_fails(&candidate, conn) {
                current = candidate;
                progress = true;
            }
        }
    }
    current
}

fn strip_binding_references(stmt: &mut SelectStmt, binding: &str) {
    let refers = |e: &Expr| {
        e.column_refs().iter().any(|c| {
            c.table
                .as_ref()
                .map(|t| t.eq_ignore_ascii_case(binding))
                .unwrap_or(false)
        })
    };
    stmt.items.retain(|i| match i {
        SelectItem::Expr { expr, .. } => !refers(expr),
        SelectItem::Aggregate {
            arg: Some(expr), ..
        } => !refers(expr),
        _ => true,
    });
    if let Some(w) = &stmt.where_clause {
        if refers(w) {
            stmt.where_clause = None;
        }
    }
    stmt.group_by.retain(|g| !refers(g));
}

/// Build a bug report from a mismatch.
#[allow(clippy::too_many_arguments)]
pub fn make_report(
    dbms: &str,
    oracle: OracleKind,
    stmt: &SelectStmt,
    hints: &HintSet,
    expected: &ResultSet,
    observed: &ResultSet,
    fired: Vec<FaultKind>,
    minimized: Option<&SelectStmt>,
) -> BugReport {
    let mut transformed = stmt.clone();
    transformed.hints.extend(hints.hints.iter().cloned());
    BugReport {
        dbms: dbms.to_string(),
        oracle,
        sql: render_stmt(stmt),
        transformed_sql: format!(
            "{}{}",
            hints
                .switches
                .iter()
                .map(|s| format!("{s}\n"))
                .collect::<String>(),
            render_stmt(&transformed)
        ),
        hint_label: hints.label.clone(),
        expected_rows: expected.row_count(),
        observed_rows: observed.row_count(),
        fired,
        minimized_sql: minimized.map(render_stmt),
        fingerprint: None,
        keys: KeyCache::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_sql::parser::parse_stmt;
    use tqs_storage::ResultSet;

    fn report(fired: Vec<FaultKind>, hint: &str) -> BugReport {
        let stmt = parse_stmt("SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a").unwrap();
        make_report(
            "MySQL-like",
            OracleKind::GroundTruth,
            &stmt,
            &HintSet::new(hint),
            &ResultSet::new(vec!["a".into()]),
            &ResultSet::new(vec!["a".into()]),
            fired,
            None,
        )
    }

    #[test]
    fn bug_log_deduplicates_by_signature() {
        let mut log = BugLog::new();
        assert!(log.push(report(
            vec![FaultKind::HashJoinNullMatchesEmpty],
            "hash-join"
        )));
        assert!(!log.push(report(
            vec![FaultKind::HashJoinNullMatchesEmpty],
            "hash-join"
        )));
        assert!(log.push(report(
            vec![FaultKind::HashJoinNullMatchesEmpty],
            "merge-join"
        )));
        assert!(log.push(report(vec![FaultKind::MergeJoinDropsLastRun], "merge-join")));
        assert_eq!(log.bug_count(), 3);
        // two distinct root causes → two bug types
        assert_eq!(log.bug_type_count(), 2);
        assert_eq!(log.implicated_faults().len(), 2);
    }

    #[test]
    fn plan_fingerprint_refines_and_collapses_classes() {
        let mut log = BugLog::new();
        // Same fault through two hint sets on isomorphic plans: one class.
        assert!(log.push(
            report(vec![FaultKind::MergeJoinDropsLastRun], "merge-join").with_fingerprint(0xA1)
        ));
        assert!(!log.push(
            report(vec![FaultKind::MergeJoinDropsLastRun], "stream-agg").with_fingerprint(0xA1)
        ));
        // Same fault and hint on a structurally different plan: a new class.
        assert!(log.push(
            report(vec![FaultKind::MergeJoinDropsLastRun], "merge-join").with_fingerprint(0xB2)
        ));
        assert_eq!(log.bug_count(), 2);
        // Without a fingerprint the old signature keeps deduplicating.
        let coarse = report(vec![FaultKind::MergeJoinDropsLastRun], "merge-join");
        assert_eq!(coarse.class_key(), coarse.signature());
        assert!(log.push(coarse));
    }

    #[test]
    fn class_key_embeds_the_fingerprint() {
        let r = report(vec![FaultKind::HashJoinNullMatchesEmpty], "hash-join")
            .with_fingerprint(0xDEAD_BEEF);
        assert!(r.class_key().ends_with("|plan:00000000deadbeef"));
        assert!(r.class_key().contains("HashJoinNullMatchesEmpty"));
        assert!(!r.class_key().contains("hash-join"), "hint label dropped");
    }

    #[test]
    fn bug_type_falls_back_to_oracle_without_provenance() {
        let r = report(vec![], "default");
        assert_eq!(r.bug_type(), "GroundTruth");
        assert!(r.transformed_sql.contains("SELECT"));
    }

    #[test]
    fn report_rendering_contains_hints_and_switches() {
        let stmt = parse_stmt("SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a").unwrap();
        let hints = HintSet::new("merge")
            .with_hint(tqs_sql::hints::Hint::MergeJoin(vec![
                "t1".into(),
                "t2".into(),
            ]))
            .with_switch(tqs_sql::hints::SessionSwitch::off(
                tqs_sql::hints::SwitchName::Materialization,
            ));
        let r = make_report(
            "TiDB-like",
            OracleKind::Differential,
            &stmt,
            &hints,
            &ResultSet::new(vec![]),
            &ResultSet::new(vec![]),
            vec![],
            None,
        );
        assert!(r.transformed_sql.contains("MERGE_JOIN(t1, t2)"));
        assert!(r.transformed_sql.contains("materialization=off"));
        assert_eq!(r.hint_label, "merge");
    }
}
