//! Baseline testing approaches (§5.2): PQS, TLP and NoRec, adapted to
//! multi-table queries the way the paper adapts SQLancer — queries and data
//! are random, no ground truth, no knowledge-guided exploration.
//!
//! The checking logic itself lives in [`crate::oracle`] ([`PqsOracle`],
//! [`TlpOracle`], [`NorecOracle`]); this module is the *runner*: it supplies
//! each baseline's query distribution (PQS restricts itself to pivot-style
//! point queries) and drives the oracle through the shared metric loop. All
//! three baselines talk to the DBMS exclusively through [`DbmsConnector`],
//! so they run unchanged against any backend.

use crate::backend::{DbmsConnector, EngineConnector};
use crate::bugs::BugLog;
use crate::dsg::{DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer};
use crate::oracle::{NorecOracle, Oracle, OracleVerdict, PqsOracle, TlpOracle};
use crate::tqs::{RunStats, TimelinePoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tqs_engine::ProfileId;
use tqs_graph::plangraph::query_graph_with_subqueries;
use tqs_graph::{embed_graph, GraphIndex};
use tqs_sql::ast::{Expr, SelectItem, SelectStmt};

/// Which baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    Pqs,
    Tlp,
    NoRec,
}

impl Baseline {
    pub fn name(self) -> &'static str {
        match self {
            Baseline::Pqs => "PQS",
            Baseline::Tlp => "TLP",
            Baseline::NoRec => "NoRec",
        }
    }

    /// The [`Oracle`] implementing this baseline's check.
    pub fn oracle(self, dsg: &DsgDatabase) -> Box<dyn Oracle> {
        match self {
            Baseline::Pqs => Box::new(PqsOracle::new(dsg)),
            Baseline::Tlp => Box::new(TlpOracle),
            Baseline::NoRec => Box::new(NorecOracle),
        }
    }
}

/// Configuration shared by the baseline runners.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    pub iterations: usize,
    pub queries_per_hour: usize,
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            iterations: 300,
            queries_per_hour: 25,
            seed: 31,
        }
    }
}

/// Run a baseline against the faulty engine build of `profile` and collect
/// the same metrics as the TQS session (diversity = distinct isomorphic sets
/// of the generated query graphs; bugs = oracle violations, de-duplicated).
pub fn run_baseline(
    baseline: Baseline,
    profile: ProfileId,
    dsg: &DsgDatabase,
    cfg: &BaselineConfig,
) -> RunStats {
    let mut conn = EngineConnector::connect(profile, dsg);
    run_baseline_on(baseline, &mut conn, dsg, cfg)
}

/// Same as [`run_baseline`] but against an explicit connector (lets tests use
/// pristine builds, recording proxies, or entirely different backends). The
/// connector must already have the DSG catalog loaded — see
/// [`EngineConnector::connect`] / [`DbmsConnector::load_catalog`].
pub fn run_baseline_on(
    baseline: Baseline,
    conn: &mut dyn DbmsConnector,
    dsg: &DsgDatabase,
    cfg: &BaselineConfig,
) -> RunStats {
    let mut oracle = baseline.oracle(dsg);
    run_oracle_on(oracle.as_mut(), Some(baseline), conn, dsg, cfg)
}

/// Drive *any* oracle through the baseline metric loop: generate queries,
/// track structural diversity, count de-duplicated bugs. `baseline` only
/// selects the query distribution (PQS uses pivot queries); pass `None` for
/// the generic random-walk distribution — this is how a custom oracle (e.g.
/// a cross-engine [`crate::oracle::DifferentialOracle`]) is benchmarked on
/// the same footing as the shipped ones.
pub fn run_oracle_on(
    oracle: &mut dyn Oracle,
    baseline: Option<Baseline>,
    conn: &mut dyn DbmsConnector,
    dsg: &DsgDatabase,
    cfg: &BaselineConfig,
) -> RunStats {
    let dbms_name = conn.info().name;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut generator = QueryGenerator::new(QueryGenConfig {
        seed: cfg.seed,
        // baselines do not bias towards joins as aggressively
        subquery_probability: 0.15,
        ..Default::default()
    });
    let mut index = GraphIndex::new();
    let mut bugs = BugLog::new();
    let mut stats = RunStats {
        dbms: dbms_name.clone(),
        tool: oracle.name().to_string(),
        queries_generated: 0,
        queries_executed: 0,
        queries_skipped: 0,
        diversity: 0,
        bug_count: 0,
        bug_type_count: 0,
        diversity_timeline: Vec::new(),
        bug_timeline: Vec::new(),
        bug_type_timeline: Vec::new(),
    };
    for i in 0..cfg.iterations {
        // Baselines draw from the same query space but without KQE guidance;
        // PQS additionally restricts itself to pivot-style point queries,
        // which is why its structural diversity stays low.
        let stmt = match baseline {
            Some(Baseline::Pqs) => pivot_query(dsg, &mut rng),
            _ => generator.generate(dsg, None, &UniformScorer),
        };
        stats.queries_generated += 1;
        let qg = query_graph_with_subqueries(&stmt, &dsg.schema_desc);
        index.insert(&qg, embed_graph(&qg, 2));
        match oracle.check(&stmt, conn) {
            OracleVerdict::Skip => stats.queries_skipped += 1,
            OracleVerdict::Pass => stats.queries_executed += 1,
            OracleVerdict::Bugs(reports) => {
                stats.queries_executed += 1;
                for r in reports {
                    bugs.push(r);
                }
            }
        }
        if (i + 1) % cfg.queries_per_hour == 0 || i + 1 == cfg.iterations {
            let hour = (i + 1).div_ceil(cfg.queries_per_hour);
            stats.diversity_timeline.push(TimelinePoint {
                hour,
                value: index.isomorphic_set_count(),
            });
            stats.bug_timeline.push(TimelinePoint {
                hour,
                value: bugs.bug_count(),
            });
            stats.bug_type_timeline.push(TimelinePoint {
                hour,
                value: bugs.bug_type_count(),
            });
        }
    }
    stats.diversity = index.isomorphic_set_count();
    stats.bug_count = bugs.bug_count();
    stats.bug_type_count = bugs.bug_type_count();
    stats
}

/// PQS pivot query: select a pivot row from the base table and build a query
/// that must return it.
fn pivot_query(dsg: &DsgDatabase, rng: &mut StdRng) -> SelectStmt {
    let base = dsg
        .db
        .metas
        .iter()
        .find(|m| m.is_base)
        .map(|m| m.name.clone())
        .unwrap_or_else(|| dsg.db.metas[0].name.clone());
    let table = dsg.db.catalog.table(&base).expect("base table");
    let row = rng.gen_range(0..table.row_count().max(1));
    let meta = dsg.db.meta(&base).unwrap();
    let mut stmt = SelectStmt::new(tqs_sql::ast::FromClause::single(base.clone()));
    stmt.items = meta
        .columns
        .iter()
        .take(2)
        .map(|c| SelectItem::column(&base, c))
        .collect();
    // pivot predicate: equality on every non-null key column of the pivot row
    let mut preds = Vec::new();
    for c in &meta.implicit_pk {
        if let Some(v) = table.cell(row, c) {
            if !v.is_null() {
                preds.push(Expr::eq(Expr::col(&base, c), Expr::lit(v.clone())));
            }
        }
    }
    stmt.where_clause = Expr::conjunction(preds);
    stmt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RecordingConnector;
    use crate::dsg::{DsgConfig, WideSource};
    use tqs_schema::NoiseConfig;
    use tqs_storage::widegen::ShoppingConfig;

    fn dsg() -> DsgDatabase {
        DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 100,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.03,
                seed: 4,
                max_injections: 10,
            }),
        })
    }

    fn cfg() -> BaselineConfig {
        BaselineConfig {
            iterations: 30,
            queries_per_hour: 10,
            seed: 7,
        }
    }

    #[test]
    fn baselines_produce_no_false_positives_on_pristine_engines() {
        let d = dsg();
        for b in [Baseline::Pqs, Baseline::Tlp, Baseline::NoRec] {
            let mut conn = EngineConnector::connect_pristine(ProfileId::MysqlLike, &d);
            let stats = run_baseline_on(b, &mut conn, &d, &cfg());
            assert_eq!(stats.bug_count, 0, "{b:?} reported false positives");
            assert_eq!(stats.queries_generated, 30);
            assert!(!stats.diversity_timeline.is_empty());
        }
    }

    #[test]
    fn norec_catches_plan_dependent_faults() {
        let d = dsg();
        let stats = run_baseline(
            Baseline::NoRec,
            ProfileId::XdbLike,
            &d,
            &BaselineConfig {
                iterations: 120,
                ..cfg()
            },
        );
        // NoRec compares an optimized vs de-optimized execution, so it can
        // catch some plan-dependent faults, but it has no ground truth.
        assert!(stats.bug_count <= 120);
    }

    #[test]
    fn pqs_diversity_is_low() {
        let d = dsg();
        let pqs = run_baseline(Baseline::Pqs, ProfileId::MysqlLike, &d, &cfg());
        // pivot queries all share one single-table structure
        assert!(pqs.diversity <= 3, "got {}", pqs.diversity);
        assert_eq!(pqs.tool, "PQS");
    }

    #[test]
    fn baselines_run_through_a_recording_proxy() {
        let d = dsg();
        let mut conn = RecordingConnector::new(EngineConnector::pristine(ProfileId::TidbLike));
        conn.load_catalog(&d.db.catalog).unwrap();
        let stats = run_baseline_on(Baseline::NoRec, &mut conn, &d, &cfg());
        assert_eq!(stats.dbms, "TiDB-like");
        // one load + at least two statements per executed query
        assert!(
            conn.trace().len() > stats.queries_executed,
            "{}",
            conn.trace().len()
        );
    }

    #[test]
    fn baseline_names() {
        assert_eq!(Baseline::Pqs.name(), "PQS");
        assert_eq!(Baseline::Tlp.name(), "TLP");
        assert_eq!(Baseline::NoRec.name(), "NoRec");
        let d = dsg();
        for b in [Baseline::Pqs, Baseline::Tlp, Baseline::NoRec] {
            assert_eq!(b.oracle(&d).name(), b.name());
        }
    }

    #[test]
    fn any_oracle_runs_through_the_metric_loop() {
        // The runner is oracle-agnostic: the full TQS oracle benchmarks on
        // the same footing as the baselines.
        let d = dsg();
        let mut oracle = crate::oracle::TqsOracle::new(&d);
        let mut conn = EngineConnector::connect(ProfileId::MysqlLike, &d);
        let stats = run_oracle_on(
            &mut oracle,
            None,
            &mut conn,
            &d,
            &BaselineConfig {
                iterations: 60,
                ..cfg()
            },
        );
        assert_eq!(stats.tool, "TQS");
        assert!(stats.bug_count > 0, "TQS through the runner found nothing");
    }
}
