//! Baseline testing approaches (§5.2): PQS, TLP and NoRec, adapted to
//! multi-table queries the way the paper adapts SQLancer — queries and data
//! are random, no ground truth, no knowledge-guided exploration.
//!
//! All three baselines drive the DBMS exclusively through
//! [`DbmsConnector`], so they run unchanged against any backend.

use crate::backend::{DbmsConnector, EngineConnector};
use crate::bugs::{make_report, BugLog, Oracle};
use crate::dsg::{DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer};
use crate::tqs::{RunStats, TimelinePoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tqs_engine::ProfileId;
use tqs_graph::plangraph::query_graph_with_subqueries;
use tqs_graph::{embed_graph, GraphIndex};
use tqs_sql::ast::{BinOp, Expr, SelectItem, SelectStmt};
use tqs_sql::hints::{Hint, HintSet};
use tqs_sql::value::Value;
use tqs_storage::{ResultSet, Row};

/// Which baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    Pqs,
    Tlp,
    NoRec,
}

impl Baseline {
    pub fn name(self) -> &'static str {
        match self {
            Baseline::Pqs => "PQS",
            Baseline::Tlp => "TLP",
            Baseline::NoRec => "NoRec",
        }
    }
}

/// Configuration shared by the baseline runners.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    pub iterations: usize,
    pub queries_per_hour: usize,
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            iterations: 300,
            queries_per_hour: 25,
            seed: 31,
        }
    }
}

/// Run a baseline against the faulty engine build of `profile` and collect
/// the same metrics as the TQS session (diversity = distinct isomorphic sets
/// of the generated query graphs; bugs = oracle violations, de-duplicated).
pub fn run_baseline(
    baseline: Baseline,
    profile: ProfileId,
    dsg: &DsgDatabase,
    cfg: &BaselineConfig,
) -> RunStats {
    let mut conn = EngineConnector::connect(profile, dsg);
    run_baseline_on(baseline, &mut conn, dsg, cfg)
}

/// Same as [`run_baseline`] but against an explicit connector (lets tests use
/// pristine builds, recording proxies, or entirely different backends). The
/// connector must already have the DSG catalog loaded — see
/// [`EngineConnector::connect`] / [`DbmsConnector::load_catalog`].
pub fn run_baseline_on(
    baseline: Baseline,
    conn: &mut dyn DbmsConnector,
    dsg: &DsgDatabase,
    cfg: &BaselineConfig,
) -> RunStats {
    let dbms_name = conn.info().name;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut generator = QueryGenerator::new(QueryGenConfig {
        seed: cfg.seed,
        // baselines do not bias towards joins as aggressively
        subquery_probability: 0.15,
        ..Default::default()
    });
    let mut index = GraphIndex::new();
    let mut bugs = BugLog::new();
    let mut stats = RunStats {
        dbms: dbms_name.clone(),
        tool: baseline.name().to_string(),
        queries_generated: 0,
        queries_executed: 0,
        queries_skipped: 0,
        diversity: 0,
        bug_count: 0,
        bug_type_count: 0,
        diversity_timeline: Vec::new(),
        bug_timeline: Vec::new(),
        bug_type_timeline: Vec::new(),
    };
    for i in 0..cfg.iterations {
        // Baselines draw from the same query space but without KQE guidance;
        // PQS additionally restricts itself to pivot-style point queries,
        // which is why its structural diversity stays low.
        let stmt = match baseline {
            Baseline::Pqs => pivot_query(dsg, &mut rng),
            _ => generator.generate(dsg, None, &UniformScorer),
        };
        stats.queries_generated += 1;
        let qg = query_graph_with_subqueries(&stmt, &dsg.schema_desc);
        index.insert(&qg, embed_graph(&qg, 2));
        let found = match baseline {
            Baseline::Pqs => check_pqs(&stmt, dsg, conn, &dbms_name, &mut bugs),
            Baseline::Tlp => check_tlp(&stmt, conn, &dbms_name, &mut bugs),
            Baseline::NoRec => check_norec(&stmt, conn, &dbms_name, &mut bugs),
        };
        if found.is_some() {
            stats.queries_executed += 1;
        } else {
            stats.queries_skipped += 1;
        }
        if (i + 1) % cfg.queries_per_hour == 0 || i + 1 == cfg.iterations {
            let hour = (i + 1).div_ceil(cfg.queries_per_hour);
            stats.diversity_timeline.push(TimelinePoint {
                hour,
                value: index.isomorphic_set_count(),
            });
            stats.bug_timeline.push(TimelinePoint {
                hour,
                value: bugs.bug_count(),
            });
            stats.bug_type_timeline.push(TimelinePoint {
                hour,
                value: bugs.bug_type_count(),
            });
        }
    }
    stats.diversity = index.isomorphic_set_count();
    stats.bug_count = bugs.bug_count();
    stats.bug_type_count = bugs.bug_type_count();
    stats
}

/// PQS pivot query: select a pivot row from the base table and build a query
/// that must return it.
fn pivot_query(dsg: &DsgDatabase, rng: &mut StdRng) -> SelectStmt {
    let base = dsg
        .db
        .metas
        .iter()
        .find(|m| m.is_base)
        .map(|m| m.name.clone())
        .unwrap_or_else(|| dsg.db.metas[0].name.clone());
    let table = dsg.db.catalog.table(&base).expect("base table");
    let row = rng.gen_range(0..table.row_count().max(1));
    let meta = dsg.db.meta(&base).unwrap();
    let mut stmt = SelectStmt::new(tqs_sql::ast::FromClause::single(base.clone()));
    stmt.items = meta
        .columns
        .iter()
        .take(2)
        .map(|c| SelectItem::column(&base, c))
        .collect();
    // pivot predicate: equality on every non-null key column of the pivot row
    let mut preds = Vec::new();
    for c in &meta.implicit_pk {
        if let Some(v) = table.cell(row, c) {
            if !v.is_null() {
                preds.push(Expr::eq(Expr::col(&base, c), Expr::lit(v.clone())));
            }
        }
    }
    stmt.where_clause = Expr::conjunction(preds);
    stmt
}

/// PQS oracle: the pivot row's projected values must appear in the result.
fn check_pqs(
    stmt: &SelectStmt,
    dsg: &DsgDatabase,
    conn: &mut dyn DbmsConnector,
    dbms_name: &str,
    bugs: &mut BugLog,
) -> Option<()> {
    let out = conn.execute(stmt).ok()?;
    // Recompute the expected pivot values straight from the stored table.
    let base = &stmt.from.base.table;
    let table = dsg.db.catalog.table(base)?;
    let expected_rows: Vec<Row> = table
        .rows
        .iter()
        .filter(|r| {
            // check the pivot predicate directly against the row
            match &stmt.where_clause {
                Some(w) => {
                    let scope: Vec<(String, String, Value)> = table
                        .columns
                        .iter()
                        .zip(&r.values)
                        .map(|(c, v)| (base.clone(), c.name.clone(), v.clone()))
                        .collect();
                    let resolver = tqs_sql::eval::ScopedRow::new(&scope);
                    tqs_sql::eval::eval_predicate(w, &resolver, &tqs_sql::eval::NoSubqueries)
                        .ok()
                        .flatten()
                        == Some(true)
                }
                None => true,
            }
        })
        .map(|r| {
            Row::new(
                stmt.items
                    .iter()
                    .filter_map(|i| match i {
                        SelectItem::Expr {
                            expr: Expr::Column(c),
                            ..
                        } => table.column_index(&c.column).map(|idx| r.get(idx).clone()),
                        _ => None,
                    })
                    .collect(),
            )
        })
        .collect();
    let expected = ResultSet {
        columns: vec![],
        rows: expected_rows,
    };
    if !expected.subset_of(&out.result) {
        bugs.push(make_report(
            dbms_name,
            Oracle::PivotMissing,
            stmt,
            &HintSet::new("default"),
            &expected,
            &out.result,
            out.fired.clone(),
            None,
        ));
    }
    Some(())
}

/// TLP oracle: |Q ∧ p| + |Q ∧ ¬p| + |Q ∧ p IS NULL| must equal |Q|.
fn check_tlp(
    stmt: &SelectStmt,
    conn: &mut dyn DbmsConnector,
    dbms_name: &str,
    bugs: &mut BugLog,
) -> Option<()> {
    let base = conn.execute(stmt).ok()?;
    // partitioning predicate over a projected column
    let col = stmt.items.iter().find_map(|i| match i {
        SelectItem::Expr {
            expr: Expr::Column(c),
            ..
        } => Some(c.clone()),
        _ => None,
    })?;
    let p = Expr::binary(
        BinOp::Ge,
        Expr::Column(col.clone()),
        Expr::lit(Value::Int(0)),
    );
    let mut total = 0usize;
    for variant in [p.clone(), Expr::not(p.clone()), Expr::is_null(p.clone())] {
        let mut q = stmt.clone();
        q.where_clause = Some(match &q.where_clause {
            Some(w) => Expr::and(w.clone(), variant),
            None => variant,
        });
        let out = conn.execute(&q).ok()?;
        total += out.result.row_count();
    }
    if total != base.result.row_count() {
        bugs.push(make_report(
            dbms_name,
            Oracle::Partitioning,
            stmt,
            &HintSet::new("tlp-partitions"),
            &base.result,
            &base.result,
            base.fired.clone(),
            None,
        ));
    }
    Some(())
}

/// NoRec oracle: the optimized query and a de-optimized execution (nested
/// loops, no semi-join transformation, no materialization) must agree.
fn check_norec(
    stmt: &SelectStmt,
    conn: &mut dyn DbmsConnector,
    dbms_name: &str,
    bugs: &mut BugLog,
) -> Option<()> {
    let optimized = conn.execute(stmt).ok()?;
    let tables: Vec<String> = stmt
        .from
        .tables()
        .iter()
        .map(|t| t.binding().to_string())
        .collect();
    let deopt = HintSet::new("norec-deopt")
        .with_hint(Hint::NlJoin(tables))
        .with_hint(Hint::NoSemiJoin)
        .with_hint(Hint::Materialization(false));
    let reference = conn.execute_with_hints(stmt, &deopt).ok()?;
    if !optimized.result.same_bag(&reference.result) {
        let mut fired = optimized.fired.clone();
        fired.extend(reference.fired.clone());
        bugs.push(make_report(
            dbms_name,
            Oracle::NonOptimizingRewrite,
            stmt,
            &deopt,
            &reference.result,
            &optimized.result,
            fired,
            None,
        ));
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RecordingConnector;
    use crate::dsg::{DsgConfig, WideSource};
    use tqs_schema::NoiseConfig;
    use tqs_storage::widegen::ShoppingConfig;

    fn dsg() -> DsgDatabase {
        DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 100,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.03,
                seed: 4,
                max_injections: 10,
            }),
        })
    }

    fn cfg() -> BaselineConfig {
        BaselineConfig {
            iterations: 30,
            queries_per_hour: 10,
            seed: 7,
        }
    }

    #[test]
    fn baselines_produce_no_false_positives_on_pristine_engines() {
        let d = dsg();
        for b in [Baseline::Pqs, Baseline::Tlp, Baseline::NoRec] {
            let mut conn = EngineConnector::connect_pristine(ProfileId::MysqlLike, &d);
            let stats = run_baseline_on(b, &mut conn, &d, &cfg());
            assert_eq!(stats.bug_count, 0, "{b:?} reported false positives");
            assert_eq!(stats.queries_generated, 30);
            assert!(!stats.diversity_timeline.is_empty());
        }
    }

    #[test]
    fn norec_catches_plan_dependent_faults() {
        let d = dsg();
        let stats = run_baseline(
            Baseline::NoRec,
            ProfileId::XdbLike,
            &d,
            &BaselineConfig {
                iterations: 120,
                ..cfg()
            },
        );
        // NoRec compares an optimized vs de-optimized execution, so it can
        // catch some plan-dependent faults, but it has no ground truth.
        assert!(stats.bug_count <= 120);
    }

    #[test]
    fn pqs_diversity_is_low() {
        let d = dsg();
        let pqs = run_baseline(Baseline::Pqs, ProfileId::MysqlLike, &d, &cfg());
        // pivot queries all share one single-table structure
        assert!(pqs.diversity <= 3, "got {}", pqs.diversity);
        assert_eq!(pqs.tool, "PQS");
    }

    #[test]
    fn baselines_run_through_a_recording_proxy() {
        let d = dsg();
        let mut conn = RecordingConnector::new(EngineConnector::pristine(ProfileId::TidbLike));
        conn.load_catalog(&d.db.catalog).unwrap();
        let stats = run_baseline_on(Baseline::NoRec, &mut conn, &d, &cfg());
        assert_eq!(stats.dbms, "TiDB-like");
        // one load + at least two statements per executed query
        assert!(
            conn.trace().len() > stats.queries_executed,
            "{}",
            conn.trace().len()
        );
    }

    #[test]
    fn baseline_names() {
        assert_eq!(Baseline::Pqs.name(), "PQS");
        assert_eq!(Baseline::Tlp.name(), "TLP");
        assert_eq!(Baseline::NoRec.name(), "NoRec");
    }
}
