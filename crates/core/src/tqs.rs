//! The TQS orchestrator (Algorithm 1).
//!
//! Ties everything together: DSG builds the database and generates queries by
//! (adaptive) random walk, KQE scores and records query graphs, HintGen
//! produces transformed queries, the backend behind a
//! [`DbmsConnector`](crate::backend::DbmsConnector) executes them, and each
//! result set is verified against the wide-table ground truth (or, in the
//! `!GT` ablation, against the other plans' results).

use crate::backend::{ConnectorError, DbmsConnector, EngineConnector};
use crate::bugs::{make_report, minimize_query, BugLog, Oracle};
use crate::dsg::{DsgConfig, DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer};
use crate::hintgen::hint_sets_for;
use crate::kqe::{Kqe, KqeConfig, KqeScorer};
use serde::Serialize;
use tqs_engine::ProfileId;
use tqs_graph::plangraph::query_graph_with_subqueries;
use tqs_schema::GroundTruthEvaluator;
use tqs_sql::ast::SelectStmt;

/// Orchestrator configuration, including the ablation switches of Table 5.
#[derive(Debug, Clone)]
pub struct TqsConfig {
    pub iterations: usize,
    /// Knowledge-guided exploration (off = `TQS!KQE`).
    pub use_kqe: bool,
    /// Ground-truth verification (off = `TQS!GT`, i.e. differential testing).
    pub use_ground_truth: bool,
    /// Run the reducer on each new bug before logging it.
    pub minimize: bool,
    pub query_gen: QueryGenConfig,
    pub kqe: KqeConfig,
    /// How many generated queries correspond to one "hour" when reporting
    /// timelines (the paper's x-axis is wall-clock hours; ours is a query
    /// budget).
    pub queries_per_hour: usize,
}

impl Default for TqsConfig {
    fn default() -> Self {
        TqsConfig {
            iterations: 300,
            use_kqe: true,
            use_ground_truth: true,
            minimize: false,
            query_gen: QueryGenConfig::default(),
            kqe: KqeConfig::default(),
            queries_per_hour: 25,
        }
    }
}

/// A point on a per-"hour" timeline.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TimelinePoint {
    pub hour: usize,
    pub value: usize,
}

/// Statistics of one run.
#[derive(Debug, Clone, Serialize)]
pub struct RunStats {
    pub dbms: String,
    pub tool: String,
    pub queries_generated: usize,
    pub queries_executed: usize,
    pub queries_skipped: usize,
    pub diversity: usize,
    pub bug_count: usize,
    pub bug_type_count: usize,
    pub diversity_timeline: Vec<TimelinePoint>,
    pub bug_timeline: Vec<TimelinePoint>,
    pub bug_type_timeline: Vec<TimelinePoint>,
}

/// One TQS testing session against one DBMS backend.
///
/// Built with [`TqsSession::builder`]; the backend is anything implementing
/// [`DbmsConnector`] — the in-process simulated engine by default.
pub struct TqsSession {
    pub dsg: DsgDatabase,
    pub connector: Box<dyn DbmsConnector>,
    pub kqe: Kqe,
    pub generator: QueryGenerator,
    pub cfg: TqsConfig,
    pub bugs: BugLog,
    dbms_name: String,
    dialect: ProfileId,
}

/// Builder for [`TqsSession`].
///
/// ```
/// use tqs_core::backend::EngineConnector;
/// use tqs_core::dsg::{DsgConfig, WideSource};
/// use tqs_core::tqs::{TqsConfig, TqsSession};
/// use tqs_engine::ProfileId;
/// use tqs_storage::widegen::ShoppingConfig;
///
/// let dsg_cfg = DsgConfig {
///     source: WideSource::Shopping(ShoppingConfig { n_rows: 100, ..Default::default() }),
///     ..Default::default()
/// };
/// let mut session = TqsSession::builder()
///     .connector(EngineConnector::faulty(ProfileId::MysqlLike))
///     .dsg_config(&dsg_cfg)
///     .config(TqsConfig { iterations: 25, ..Default::default() })
///     .build()
///     .unwrap();
/// let stats = session.run();
/// assert!(stats.queries_generated >= 25);
/// ```
#[derive(Default)]
pub struct TqsSessionBuilder {
    profile: Option<ProfileId>,
    connector: Option<Box<dyn DbmsConnector>>,
    dsg: Option<DsgDatabase>,
    dsg_cfg: Option<DsgConfig>,
    cfg: TqsConfig,
}

impl TqsSessionBuilder {
    /// Target the faulty engine build of `profile` (ignored when an explicit
    /// [`connector`](Self::connector) is supplied).
    pub fn profile(mut self, profile: ProfileId) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Drive this backend instead of the default engine connector.
    pub fn connector(mut self, connector: impl DbmsConnector + 'static) -> Self {
        self.connector = Some(Box::new(connector));
        self
    }

    /// Drive an already-boxed backend (for callers assembling connectors
    /// dynamically).
    pub fn boxed_connector(mut self, connector: Box<dyn DbmsConnector>) -> Self {
        self.connector = Some(connector);
        self
    }

    /// Use an already-built DSG database (shared across sessions).
    pub fn dsg(mut self, dsg: DsgDatabase) -> Self {
        self.dsg = Some(dsg);
        self
    }

    /// Build the DSG database from this configuration at
    /// [`build`](Self::build) time.
    pub fn dsg_config(mut self, cfg: &DsgConfig) -> Self {
        self.dsg_cfg = Some(cfg.clone());
        self
    }

    pub fn config(mut self, cfg: TqsConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Assemble the session: build (or take) the DSG database, construct the
    /// connector if none was given, and load the catalog into it.
    pub fn build(self) -> Result<TqsSession, ConnectorError> {
        let dsg = match self.dsg {
            Some(d) => d,
            None => DsgDatabase::build(&self.dsg_cfg.unwrap_or_default()),
        };
        let mut connector = match self.connector {
            Some(c) => c,
            None => Box::new(EngineConnector::faulty(
                self.profile.unwrap_or(ProfileId::MysqlLike),
            )),
        };
        connector.load_catalog(&dsg.db.catalog)?;
        let info = connector.info();
        let kqe = Kqe::new(dsg.schema_desc.clone(), self.cfg.kqe.clone());
        let generator = QueryGenerator::new(self.cfg.query_gen.clone());
        Ok(TqsSession {
            dsg,
            connector,
            kqe,
            generator,
            cfg: self.cfg,
            bugs: BugLog::new(),
            dbms_name: info.name,
            dialect: info.dialect,
        })
    }
}

impl TqsSession {
    pub fn builder() -> TqsSessionBuilder {
        TqsSessionBuilder::default()
    }

    /// Name of the backend build under test.
    pub fn dbms_name(&self) -> &str {
        &self.dbms_name
    }

    /// Hint dialect of the backend build under test (cached at build time).
    pub fn dialect(&self) -> ProfileId {
        self.dialect
    }

    /// Run Algorithm 1 for the configured number of iterations.
    pub fn run(&mut self) -> RunStats {
        let mut stats = RunStats {
            dbms: self.dbms_name.clone(),
            tool: if self.cfg.use_ground_truth {
                "TQS"
            } else {
                "TQS!GT"
            }
            .to_string(),
            queries_generated: 0,
            queries_executed: 0,
            queries_skipped: 0,
            diversity: 0,
            bug_count: 0,
            bug_type_count: 0,
            diversity_timeline: Vec::new(),
            bug_timeline: Vec::new(),
            bug_type_timeline: Vec::new(),
        };
        for i in 0..self.cfg.iterations {
            let stmt = self.generate_query();
            stats.queries_generated += 1;
            // record in GI (the diversity metric is tracked for all variants)
            let qg = query_graph_with_subqueries(&stmt, &self.dsg.schema_desc);
            self.kqe.record(&qg);
            if self.test_one(&stmt) {
                stats.queries_executed += 1;
            } else {
                stats.queries_skipped += 1;
            }
            if (i + 1) % self.cfg.queries_per_hour == 0 || i + 1 == self.cfg.iterations {
                let hour = (i + 1).div_ceil(self.cfg.queries_per_hour);
                stats.diversity_timeline.push(TimelinePoint {
                    hour,
                    value: self.kqe.diversity(),
                });
                stats.bug_timeline.push(TimelinePoint {
                    hour,
                    value: self.bugs.bug_count(),
                });
                stats.bug_type_timeline.push(TimelinePoint {
                    hour,
                    value: self.bugs.bug_type_count(),
                });
            }
        }
        stats.diversity = self.kqe.diversity();
        stats.bug_count = self.bugs.bug_count();
        stats.bug_type_count = self.bugs.bug_type_count();
        stats
    }

    /// Generate the next query, with or without KQE weighting.
    pub fn generate_query(&mut self) -> SelectStmt {
        if self.cfg.use_kqe {
            let scorer = KqeScorer { kqe: &self.kqe };
            self.generator.generate(&self.dsg, None, &scorer)
        } else {
            self.generator.generate(&self.dsg, None, &UniformScorer)
        }
    }

    /// Transform, execute and verify one query. Returns false when the query
    /// was skipped (unsupported ground-truth shape).
    pub fn test_one(&mut self, stmt: &SelectStmt) -> bool {
        let gt_eval = GroundTruthEvaluator::new(&self.dsg.db);
        let truth = match gt_eval.evaluate(stmt) {
            Ok(t) => t,
            Err(_) => return false,
        };
        let hint_sets = hint_sets_for(self.dialect, stmt);
        let mut outcomes = Vec::new();
        for hs in &hint_sets {
            match self.connector.execute_with_hints(stmt, hs) {
                Ok(out) => outcomes.push((hs.clone(), out)),
                Err(_) => continue,
            }
        }
        if outcomes.is_empty() {
            return false;
        }
        if self.cfg.use_ground_truth {
            for (hs, out) in &outcomes {
                if !truth.matches(&out.result) {
                    let minimized = if self.cfg.minimize {
                        Some(minimize_query(stmt, hs, self.connector.as_mut(), &gt_eval))
                    } else {
                        None
                    };
                    let report = make_report(
                        &self.dbms_name,
                        Oracle::GroundTruth,
                        stmt,
                        hs,
                        &truth.result,
                        &out.result,
                        out.fired.clone(),
                        minimized.as_ref(),
                    );
                    self.bugs.push(report);
                }
            }
        } else {
            // Differential testing: compare every plan against the default
            // plan's result; a bug is reported only when plans disagree.
            let (base_hs, base) = &outcomes[0];
            let _ = base_hs;
            for (hs, out) in &outcomes[1..] {
                if !base.result.same_bag(&out.result) {
                    let report = make_report(
                        &self.dbms_name,
                        Oracle::Differential,
                        stmt,
                        hs,
                        &base.result,
                        &out.result,
                        out.fired.clone(),
                        None,
                    );
                    self.bugs.push(report);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsg::WideSource;
    use tqs_schema::NoiseConfig;
    use tqs_storage::widegen::ShoppingConfig;

    fn dsg_cfg(noise: bool) -> DsgConfig {
        DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 120,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: if noise {
                Some(NoiseConfig {
                    epsilon: 0.04,
                    seed: 9,
                    max_injections: 16,
                })
            } else {
                None
            },
        }
    }

    fn small_cfg() -> TqsConfig {
        TqsConfig {
            iterations: 40,
            queries_per_hour: 10,
            ..Default::default()
        }
    }

    #[test]
    fn pristine_engine_yields_no_bugs() {
        // Soundness: with no faults enabled, ground-truth verification must
        // never flag a bug — i.e. the GT evaluator and the engine agree.
        for profile in ProfileId::ALL {
            let mut session = TqsSession::builder()
                .connector(EngineConnector::pristine(profile))
                .dsg_config(&dsg_cfg(true))
                .config(small_cfg())
                .build()
                .unwrap();
            let stats = session.run();
            assert_eq!(
                stats.bug_count, 0,
                "false positives on pristine {profile:?}: {:#?}",
                session.bugs.reports
            );
            assert!(stats.queries_executed > stats.queries_skipped);
        }
    }

    #[test]
    fn faulty_mysql_like_build_is_caught() {
        let mut session = TqsSession::builder()
            .profile(ProfileId::MysqlLike)
            .dsg_config(&dsg_cfg(true))
            .config(TqsConfig {
                iterations: 120,
                ..small_cfg()
            })
            .build()
            .unwrap();
        let stats = session.run();
        assert!(stats.bug_count > 0, "no bugs found on a faulty build");
        assert!(stats.bug_type_count >= 1);
        // every report carries a reproducer
        for r in &session.bugs.reports {
            assert!(r.transformed_sql.contains("SELECT"));
        }
    }

    #[test]
    fn timelines_are_monotone() {
        let mut session = TqsSession::builder()
            .profile(ProfileId::TidbLike)
            .dsg_config(&dsg_cfg(true))
            .config(TqsConfig {
                iterations: 60,
                ..small_cfg()
            })
            .build()
            .unwrap();
        let stats = session.run();
        for w in stats.diversity_timeline.windows(2) {
            assert!(w[0].value <= w[1].value);
        }
        for w in stats.bug_timeline.windows(2) {
            assert!(w[0].value <= w[1].value);
        }
        assert_eq!(stats.diversity, session.kqe.diversity());
    }

    #[test]
    fn kqe_improves_structure_diversity() {
        let dsg = DsgDatabase::build(&dsg_cfg(false));
        let run = |use_kqe: bool| {
            let mut session = TqsSession::builder()
                .connector(EngineConnector::pristine(ProfileId::MysqlLike))
                .dsg(dsg.clone())
                .config(TqsConfig {
                    iterations: 150,
                    use_kqe,
                    query_gen: QueryGenConfig {
                        seed: 3,
                        ..Default::default()
                    },
                    ..small_cfg()
                })
                .build()
                .unwrap();
            session.run().diversity
        };
        let with_kqe = run(true);
        let without = run(false);
        assert!(
            with_kqe as f64 >= without as f64 * 0.9,
            "KQE diversity {with_kqe} should not collapse below uniform {without}"
        );
    }

    #[test]
    fn builder_defaults_to_the_faulty_mysql_like_engine() {
        let session = TqsSession::builder()
            .dsg_config(&dsg_cfg(false))
            .config(small_cfg())
            .build()
            .unwrap();
        assert_eq!(session.dbms_name(), "MySQL-like");
        assert_eq!(session.connector.info().dialect, ProfileId::MysqlLike);
    }
}
