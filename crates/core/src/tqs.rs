//! The TQS orchestrator (Algorithm 1).
//!
//! Ties everything together: DSG builds the database and generates queries by
//! (adaptive) random walk, KQE scores and records query graphs, HintGen
//! produces transformed queries, the backend behind a
//! [`DbmsConnector`](crate::backend::DbmsConnector) executes them, and each
//! statement is judged by a pluggable [`Oracle`] — the ground-truth
//! [`TqsOracle`] by default, [`PlanDiffOracle`] for the `!GT` ablation, or
//! any custom implementation supplied through the builder.

use crate::backend::{ConnectorError, DbmsConnector, EngineConnector};
use crate::bugs::BugLog;
use crate::dsg::{DsgConfig, DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer};
use crate::kqe::{Kqe, KqeConfig, KqeScorer};
use crate::oracle::{Oracle, OracleVerdict, PlanDiffOracle, TqsOracle};
use serde::Serialize;
use std::sync::Arc;
use tqs_engine::ProfileId;
use tqs_graph::plangraph::query_graph_with_subqueries;
use tqs_sql::ast::SelectStmt;

/// Orchestrator configuration, including the ablation switches of Table 5.
#[derive(Debug, Clone)]
pub struct TqsConfig {
    pub iterations: usize,
    /// Knowledge-guided exploration (off = `TQS!KQE`).
    pub use_kqe: bool,
    /// Ground-truth verification (off = `TQS!GT`, i.e. differential testing).
    pub use_ground_truth: bool,
    /// Run the reducer on each new bug before logging it.
    pub minimize: bool,
    pub query_gen: QueryGenConfig,
    pub kqe: KqeConfig,
    /// How many generated queries correspond to one "hour" when reporting
    /// timelines (the paper's x-axis is wall-clock hours; ours is a query
    /// budget).
    pub queries_per_hour: usize,
}

impl Default for TqsConfig {
    fn default() -> Self {
        TqsConfig {
            iterations: 300,
            use_kqe: true,
            use_ground_truth: true,
            minimize: false,
            query_gen: QueryGenConfig::default(),
            kqe: KqeConfig::default(),
            queries_per_hour: 25,
        }
    }
}

/// A point on a per-"hour" timeline.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TimelinePoint {
    pub hour: usize,
    pub value: usize,
}

/// Statistics of one run.
#[derive(Debug, Clone, Serialize)]
pub struct RunStats {
    pub dbms: String,
    pub tool: String,
    pub queries_generated: usize,
    pub queries_executed: usize,
    pub queries_skipped: usize,
    pub diversity: usize,
    pub bug_count: usize,
    pub bug_type_count: usize,
    pub diversity_timeline: Vec<TimelinePoint>,
    pub bug_timeline: Vec<TimelinePoint>,
    pub bug_type_timeline: Vec<TimelinePoint>,
}

/// One TQS testing session against one DBMS backend.
///
/// Built with [`TqsSession::builder`]; the backend is anything implementing
/// [`DbmsConnector`] — the in-process simulated engine by default.
pub struct TqsSession {
    /// Shared with the default oracle (which verifies against its ground
    /// truth) instead of duplicated into it.
    pub dsg: Arc<DsgDatabase>,
    pub connector: Box<dyn DbmsConnector>,
    /// The verdict procedure. [`TqsOracle`] (ground truth) by default,
    /// [`PlanDiffOracle`] when `use_ground_truth` is off, or anything the
    /// builder's [`oracle`](TqsSessionBuilder::oracle) supplied.
    pub oracle: Box<dyn Oracle>,
    pub kqe: Kqe,
    pub generator: QueryGenerator,
    pub cfg: TqsConfig,
    pub bugs: BugLog,
    dbms_name: String,
    dialect: ProfileId,
}

/// Builder for [`TqsSession`].
///
/// ```
/// use tqs_core::backend::EngineConnector;
/// use tqs_core::dsg::{DsgConfig, WideSource};
/// use tqs_core::tqs::{TqsConfig, TqsSession};
/// use tqs_engine::ProfileId;
/// use tqs_storage::widegen::ShoppingConfig;
///
/// let dsg_cfg = DsgConfig {
///     source: WideSource::Shopping(ShoppingConfig { n_rows: 100, ..Default::default() }),
///     ..Default::default()
/// };
/// let mut session = TqsSession::builder()
///     .connector(EngineConnector::faulty(ProfileId::MysqlLike))
///     .dsg_config(&dsg_cfg)
///     .config(TqsConfig { iterations: 25, ..Default::default() })
///     .build()
///     .unwrap();
/// let stats = session.run();
/// assert!(stats.queries_generated >= 25);
/// ```
#[derive(Default)]
pub struct TqsSessionBuilder {
    profile: Option<ProfileId>,
    connector: Option<Box<dyn DbmsConnector>>,
    oracle: Option<Box<dyn Oracle>>,
    dsg: Option<DsgDatabase>,
    dsg_cfg: Option<DsgConfig>,
    cfg: TqsConfig,
}

impl TqsSessionBuilder {
    /// Target the faulty engine build of `profile` (ignored when an explicit
    /// [`connector`](Self::connector) is supplied).
    pub fn profile(mut self, profile: ProfileId) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Drive this backend instead of the default engine connector.
    pub fn connector(mut self, connector: impl DbmsConnector + 'static) -> Self {
        self.connector = Some(Box::new(connector));
        self
    }

    /// Drive an already-boxed backend (for callers assembling connectors
    /// dynamically).
    pub fn boxed_connector(mut self, connector: Box<dyn DbmsConnector>) -> Self {
        self.connector = Some(connector);
        self
    }

    /// Judge every statement with this oracle instead of the default
    /// (ground-truth [`TqsOracle`], or [`PlanDiffOracle`] when
    /// `use_ground_truth` is off). This is how a session runs cross-engine
    /// differential testing: pass a
    /// [`DifferentialOracle`](crate::oracle::DifferentialOracle) owning the
    /// second engine build.
    pub fn oracle(mut self, oracle: impl Oracle + 'static) -> Self {
        self.oracle = Some(Box::new(oracle));
        self
    }

    /// Like [`oracle`](Self::oracle), for callers assembling oracles
    /// dynamically.
    pub fn boxed_oracle(mut self, oracle: Box<dyn Oracle>) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Use an already-built DSG database (shared across sessions).
    pub fn dsg(mut self, dsg: DsgDatabase) -> Self {
        self.dsg = Some(dsg);
        self
    }

    /// Build the DSG database from this configuration at
    /// [`build`](Self::build) time.
    pub fn dsg_config(mut self, cfg: &DsgConfig) -> Self {
        self.dsg_cfg = Some(cfg.clone());
        self
    }

    pub fn config(mut self, cfg: TqsConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Assemble the session: build (or take) the DSG database, construct the
    /// connector if none was given, and load the catalog into it.
    pub fn build(self) -> Result<TqsSession, ConnectorError> {
        let dsg = Arc::new(match self.dsg {
            Some(d) => d,
            None => DsgDatabase::build(&self.dsg_cfg.unwrap_or_default()),
        });
        let mut connector = match self.connector {
            Some(c) => c,
            None => Box::new(EngineConnector::faulty(
                self.profile.unwrap_or(ProfileId::MysqlLike),
            )),
        };
        connector.load_catalog(&dsg.db.catalog)?;
        let info = connector.info();
        let oracle: Box<dyn Oracle> = match self.oracle {
            Some(o) => o,
            None if self.cfg.use_ground_truth => {
                Box::new(TqsOracle::shared(Arc::clone(&dsg)).with_minimize(self.cfg.minimize))
            }
            None => Box::new(PlanDiffOracle::shared(Arc::clone(&dsg))),
        };
        let kqe = Kqe::new(dsg.schema_desc.clone(), self.cfg.kqe.clone());
        let generator = QueryGenerator::new(self.cfg.query_gen.clone());
        Ok(TqsSession {
            dsg,
            connector,
            oracle,
            kqe,
            generator,
            cfg: self.cfg,
            bugs: BugLog::new(),
            dbms_name: info.name,
            dialect: info.dialect,
        })
    }
}

impl TqsSession {
    pub fn builder() -> TqsSessionBuilder {
        TqsSessionBuilder::default()
    }

    /// Name of the backend build under test.
    pub fn dbms_name(&self) -> &str {
        &self.dbms_name
    }

    /// Hint dialect of the backend build under test (cached at build time).
    pub fn dialect(&self) -> ProfileId {
        self.dialect
    }

    /// Run Algorithm 1 for the configured number of iterations.
    pub fn run(&mut self) -> RunStats {
        let mut stats = RunStats {
            dbms: self.dbms_name.clone(),
            tool: self.oracle.name().to_string(),
            queries_generated: 0,
            queries_executed: 0,
            queries_skipped: 0,
            diversity: 0,
            bug_count: 0,
            bug_type_count: 0,
            diversity_timeline: Vec::new(),
            bug_timeline: Vec::new(),
            bug_type_timeline: Vec::new(),
        };
        for i in 0..self.cfg.iterations {
            let stmt = self.generate_query();
            stats.queries_generated += 1;
            // record in GI (the diversity metric is tracked for all variants)
            let qg = query_graph_with_subqueries(&stmt, &self.dsg.schema_desc);
            self.kqe.record(&qg);
            if self.test_one(&stmt) {
                stats.queries_executed += 1;
            } else {
                stats.queries_skipped += 1;
            }
            if (i + 1) % self.cfg.queries_per_hour == 0 || i + 1 == self.cfg.iterations {
                let hour = (i + 1).div_ceil(self.cfg.queries_per_hour);
                stats.diversity_timeline.push(TimelinePoint {
                    hour,
                    value: self.kqe.diversity(),
                });
                stats.bug_timeline.push(TimelinePoint {
                    hour,
                    value: self.bugs.bug_count(),
                });
                stats.bug_type_timeline.push(TimelinePoint {
                    hour,
                    value: self.bugs.bug_type_count(),
                });
            }
        }
        stats.diversity = self.kqe.diversity();
        stats.bug_count = self.bugs.bug_count();
        stats.bug_type_count = self.bugs.bug_type_count();
        stats
    }

    /// Generate the next query, with or without KQE weighting.
    pub fn generate_query(&mut self) -> SelectStmt {
        if self.cfg.use_kqe {
            let scorer = KqeScorer { kqe: &self.kqe };
            self.generator.generate(&self.dsg, None, &scorer)
        } else {
            self.generator.generate(&self.dsg, None, &UniformScorer)
        }
    }

    /// Run one query through the session's oracle. Returns false when the
    /// oracle skipped the statement (unsupported shape, execution failure).
    /// Every report is stamped with the statement's canonical plan-graph
    /// fingerprint before entering the log, so the log deduplicates at
    /// bug-class granularity (see [`crate::bugs::BugReport::class_key`]).
    pub fn test_one(&mut self, stmt: &SelectStmt) -> bool {
        match self.oracle.check(stmt, self.connector.as_mut()) {
            OracleVerdict::Skip => false,
            OracleVerdict::Pass => true,
            OracleVerdict::Bugs(reports) => {
                let fp = tqs_graph::plangraph::plan_fingerprint(stmt, &self.dsg.schema_desc);
                for r in reports {
                    self.bugs.push(r.with_fingerprint(fp));
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsg::WideSource;
    use tqs_schema::NoiseConfig;
    use tqs_storage::widegen::ShoppingConfig;

    fn dsg_cfg(noise: bool) -> DsgConfig {
        DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 120,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: if noise {
                Some(NoiseConfig {
                    epsilon: 0.04,
                    seed: 9,
                    max_injections: 16,
                })
            } else {
                None
            },
        }
    }

    fn small_cfg() -> TqsConfig {
        TqsConfig {
            iterations: 40,
            queries_per_hour: 10,
            ..Default::default()
        }
    }

    #[test]
    fn pristine_engine_yields_no_bugs() {
        // Soundness: with no faults enabled, ground-truth verification must
        // never flag a bug — i.e. the GT evaluator and the engine agree.
        for profile in ProfileId::ALL {
            let mut session = TqsSession::builder()
                .connector(EngineConnector::pristine(profile))
                .dsg_config(&dsg_cfg(true))
                .config(small_cfg())
                .build()
                .unwrap();
            let stats = session.run();
            assert_eq!(
                stats.bug_count, 0,
                "false positives on pristine {profile:?}: {:#?}",
                session.bugs.reports
            );
            assert!(stats.queries_executed > stats.queries_skipped);
        }
    }

    #[test]
    fn faulty_mysql_like_build_is_caught() {
        let mut session = TqsSession::builder()
            .profile(ProfileId::MysqlLike)
            .dsg_config(&dsg_cfg(true))
            .config(TqsConfig {
                iterations: 120,
                ..small_cfg()
            })
            .build()
            .unwrap();
        let stats = session.run();
        assert!(stats.bug_count > 0, "no bugs found on a faulty build");
        assert!(stats.bug_type_count >= 1);
        // every report carries a reproducer
        for r in &session.bugs.reports {
            assert!(r.transformed_sql.contains("SELECT"));
        }
    }

    #[test]
    fn timelines_are_monotone() {
        let mut session = TqsSession::builder()
            .profile(ProfileId::TidbLike)
            .dsg_config(&dsg_cfg(true))
            .config(TqsConfig {
                iterations: 60,
                ..small_cfg()
            })
            .build()
            .unwrap();
        let stats = session.run();
        for w in stats.diversity_timeline.windows(2) {
            assert!(w[0].value <= w[1].value);
        }
        for w in stats.bug_timeline.windows(2) {
            assert!(w[0].value <= w[1].value);
        }
        assert_eq!(stats.diversity, session.kqe.diversity());
    }

    #[test]
    fn kqe_improves_structure_diversity() {
        let dsg = DsgDatabase::build(&dsg_cfg(false));
        let run = |use_kqe: bool| {
            let mut session = TqsSession::builder()
                .connector(EngineConnector::pristine(ProfileId::MysqlLike))
                .dsg(dsg.clone())
                .config(TqsConfig {
                    iterations: 150,
                    use_kqe,
                    query_gen: QueryGenConfig {
                        seed: 3,
                        ..Default::default()
                    },
                    ..small_cfg()
                })
                .build()
                .unwrap();
            session.run().diversity
        };
        let with_kqe = run(true);
        let without = run(false);
        assert!(
            with_kqe as f64 >= without as f64 * 0.9,
            "KQE diversity {with_kqe} should not collapse below uniform {without}"
        );
    }

    #[test]
    fn the_session_tool_label_comes_from_the_oracle() {
        let run = |use_gt: bool| {
            let mut session = TqsSession::builder()
                .connector(EngineConnector::pristine(ProfileId::MysqlLike))
                .dsg_config(&dsg_cfg(false))
                .config(TqsConfig {
                    iterations: 5,
                    use_ground_truth: use_gt,
                    ..small_cfg()
                })
                .build()
                .unwrap();
            session.run().tool
        };
        assert_eq!(run(true), "TQS");
        assert_eq!(run(false), "TQS!GT");
    }

    #[test]
    fn a_custom_oracle_drives_the_session() {
        struct CountingOracle(usize);
        impl crate::oracle::Oracle for CountingOracle {
            fn name(&self) -> &str {
                "counting"
            }
            fn check(
                &mut self,
                _stmt: &tqs_sql::ast::SelectStmt,
                _conn: &mut dyn crate::backend::DbmsConnector,
            ) -> OracleVerdict {
                self.0 += 1;
                OracleVerdict::Pass
            }
        }
        let mut session = TqsSession::builder()
            .connector(EngineConnector::pristine(ProfileId::MysqlLike))
            .dsg_config(&dsg_cfg(false))
            .config(TqsConfig {
                iterations: 12,
                ..small_cfg()
            })
            .oracle(CountingOracle(0))
            .build()
            .unwrap();
        let stats = session.run();
        assert_eq!(stats.tool, "counting");
        assert_eq!(stats.queries_executed, 12);
        assert_eq!(stats.queries_skipped, 0);
    }

    #[test]
    fn builder_defaults_to_the_faulty_mysql_like_engine() {
        let session = TqsSession::builder()
            .dsg_config(&dsg_cfg(false))
            .config(small_cfg())
            .build()
            .unwrap();
        assert_eq!(session.dbms_name(), "MySQL-like");
        assert_eq!(session.connector.info().dialect, ProfileId::MysqlLike);
    }
}
