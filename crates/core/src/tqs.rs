//! The TQS orchestrator (Algorithm 1).
//!
//! Ties everything together: DSG builds the database and generates queries by
//! (adaptive) random walk, KQE scores and records query graphs, HintGen
//! produces transformed queries, the simulated DBMS executes them, and each
//! result set is verified against the wide-table ground truth (or, in the
//! `!GT` ablation, against the other plans' results).

use crate::bugs::{make_report, minimize_query, BugLog, Oracle};
use crate::dsg::{DsgConfig, DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer};
use crate::hintgen::hint_sets_for;
use crate::kqe::{Kqe, KqeConfig, KqeScorer};
use serde::Serialize;
use tqs_engine::{Database, DbmsProfile, ProfileId};
use tqs_graph::plangraph::query_graph_with_subqueries;
use tqs_schema::GroundTruthEvaluator;
use tqs_sql::ast::SelectStmt;

/// Orchestrator configuration, including the ablation switches of Table 5.
#[derive(Debug, Clone)]
pub struct TqsConfig {
    pub iterations: usize,
    /// Knowledge-guided exploration (off = `TQS!KQE`).
    pub use_kqe: bool,
    /// Ground-truth verification (off = `TQS!GT`, i.e. differential testing).
    pub use_ground_truth: bool,
    /// Run the reducer on each new bug before logging it.
    pub minimize: bool,
    pub query_gen: QueryGenConfig,
    pub kqe: KqeConfig,
    /// How many generated queries correspond to one "hour" when reporting
    /// timelines (the paper's x-axis is wall-clock hours; ours is a query
    /// budget).
    pub queries_per_hour: usize,
}

impl Default for TqsConfig {
    fn default() -> Self {
        TqsConfig {
            iterations: 300,
            use_kqe: true,
            use_ground_truth: true,
            minimize: false,
            query_gen: QueryGenConfig::default(),
            kqe: KqeConfig::default(),
            queries_per_hour: 25,
        }
    }
}

/// A point on a per-"hour" timeline.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TimelinePoint {
    pub hour: usize,
    pub value: usize,
}

/// Statistics of one run.
#[derive(Debug, Clone, Serialize)]
pub struct RunStats {
    pub dbms: String,
    pub tool: String,
    pub queries_generated: usize,
    pub queries_executed: usize,
    pub queries_skipped: usize,
    pub diversity: usize,
    pub bug_count: usize,
    pub bug_type_count: usize,
    pub diversity_timeline: Vec<TimelinePoint>,
    pub bug_timeline: Vec<TimelinePoint>,
    pub bug_type_timeline: Vec<TimelinePoint>,
}

/// One TQS testing session against one simulated DBMS.
pub struct TqsRunner {
    pub dsg: DsgDatabase,
    pub engine: Database,
    pub profile_id: ProfileId,
    pub kqe: Kqe,
    pub generator: QueryGenerator,
    pub cfg: TqsConfig,
    pub bugs: BugLog,
}

impl TqsRunner {
    /// Build a runner: run the DSG data pipeline, load the resulting catalog
    /// into a fresh engine instance of `profile`, and set up KQE.
    pub fn new(profile: ProfileId, dsg_cfg: &DsgConfig, cfg: TqsConfig) -> Self {
        let dsg = DsgDatabase::build(dsg_cfg);
        Self::with_database(profile, DbmsProfile::build(profile), dsg, cfg)
    }

    /// Build a runner against an explicit engine build (used by the soundness
    /// tests with pristine profiles and by the ablation harness).
    pub fn with_database(
        profile_id: ProfileId,
        profile: DbmsProfile,
        dsg: DsgDatabase,
        cfg: TqsConfig,
    ) -> Self {
        let engine = Database::new(dsg.db.catalog.clone(), profile);
        let kqe = Kqe::new(dsg.schema_desc.clone(), cfg.kqe.clone());
        let generator = QueryGenerator::new(cfg.query_gen.clone());
        TqsRunner { dsg, engine, profile_id, kqe, generator, cfg, bugs: BugLog::new() }
    }

    /// Run Algorithm 1 for the configured number of iterations.
    pub fn run(&mut self) -> RunStats {
        let mut stats = RunStats {
            dbms: self.engine.profile.info.name.clone(),
            tool: if self.cfg.use_ground_truth { "TQS" } else { "TQS!GT" }.to_string(),
            queries_generated: 0,
            queries_executed: 0,
            queries_skipped: 0,
            diversity: 0,
            bug_count: 0,
            bug_type_count: 0,
            diversity_timeline: Vec::new(),
            bug_timeline: Vec::new(),
            bug_type_timeline: Vec::new(),
        };
        for i in 0..self.cfg.iterations {
            let stmt = self.generate_query();
            stats.queries_generated += 1;
            // record in GI (the diversity metric is tracked for all variants)
            let qg = query_graph_with_subqueries(&stmt, &self.dsg.schema_desc);
            self.kqe.record(&qg);
            if self.test_one(&stmt) {
                stats.queries_executed += 1;
            } else {
                stats.queries_skipped += 1;
            }
            if (i + 1) % self.cfg.queries_per_hour == 0 || i + 1 == self.cfg.iterations {
                let hour = (i + 1).div_ceil(self.cfg.queries_per_hour);
                stats.diversity_timeline.push(TimelinePoint { hour, value: self.kqe.diversity() });
                stats.bug_timeline.push(TimelinePoint { hour, value: self.bugs.bug_count() });
                stats
                    .bug_type_timeline
                    .push(TimelinePoint { hour, value: self.bugs.bug_type_count() });
            }
        }
        stats.diversity = self.kqe.diversity();
        stats.bug_count = self.bugs.bug_count();
        stats.bug_type_count = self.bugs.bug_type_count();
        stats
    }

    /// Generate the next query, with or without KQE weighting.
    pub fn generate_query(&mut self) -> SelectStmt {
        if self.cfg.use_kqe {
            let scorer = KqeScorer { kqe: &self.kqe };
            self.generator.generate(&self.dsg, None, &scorer)
        } else {
            self.generator.generate(&self.dsg, None, &UniformScorer)
        }
    }

    /// Transform, execute and verify one query. Returns false when the query
    /// was skipped (unsupported ground-truth shape).
    pub fn test_one(&mut self, stmt: &SelectStmt) -> bool {
        let gt_eval = GroundTruthEvaluator::new(&self.dsg.db);
        let truth = match gt_eval.evaluate(stmt) {
            Ok(t) => t,
            Err(_) => return false,
        };
        let hint_sets = hint_sets_for(self.profile_id, stmt);
        let mut outcomes = Vec::new();
        for hs in &hint_sets {
            match self.engine.execute_with_hints(stmt, hs) {
                Ok(out) => outcomes.push((hs.clone(), out)),
                Err(_) => continue,
            }
        }
        if outcomes.is_empty() {
            return false;
        }
        if self.cfg.use_ground_truth {
            for (hs, out) in &outcomes {
                if !truth.matches(&out.result) {
                    let minimized = if self.cfg.minimize {
                        Some(minimize_query(stmt, hs, &mut self.engine, &gt_eval))
                    } else {
                        None
                    };
                    let report = make_report(
                        &self.engine.profile.info.name,
                        Oracle::GroundTruth,
                        stmt,
                        hs,
                        &truth.result,
                        &out.result,
                        out.fired.clone(),
                        minimized.as_ref(),
                    );
                    self.bugs.push(report);
                }
            }
        } else {
            // Differential testing: compare every plan against the default
            // plan's result; a bug is reported only when plans disagree.
            let (base_hs, base) = &outcomes[0];
            let _ = base_hs;
            for (hs, out) in &outcomes[1..] {
                if !base.result.same_bag(&out.result) {
                    let report = make_report(
                        &self.engine.profile.info.name,
                        Oracle::Differential,
                        stmt,
                        hs,
                        &base.result,
                        &out.result,
                        out.fired.clone(),
                        None,
                    );
                    self.bugs.push(report);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsg::WideSource;
    use tqs_schema::NoiseConfig;
    use tqs_storage::widegen::ShoppingConfig;

    fn dsg_cfg(noise: bool) -> DsgConfig {
        DsgConfig {
            source: WideSource::Shopping(ShoppingConfig { n_rows: 120, ..Default::default() }),
            fd: Default::default(),
            noise: if noise {
                Some(NoiseConfig { epsilon: 0.04, seed: 9, max_injections: 16 })
            } else {
                None
            },
        }
    }

    fn small_cfg() -> TqsConfig {
        TqsConfig { iterations: 40, queries_per_hour: 10, ..Default::default() }
    }

    #[test]
    fn pristine_engine_yields_no_bugs() {
        // Soundness: with no faults enabled, ground-truth verification must
        // never flag a bug — i.e. the GT evaluator and the engine agree.
        for profile in ProfileId::ALL {
            let dsg = DsgDatabase::build(&dsg_cfg(true));
            let mut runner = TqsRunner::with_database(
                profile,
                DbmsProfile::pristine(profile),
                dsg,
                small_cfg(),
            );
            let stats = runner.run();
            assert_eq!(
                stats.bug_count, 0,
                "false positives on pristine {profile:?}: {:#?}",
                runner.bugs.reports
            );
            assert!(stats.queries_executed > stats.queries_skipped);
        }
    }

    #[test]
    fn faulty_mysql_like_build_is_caught() {
        let dsg = DsgDatabase::build(&dsg_cfg(true));
        let mut runner = TqsRunner::with_database(
            ProfileId::MysqlLike,
            DbmsProfile::build(ProfileId::MysqlLike),
            dsg,
            TqsConfig { iterations: 120, ..small_cfg() },
        );
        let stats = runner.run();
        assert!(stats.bug_count > 0, "no bugs found on a faulty build");
        assert!(stats.bug_type_count >= 1);
        // every report carries a reproducer
        for r in &runner.bugs.reports {
            assert!(r.transformed_sql.contains("SELECT"));
        }
    }

    #[test]
    fn timelines_are_monotone() {
        let dsg = DsgDatabase::build(&dsg_cfg(true));
        let mut runner = TqsRunner::with_database(
            ProfileId::TidbLike,
            DbmsProfile::build(ProfileId::TidbLike),
            dsg,
            TqsConfig { iterations: 60, ..small_cfg() },
        );
        let stats = runner.run();
        for w in stats.diversity_timeline.windows(2) {
            assert!(w[0].value <= w[1].value);
        }
        for w in stats.bug_timeline.windows(2) {
            assert!(w[0].value <= w[1].value);
        }
        assert_eq!(stats.diversity, runner.kqe.diversity());
    }

    #[test]
    fn kqe_improves_structure_diversity() {
        let dsg = DsgDatabase::build(&dsg_cfg(false));
        let run = |use_kqe: bool| {
            let mut runner = TqsRunner::with_database(
                ProfileId::MysqlLike,
                DbmsProfile::pristine(ProfileId::MysqlLike),
                dsg.clone(),
                TqsConfig {
                    iterations: 150,
                    use_kqe,
                    query_gen: QueryGenConfig { seed: 3, ..Default::default() },
                    ..small_cfg()
                },
            );
            runner.run().diversity
        };
        let with_kqe = run(true);
        let without = run(false);
        assert!(
            with_kqe as f64 >= without as f64 * 0.9,
            "KQE diversity {with_kqe} should not collapse below uniform {without}"
        );
    }
}
