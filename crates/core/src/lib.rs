//! # tqs-core
//!
//! The TQS framework (Transformed Query Synthesis) — detection of logic bugs
//! in join optimization, reproduced from the SIGMOD 2023 paper:
//!
//! * [`dsg`] — Data-guided Schema and query Generation: the data pipeline
//!   (wide table → FDs → 3NF schema → noise → bitmap machinery) and the
//!   random-walk join query generator.
//! * [`kqe`] — Knowledge-guided Query space Exploration: the graph index over
//!   explored query graphs and the coverage-based adaptive walk weighting.
//! * [`hintgen`] — hint-set generation (transformed queries per DBMS profile).
//! * [`tqs`] — the orchestrator (Algorithm 1) with the Table 5 ablation
//!   switches.
//! * [`bugs`] — bug reports, the deduplicating bug log and the test-case
//!   minimizer.
//! * [`baselines`] — PQS / TLP / NoRec adapted to multi-table queries.
//! * [`parallel`] — the shared-index parallel exploration of Figure 10.
//!
//! ## Quick start
//!
//! ```
//! use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
//! use tqs_core::tqs::{TqsConfig, TqsRunner};
//! use tqs_engine::ProfileId;
//! use tqs_storage::widegen::ShoppingConfig;
//!
//! let dsg_cfg = DsgConfig {
//!     source: WideSource::Shopping(ShoppingConfig { n_rows: 100, ..Default::default() }),
//!     ..Default::default()
//! };
//! let mut runner = TqsRunner::new(
//!     ProfileId::MysqlLike,
//!     &dsg_cfg,
//!     TqsConfig { iterations: 25, ..Default::default() },
//! );
//! let stats = runner.run();
//! assert!(stats.queries_generated >= 25);
//! ```

pub mod baselines;
pub mod bugs;
pub mod dsg;
pub mod hintgen;
pub mod kqe;
pub mod parallel;
pub mod tqs;

pub use baselines::{run_baseline, Baseline, BaselineConfig};
pub use bugs::{BugLog, BugReport, Oracle};
pub use dsg::{DsgConfig, DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer, WideSource};
pub use hintgen::hint_sets_for;
pub use kqe::{Kqe, KqeConfig, KqeScorer};
pub use parallel::{parallel_explore, ParallelStats};
pub use tqs::{RunStats, TimelinePoint, TqsConfig, TqsRunner};
