//! # tqs-core
//!
//! The TQS framework (Transformed Query Synthesis) — detection of logic bugs
//! in join optimization, reproduced from the SIGMOD 2023 paper:
//!
//! * [`backend`] — the [`backend::DbmsConnector`] boundary between the
//!   harness and the DBMS it drives, with the in-process engine connector
//!   (row or columnar executor), a recording proxy and a replay-from-log
//!   backend.
//! * [`oracle`] — the pluggable [`oracle::Oracle`] layer: ground truth,
//!   plan-differential, the PQS/TLP/NoRec baselines and cross-engine
//!   differential testing as uniform, composable checkers.
//! * [`conformance`] — the behavioral contract every connector must pass.
//! * [`dsg`] — Data-guided Schema and query Generation: the data pipeline
//!   (wide table → FDs → 3NF schema → noise → bitmap machinery) and the
//!   random-walk join query generator.
//! * [`kqe`] — Knowledge-guided Query space Exploration: the graph index over
//!   explored query graphs and the coverage-based adaptive walk weighting.
//! * [`hintgen`] — hint-set generation (transformed queries per DBMS profile).
//! * [`tqs`] — the orchestrator (Algorithm 1) with the Table 5 ablation
//!   switches, built through [`tqs::TqsSession::builder`].
//! * [`bugs`] — bug reports, the deduplicating bug log and the test-case
//!   minimizer.
//! * [`baselines`] — PQS / TLP / NoRec adapted to multi-table queries.
//! * [`parallel`] — the shared-index parallel exploration of Figure 10.
//!
//! ## Quick start
//!
//! ```
//! use tqs_core::backend::EngineConnector;
//! use tqs_core::dsg::{DsgConfig, WideSource};
//! use tqs_core::tqs::{TqsConfig, TqsSession};
//! use tqs_engine::ProfileId;
//! use tqs_storage::widegen::ShoppingConfig;
//!
//! let dsg_cfg = DsgConfig {
//!     source: WideSource::Shopping(ShoppingConfig { n_rows: 100, ..Default::default() }),
//!     ..Default::default()
//! };
//! let mut session = TqsSession::builder()
//!     .connector(EngineConnector::faulty(ProfileId::MysqlLike))
//!     .dsg_config(&dsg_cfg)
//!     .config(TqsConfig { iterations: 25, ..Default::default() })
//!     .build()
//!     .expect("catalog loads into the engine connector");
//! let stats = session.run();
//! assert!(stats.queries_generated >= 25);
//! ```
//!
//! Any backend goes where `EngineConnector` stands: implement
//! [`backend::DbmsConnector`] (see the README's "Writing a new connector"),
//! validate it with [`conformance::assert_connector_conformance`], and every
//! entry point — the orchestrator, the three baselines, the parallel
//! explorer and the bug minimizer — drives it unchanged.

pub mod backend;
pub mod baselines;
pub mod bugs;
pub mod conformance;
pub mod dsg;
pub mod hintgen;
pub mod kqe;
pub mod mutation;
pub mod oracle;
pub mod parallel;
pub mod tqs;

pub use backend::{
    ConnectorError, ConnectorInfo, DbmsConnector, EngineConnector, RecordingConnector,
    ReplayConnector, SqlOutcome, TraceEvent,
};
pub use baselines::{run_baseline, run_baseline_on, run_oracle_on, Baseline, BaselineConfig};
pub use bugs::{minimize_query, minimize_with_oracle, BugLog, BugReport, OracleKind};
pub use conformance::{assert_connector_conformance, assert_dml_conformance, BuildKind};
pub use dsg::{DsgConfig, DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer, WideSource};
pub use hintgen::hint_sets_for;
pub use kqe::{Kqe, KqeConfig, KqeScorer};
pub use mutation::{DmlGenConfig, DmlGenerator, DmlOracle, MutationGroundTruth, DML_VERIFY_LABEL};
pub use oracle::{
    DifferentialOracle, NorecOracle, Oracle, OracleVerdict, PlanDiffOracle, PlanSpaceOracle,
    PqsOracle, TlpOracle, TqsOracle, PLAN_BASELINE_LABEL,
};
pub use parallel::{
    parallel_explore, parallel_explore_sharded, parallel_explore_with, ParallelStats,
};
pub use tqs::{RunStats, TimelinePoint, TqsConfig, TqsSession, TqsSessionBuilder};
