//! Connector conformance suite.
//!
//! A reusable behavioral contract every [`DbmsConnector`](crate::backend::DbmsConnector)
//! implementation must satisfy, run from unit tests, integration tests and
//! (for out-of-tree backends) the connector author's own test suite:
//!
//! * **Pristine builds are plan-invariant**: on a fault-free backend, every
//!   hint-set transformation of a query returns the same bag as the wide-table
//!   ground truth, and no fault provenance is ever reported.
//! * **Seeded builds misbehave observably**: on a backend seeded with faults,
//!   a testing session must surface at least one ground-truth mismatch or
//!   fired fault — otherwise the connector is hiding the very behavior the
//!   harness exists to detect.
//! * **The session surface works**: `load_catalog` accepts a DSG catalog, raw
//!   SQL round-trips through `execute_sql`, and `explain` yields a plan.

use crate::backend::DbmsConnector;
use crate::dsg::{DsgConfig, DsgDatabase, QueryGenerator, UniformScorer, WideSource};
use crate::hintgen::hint_sets_for;
use tqs_schema::{GroundTruthEvaluator, NoiseConfig};
use tqs_storage::widegen::ShoppingConfig;

/// What kind of build the connector under test is driving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildKind {
    /// Fault-free: the suite asserts soundness (no mismatches, no fired
    /// faults, all plans agree).
    Pristine,
    /// Fault-seeded: the suite asserts that the misbehavior is observable
    /// (at least one mismatch or fired fault over the run).
    Seeded,
}

/// The standard small testing database the suite drives connectors with.
pub fn conformance_dsg() -> DsgDatabase {
    DsgDatabase::build(&DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 150,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.04,
            seed: 9,
            max_injections: 16,
        }),
    })
}

/// Run the conformance contract against `conn`. Panics (with a diagnostic)
/// on any violation, like an assertion-style test helper.
pub fn assert_connector_conformance(conn: &mut dyn DbmsConnector, kind: BuildKind) {
    let dsg = conformance_dsg();
    conn.load_catalog(&dsg.db.catalog)
        .expect("conformance: load_catalog must accept a DSG catalog");

    let info = conn.info();
    assert!(
        !info.name.is_empty(),
        "conformance: connector must report a build name"
    );

    // Raw-SQL round trip against a known table.
    let base = &dsg.db.metas[0].name;
    let sql_probe = conn
        .execute_sql(&format!("SELECT COUNT(*) AS c FROM {base}"))
        .expect("conformance: execute_sql must handle a trivial COUNT(*)");
    assert_eq!(sql_probe.result.row_count(), 1);

    let gt = GroundTruthEvaluator::new(&dsg.db);
    let mut generator = QueryGenerator::new(Default::default());
    let mut executed = 0usize;
    let mut mismatches = 0usize;
    let mut plan_divergences = 0usize;
    let mut fired_any = false;
    let mut explained = false;

    let iterations = match kind {
        BuildKind::Pristine => 60,
        // Seeded builds get a longer budget: the faults are corner-case
        // triggers and need enough generated queries to fire.
        BuildKind::Seeded => 150,
    };
    for _ in 0..iterations {
        let stmt = generator.generate(&dsg, None, &UniformScorer);
        let truth = match gt.evaluate(&stmt) {
            Ok(t) => t,
            Err(_) => continue,
        };
        if !explained {
            let plan = conn
                .explain(&stmt)
                .expect("conformance: explain must render a plan for a generated query");
            assert!(!plan.is_empty());
            explained = true;
        }
        let mut outcomes = Vec::new();
        for hs in hint_sets_for(info.dialect, &stmt) {
            if let Ok(out) = conn.execute_with_hints(&stmt, &hs) {
                outcomes.push((hs.label.clone(), out));
            }
        }
        if outcomes.is_empty() {
            continue;
        }
        executed += 1;
        for (label, out) in &outcomes {
            if !out.fired.is_empty() {
                fired_any = true;
            }
            if !truth.matches(&out.result) {
                mismatches += 1;
                if kind == BuildKind::Pristine {
                    panic!(
                        "conformance: pristine {} diverged from ground truth under hint set \
                         `{label}` on:\n{}",
                        info.name,
                        tqs_sql::render::render_stmt(&stmt),
                    );
                }
            }
        }
        // Plan invariance: every transformed plan agrees with the default.
        // Select the baseline by label — failed executions are skipped above,
        // so position 0 is not guaranteed to be the un-hinted plan.
        let Some((default_label, default_out)) =
            outcomes.iter().find(|(label, _)| label == "default")
        else {
            continue;
        };
        for (label, out) in &outcomes {
            if label == default_label {
                continue;
            }
            if !default_out.result.same_bag(&out.result) {
                plan_divergences += 1;
                if kind == BuildKind::Pristine {
                    panic!(
                        "conformance: pristine {} plan `{label}` disagrees with the default \
                         plan on:\n{}",
                        info.name,
                        tqs_sql::render::render_stmt(&stmt),
                    );
                }
            }
        }
    }

    assert!(
        executed * 2 >= iterations,
        "conformance: {} executed only {executed}/{iterations} generated queries",
        info.name
    );
    match kind {
        BuildKind::Pristine => {
            assert!(
                !fired_any,
                "conformance: pristine {} reported fired faults",
                info.name
            );
        }
        BuildKind::Seeded => {
            assert!(
                fired_any || mismatches > 0 || plan_divergences > 0,
                "conformance: seeded {} never misbehaved over {iterations} queries — \
                 faults are not observable through this connector",
                info.name
            );
        }
    }
}
