//! Connector conformance suite.
//!
//! A reusable behavioral contract every [`DbmsConnector`](crate::backend::DbmsConnector)
//! implementation must satisfy, run from unit tests, integration tests and
//! (for out-of-tree backends) the connector author's own test suite:
//!
//! * **Pristine builds are plan-invariant**: on a fault-free backend, every
//!   hint-set transformation of a query returns the same bag as the wide-table
//!   ground truth, and no fault provenance is ever reported.
//! * **Seeded builds misbehave observably**: on a backend seeded with faults,
//!   a testing session must surface at least one ground-truth mismatch or
//!   fired fault — otherwise the connector is hiding the very behavior the
//!   harness exists to detect.
//! * **The session surface works**: `load_catalog` accepts a DSG catalog, raw
//!   SQL round-trips through `execute_sql`, and `explain` yields a plan.

use crate::backend::DbmsConnector;
use crate::dsg::{DsgConfig, DsgDatabase, QueryGenerator, UniformScorer, WideSource};
use crate::hintgen::hint_sets_for;
use crate::mutation::{DmlGenConfig, DmlGenerator, DmlOracle};
use crate::oracle::OracleVerdict;
use tqs_schema::{GroundTruthEvaluator, NoiseConfig};
use tqs_storage::widegen::ShoppingConfig;

/// What kind of build the connector under test is driving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildKind {
    /// Fault-free: the suite asserts soundness (no mismatches, no fired
    /// faults, all plans agree).
    Pristine,
    /// Fault-seeded: the suite asserts that the misbehavior is observable
    /// (at least one mismatch or fired fault over the run).
    Seeded,
}

/// The standard small testing database the suite drives connectors with.
pub fn conformance_dsg() -> DsgDatabase {
    DsgDatabase::build(&DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 150,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.04,
            seed: 9,
            max_injections: 16,
        }),
    })
}

/// Run the conformance contract against `conn`. Panics (with a diagnostic)
/// on any violation, like an assertion-style test helper.
pub fn assert_connector_conformance(conn: &mut dyn DbmsConnector, kind: BuildKind) {
    let dsg = conformance_dsg();
    conn.load_catalog(&dsg.db.catalog)
        .expect("conformance: load_catalog must accept a DSG catalog");

    let info = conn.info();
    assert!(
        !info.name.is_empty(),
        "conformance: connector must report a build name"
    );

    // Raw-SQL round trip against a known table.
    let base = &dsg.db.metas[0].name;
    let sql_probe = conn
        .execute_sql(&format!("SELECT COUNT(*) AS c FROM {base}"))
        .expect("conformance: execute_sql must handle a trivial COUNT(*)");
    assert_eq!(sql_probe.result.row_count(), 1);

    let gt = GroundTruthEvaluator::new(&dsg.db);
    let mut generator = QueryGenerator::new(Default::default());
    let mut executed = 0usize;
    let mut mismatches = 0usize;
    let mut plan_divergences = 0usize;
    let mut fired_any = false;
    let mut explained = false;

    let iterations = match kind {
        BuildKind::Pristine => 60,
        // Seeded builds get a longer budget: the faults are corner-case
        // triggers and need enough generated queries to fire.
        BuildKind::Seeded => 150,
    };
    for _ in 0..iterations {
        let stmt = generator.generate(&dsg, None, &UniformScorer);
        let truth = match gt.evaluate(&stmt) {
            Ok(t) => t,
            Err(_) => continue,
        };
        if !explained {
            let plan = conn
                .explain(&stmt)
                .expect("conformance: explain must render a plan for a generated query");
            assert!(!plan.is_empty());
            explained = true;
        }
        let mut outcomes = Vec::new();
        for hs in hint_sets_for(info.dialect, &stmt) {
            if let Ok(out) = conn.execute_with_hints(&stmt, &hs) {
                outcomes.push((hs.label.clone(), out));
            }
        }
        if outcomes.is_empty() {
            continue;
        }
        executed += 1;
        for (label, out) in &outcomes {
            if !out.fired.is_empty() {
                fired_any = true;
            }
            if !truth.matches(&out.result) {
                mismatches += 1;
                if kind == BuildKind::Pristine {
                    panic!(
                        "conformance: pristine {} diverged from ground truth under hint set \
                         `{label}` on:\n{}",
                        info.name,
                        tqs_sql::render::render_stmt(&stmt),
                    );
                }
            }
        }
        // Plan invariance: every transformed plan agrees with the default.
        // Select the baseline by label — failed executions are skipped above,
        // so position 0 is not guaranteed to be the un-hinted plan.
        let Some((default_label, default_out)) =
            outcomes.iter().find(|(label, _)| label == "default")
        else {
            continue;
        };
        for (label, out) in &outcomes {
            if label == default_label {
                continue;
            }
            if !default_out.result.same_bag(&out.result) {
                plan_divergences += 1;
                if kind == BuildKind::Pristine {
                    panic!(
                        "conformance: pristine {} plan `{label}` disagrees with the default \
                         plan on:\n{}",
                        info.name,
                        tqs_sql::render::render_stmt(&stmt),
                    );
                }
            }
        }
    }

    assert!(
        executed * 2 >= iterations,
        "conformance: {} executed only {executed}/{iterations} generated queries",
        info.name
    );
    match kind {
        BuildKind::Pristine => {
            assert!(
                !fired_any,
                "conformance: pristine {} reported fired faults",
                info.name
            );
        }
        BuildKind::Seeded => {
            assert!(
                fired_any || mismatches > 0 || plan_divergences > 0,
                "conformance: seeded {} never misbehaved over {iterations} queries — \
                 faults are not observable through this connector",
                info.name
            );
        }
    }
}

/// The DML section of the conformance contract, for connectors that support
/// mutation statements:
///
/// * **Visibility basics hold on every build** (faulty or pristine): an
///   auto-committed INSERT is immediately visible, an UPDATE-only
///   transaction ended by ROLLBACK leaves the table untouched, and a DELETE
///   keyed on a non-NULL column removes exactly its rows. These shapes dodge
///   every seeded DML fault on purpose — they are the part of the contract
///   even a faulty build must honor.
/// * **Pristine builds pass the mutation oracle**: generated DML programs
///   leave the database byte-in-bag-identical to the delta-maintained ground
///   truth, with no fault provenance.
/// * **Seeded builds misbehave observably**: at least one generated program
///   must produce a mutation bug report.
///
/// Panics with a diagnostic on any violation. A connector without DML
/// support should simply not call this — the base contract
/// ([`assert_connector_conformance`]) never touches mutation paths.
pub fn assert_dml_conformance(conn: &mut dyn DbmsConnector, kind: BuildKind) {
    let dsg = conformance_dsg();
    conn.load_catalog(&dsg.db.catalog)
        .expect("dml conformance: load_catalog must accept a DSG catalog");
    let info = conn.info();
    // A (table, column, marker, other) slot whose column admits literals of
    // its own type: an int marker where the column takes ints, a short
    // string marker otherwise.
    let mut slot = None;
    'outer: for t in dsg.db.catalog.iter() {
        for c in &t.columns {
            if c.ty.admits(&tqs_sql::value::Value::Int(987_654_321)) {
                slot = Some((t.name.clone(), c.name.clone(), "987654321", "1"));
                break 'outer;
            }
            if c.ty
                .admits(&tqs_sql::value::Value::Varchar("marker-987".into()))
            {
                slot = Some((t.name.clone(), c.name.clone(), "'marker-987'", "'x'"));
                break 'outer;
            }
        }
    }
    let (table, key_col, marker, other) =
        slot.expect("dml conformance: no column admits a marker literal");
    let count_sql = format!("SELECT COUNT(*) AS c FROM {table}");
    let count = |conn: &mut dyn DbmsConnector, sql: &str| -> i64 {
        let out = conn
            .execute_sql(sql)
            .expect("dml conformance: COUNT(*) probe");
        match out.result.rows[0].get(0) {
            tqs_sql::value::Value::Int(n) => *n,
            other => panic!("dml conformance: COUNT(*) returned {other}"),
        }
    };

    // 1. Auto-committed INSERT is immediately visible.
    let before = count(conn, &count_sql);
    conn.execute_dml_sql(&format!(
        "INSERT INTO {table} ({key_col}) VALUES ({marker})"
    ))
    .unwrap_or_else(|e| panic!("dml conformance: {} rejected INSERT: {e}", info.name));
    assert_eq!(
        count(conn, &count_sql),
        before + 1,
        "dml conformance: {} INSERT not visible",
        info.name
    );

    // 2. An UPDATE-only transaction ended by ROLLBACK changes nothing.
    //    (UPDATE shapes may fire faults inside the transaction; ROLLBACK
    //    restores the snapshot regardless — only inserts can leak under M4.)
    let snapshot = conn
        .execute_sql(&format!("SELECT {table}.{key_col} FROM {table}"))
        .expect("dml conformance: snapshot probe")
        .result;
    for sql in [
        "BEGIN".to_string(),
        format!("UPDATE {table} SET {key_col} = {other} WHERE {table}.{key_col} = {marker}"),
        "ROLLBACK".to_string(),
    ] {
        conn.execute_dml_sql(&sql)
            .unwrap_or_else(|e| panic!("dml conformance: {} rejected {sql}: {e}", info.name));
    }
    let after = conn
        .execute_sql(&format!("SELECT {table}.{key_col} FROM {table}"))
        .expect("dml conformance: post-rollback probe")
        .result;
    assert!(
        snapshot.same_bag(&after),
        "dml conformance: {} ROLLBACK did not restore the table",
        info.name
    );

    // 3. DELETE keyed on a non-NULL value removes exactly its rows.
    let out = conn
        .execute_dml_sql(&format!(
            "DELETE FROM {table} WHERE {table}.{key_col} = {marker}"
        ))
        .unwrap_or_else(|e| panic!("dml conformance: {} rejected DELETE: {e}", info.name));
    assert_eq!(
        out.result.rows[0].get(0),
        &tqs_sql::value::Value::Int(1),
        "dml conformance: {} DELETE affected the wrong row count",
        info.name
    );
    assert_eq!(count(conn, &count_sql), before);

    // 4. Generated mutation programs against the delta-maintained ground
    //    truth: sound when pristine, observably wrong when seeded.
    let oracle = DmlOracle::from_dsg(&dsg);
    let mut gen = DmlGenerator::new(DmlGenConfig::default());
    let programs = match kind {
        BuildKind::Pristine => 10,
        BuildKind::Seeded => 25,
    };
    let mut executed = 0usize;
    let mut bugs = 0usize;
    for _ in 0..programs {
        let program = gen.generate_program(&dsg);
        match oracle.check_program(&program, conn) {
            OracleVerdict::Bugs(reports) => {
                executed += 1;
                bugs += reports.len();
                if kind == BuildKind::Pristine {
                    panic!(
                        "dml conformance: pristine {} diverged from the mutation ground \
                         truth: {reports:#?}",
                        info.name
                    );
                }
            }
            OracleVerdict::Pass => executed += 1,
            OracleVerdict::Skip => {}
        }
    }
    assert!(
        executed * 2 >= programs,
        "dml conformance: {} executed only {executed}/{programs} programs",
        info.name
    );
    if kind == BuildKind::Seeded {
        assert!(
            bugs > 0,
            "dml conformance: seeded {} never misbehaved over {programs} mutation programs",
            info.name
        );
    }
    // Leave the connector reloaded with the pristine catalog.
    conn.load_catalog(&dsg.db.catalog)
        .expect("dml conformance: reload");
}
