//! Backend abstraction: the boundary between the TQS harness and the DBMS it
//! drives.
//!
//! The paper's claim is that TQS is DBMS-agnostic — the same harness found
//! logic bugs in MySQL, MariaDB, TiDB and X-DB. [`DbmsConnector`] is that
//! boundary in this reproduction: it captures everything the orchestrator,
//! the baselines, the parallel explorer and the bug minimizer need from a
//! database — statement execution (plain, hinted, or raw SQL), `EXPLAIN`,
//! hint-dialect metadata, catalog loading, and fault-fired introspection.
//!
//! Two implementations ship here:
//!
//! * [`EngineConnector`] — the in-process simulated DBMS
//!   ([`tqs_engine::Database`]) in one of its four profile builds.
//! * [`RecordingConnector`] — a transparent proxy over any connector that
//!   logs every statement and outcome, for later replay or audit.
//!
//! New backends (a second simulated engine build, a SQLite shim, a networked
//! DBMS) implement the trait without touching the rest of tqs-core; the
//! README's "Writing a new connector" section walks through it, and
//! [`crate::conformance`] provides the shared behavioral test suite every
//! implementation should pass.

use std::fmt;

use tqs_engine::{Database, DbmsProfile, FaultKind, ProfileId};
use tqs_sql::ast::SelectStmt;
use tqs_sql::hints::HintSet;
use tqs_sql::parser::parse_stmt;
use tqs_storage::{Catalog, ResultSet};

use crate::dsg::DsgDatabase;

/// Error surfaced by a connector. Deliberately stringly-typed: backends have
/// wildly different error taxonomies, and the harness only ever needs to know
/// that a statement did not produce a result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectorError {
    pub message: String,
}

impl ConnectorError {
    pub fn new(message: impl Into<String>) -> Self {
        ConnectorError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConnectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "connector error: {}", self.message)
    }
}

impl std::error::Error for ConnectorError {}

/// Result of executing one (possibly transformed) statement.
#[derive(Debug, Clone)]
pub struct SqlOutcome {
    pub result: ResultSet,
    /// Fault provenance: which latent faults fired while producing `result`.
    /// Simulated engines report this for the Table 4 root-cause analysis;
    /// connectors to real DBMSs leave it empty (real systems don't confess).
    pub fired: Vec<FaultKind>,
}

/// Static metadata about the backend a connector drives.
#[derive(Debug, Clone)]
pub struct ConnectorInfo {
    /// Display name of the build, e.g. "MySQL-like".
    pub name: String,
    /// Version string of the build.
    pub version: String,
    /// Hint dialect the backend speaks: which profile's hint sets / session
    /// switches `hint_sets_for` should generate when transforming queries.
    pub dialect: ProfileId,
}

/// Everything the TQS harness needs from a DBMS.
///
/// Required methods are [`info`](DbmsConnector::info),
/// [`load_catalog`](DbmsConnector::load_catalog),
/// [`execute_with_hints`](DbmsConnector::execute_with_hints) and
/// [`explain`](DbmsConnector::explain); plain and raw-SQL execution have
/// default implementations in terms of those.
pub trait DbmsConnector {
    /// Name, version and hint dialect of the backend build.
    fn info(&self) -> ConnectorInfo;

    /// Load (or replace) the schema and data the harness will test against.
    fn load_catalog(&mut self, catalog: &Catalog) -> Result<(), ConnectorError>;

    /// Execute a transformed query: apply the hint set's session switches,
    /// splice its hints into the statement, execute, restore the session.
    fn execute_with_hints(
        &mut self,
        stmt: &SelectStmt,
        hints: &HintSet,
    ) -> Result<SqlOutcome, ConnectorError>;

    /// `EXPLAIN`: a textual rendering of the plan the backend would choose.
    fn explain(&mut self, stmt: &SelectStmt) -> Result<String, ConnectorError>;

    /// Execute a statement with the default (un-hinted) plan.
    fn execute(&mut self, stmt: &SelectStmt) -> Result<SqlOutcome, ConnectorError> {
        self.execute_with_hints(stmt, &HintSet::new("default"))
    }

    /// Execute raw SQL text (parse, then execute).
    fn execute_sql(&mut self, sql: &str) -> Result<SqlOutcome, ConnectorError> {
        let stmt = parse_stmt(sql).map_err(|e| ConnectorError::new(e.to_string()))?;
        self.execute(&stmt)
    }
}

/// The first connector: the in-process simulated DBMS of [`tqs_engine`].
pub struct EngineConnector {
    db: Database,
    dialect: ProfileId,
}

impl EngineConnector {
    /// Connector over an explicit engine build (profile + fault complement).
    pub fn new(dialect: ProfileId, profile: DbmsProfile) -> Self {
        EngineConnector {
            db: Database::new(Catalog::new(), profile),
            dialect,
        }
    }

    /// The faulty build of `id`, with its full Table 4 fault complement.
    pub fn faulty(id: ProfileId) -> Self {
        Self::new(id, DbmsProfile::build(id))
    }

    /// A fault-free build of `id` (soundness tests, ablation baselines).
    pub fn pristine(id: ProfileId) -> Self {
        Self::new(id, DbmsProfile::pristine(id))
    }

    /// Factory helper: the faulty build of `id`, already loaded with the DSG
    /// database's catalog — what [`crate::baselines::run_baseline`] and the
    /// experiment binaries use to obtain a ready engine connector.
    pub fn connect(id: ProfileId, dsg: &DsgDatabase) -> Self {
        let mut c = Self::faulty(id);
        c.load_catalog(&dsg.db.catalog)
            .expect("engine catalog load is infallible");
        c
    }

    /// Factory helper: like [`connect`](Self::connect) but fault-free.
    pub fn connect_pristine(id: ProfileId, dsg: &DsgDatabase) -> Self {
        let mut c = Self::pristine(id);
        c.load_catalog(&dsg.db.catalog)
            .expect("engine catalog load is infallible");
        c
    }
}

impl From<tqs_engine::ExecOutcome> for SqlOutcome {
    fn from(o: tqs_engine::ExecOutcome) -> Self {
        SqlOutcome {
            result: o.result,
            fired: o.fired,
        }
    }
}

/// Single conversion point from the engine's result type to the connector's.
fn engine_outcome(
    r: Result<tqs_engine::ExecOutcome, tqs_engine::EngineError>,
) -> Result<SqlOutcome, ConnectorError> {
    r.map(SqlOutcome::from)
        .map_err(|e| ConnectorError::new(e.to_string()))
}

impl DbmsConnector for EngineConnector {
    fn info(&self) -> ConnectorInfo {
        ConnectorInfo {
            name: self.db.profile.info.name.clone(),
            version: self.db.profile.info.version.clone(),
            dialect: self.dialect,
        }
    }

    fn load_catalog(&mut self, catalog: &Catalog) -> Result<(), ConnectorError> {
        self.db.catalog = catalog.clone();
        Ok(())
    }

    fn execute_with_hints(
        &mut self,
        stmt: &SelectStmt,
        hints: &HintSet,
    ) -> Result<SqlOutcome, ConnectorError> {
        engine_outcome(self.db.execute_with_hints(stmt, hints))
    }

    fn explain(&mut self, stmt: &SelectStmt) -> Result<String, ConnectorError> {
        self.db
            .explain(stmt)
            .map_err(|e| ConnectorError::new(e.to_string()))
    }

    fn execute(&mut self, stmt: &SelectStmt) -> Result<SqlOutcome, ConnectorError> {
        engine_outcome(self.db.execute(stmt))
    }

    fn execute_sql(&mut self, sql: &str) -> Result<SqlOutcome, ConnectorError> {
        engine_outcome(self.db.execute_sql(sql))
    }
}

/// One entry in a [`RecordingConnector`] trace.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    LoadCatalog {
        tables: usize,
    },
    Statement {
        /// Hint-set label ("default" for plain execution, "sql" for raw text).
        label: String,
        sql: String,
        /// `Ok((row_count, fired))` or the error message.
        outcome: Result<(usize, Vec<FaultKind>), String>,
    },
    Explain {
        sql: String,
        /// `Ok(plan_text)` or the error message.
        outcome: Result<String, String>,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::LoadCatalog { tables } => write!(f, "LOAD\t{tables} tables"),
            TraceEvent::Statement {
                label,
                sql,
                outcome,
            } => match outcome {
                Ok((rows, fired)) => {
                    write!(f, "EXEC\t{label}\t{sql}\t{rows} rows\tfired={fired:?}")
                }
                Err(e) => write!(f, "EXEC\t{label}\t{sql}\tERROR: {e}"),
            },
            TraceEvent::Explain { sql, outcome } => match outcome {
                Ok(plan) => write!(f, "EXPLAIN\t{sql}\t{}", plan.replace('\n', "\\n")),
                Err(e) => write!(f, "EXPLAIN\t{sql}\tERROR: {e}"),
            },
        }
    }
}

/// A transparent proxy connector that records every statement sent to the
/// backend and every outcome that came back — the seed of a replay-from-log
/// backend, and a debugging aid when a bug report needs its full session
/// context.
pub struct RecordingConnector<C: DbmsConnector> {
    inner: C,
    trace: Vec<TraceEvent>,
}

impl<C: DbmsConnector> RecordingConnector<C> {
    pub fn new(inner: C) -> Self {
        RecordingConnector {
            inner,
            trace: Vec::new(),
        }
    }

    /// Everything recorded so far, in submission order.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The trace as a line-oriented text log (one event per line).
    pub fn replay_log(&self) -> String {
        let mut out = String::new();
        for ev in &self.trace {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    pub fn into_inner(self) -> C {
        self.inner
    }

    fn record_statement(
        &mut self,
        label: &str,
        sql: String,
        outcome: &Result<SqlOutcome, ConnectorError>,
    ) {
        self.trace.push(TraceEvent::Statement {
            label: label.to_string(),
            sql,
            outcome: match outcome {
                Ok(o) => Ok((o.result.row_count(), o.fired.clone())),
                Err(e) => Err(e.message.clone()),
            },
        });
    }
}

impl<C: DbmsConnector> DbmsConnector for RecordingConnector<C> {
    fn info(&self) -> ConnectorInfo {
        self.inner.info()
    }

    fn load_catalog(&mut self, catalog: &Catalog) -> Result<(), ConnectorError> {
        self.trace.push(TraceEvent::LoadCatalog {
            tables: catalog.len(),
        });
        self.inner.load_catalog(catalog)
    }

    fn execute_with_hints(
        &mut self,
        stmt: &SelectStmt,
        hints: &HintSet,
    ) -> Result<SqlOutcome, ConnectorError> {
        let out = self.inner.execute_with_hints(stmt, hints);
        self.record_statement(&hints.label, tqs_sql::render::render_stmt(stmt), &out);
        out
    }

    fn explain(&mut self, stmt: &SelectStmt) -> Result<String, ConnectorError> {
        let out = self.inner.explain(stmt);
        self.trace.push(TraceEvent::Explain {
            sql: tqs_sql::render::render_stmt(stmt),
            outcome: match &out {
                Ok(plan) => Ok(plan.clone()),
                Err(e) => Err(e.message.clone()),
            },
        });
        out
    }

    fn execute(&mut self, stmt: &SelectStmt) -> Result<SqlOutcome, ConnectorError> {
        let out = self.inner.execute(stmt);
        self.record_statement("default", tqs_sql::render::render_stmt(stmt), &out);
        out
    }

    fn execute_sql(&mut self, sql: &str) -> Result<SqlOutcome, ConnectorError> {
        let out = self.inner.execute_sql(sql);
        self.record_statement("sql", sql.to_string(), &out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dsg() -> DsgDatabase {
        use crate::dsg::{DsgConfig, WideSource};
        use tqs_storage::widegen::ShoppingConfig;
        DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 60,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: None,
        })
    }

    #[test]
    fn engine_connector_reports_profile_metadata() {
        for id in ProfileId::ALL {
            let conn = EngineConnector::faulty(id);
            let info = conn.info();
            assert_eq!(info.name, id.name());
            assert_eq!(info.dialect, id);
            assert!(!info.version.is_empty());
        }
    }

    #[test]
    fn connect_loads_the_dsg_catalog() {
        let dsg = small_dsg();
        let mut conn = EngineConnector::connect_pristine(ProfileId::MysqlLike, &dsg);
        let table = &dsg.db.metas[0].name;
        let out = conn
            .execute_sql(&format!("SELECT COUNT(*) AS c FROM {table}"))
            .expect("count over a loaded table");
        assert_eq!(out.result.row_count(), 1);
        assert!(out.fired.is_empty());
    }

    #[test]
    fn execute_default_matches_execute_with_empty_hints() {
        let dsg = small_dsg();
        let mut conn = EngineConnector::connect_pristine(ProfileId::TidbLike, &dsg);
        let table = &dsg.db.metas[0].name;
        let col = &dsg.db.metas[0].columns[0];
        let stmt = parse_stmt(&format!("SELECT {table}.{col} FROM {table}")).unwrap();
        let plain = conn.execute(&stmt).unwrap();
        let empty = conn
            .execute_with_hints(&stmt, &HintSet::new("default"))
            .unwrap();
        assert!(plain.result.same_bag(&empty.result));
    }

    #[test]
    fn recording_connector_traces_every_call() {
        let dsg = small_dsg();
        let mut conn = RecordingConnector::new(EngineConnector::pristine(ProfileId::MariadbLike));
        conn.load_catalog(&dsg.db.catalog).unwrap();
        let table = &dsg.db.metas[0].name;
        let col = &dsg.db.metas[0].columns[0];
        let sql = format!("SELECT {table}.{col} FROM {table}");
        conn.execute_sql(&sql).unwrap();
        let stmt = parse_stmt(&sql).unwrap();
        conn.execute(&stmt).unwrap();
        conn.explain(&stmt).unwrap();
        let _ = conn.execute_sql("SELECT x.a FROM missing x");

        let trace = conn.trace();
        assert_eq!(
            trace.len(),
            4 + 1,
            "load + 3 statements + explain: {trace:#?}"
        );
        assert!(matches!(trace[0], TraceEvent::LoadCatalog { tables } if tables > 0));
        assert!(matches!(&trace[3], TraceEvent::Explain { .. }));
        assert!(matches!(
            &trace[4],
            TraceEvent::Statement {
                outcome: Err(_),
                ..
            }
        ));
        let log = conn.replay_log();
        assert_eq!(log.lines().count(), 5);
        assert!(log.contains("EXPLAIN"));
        assert!(log.contains("ERROR"));
    }
}
