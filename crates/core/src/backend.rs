//! Backend abstraction: the boundary between the TQS harness and the DBMS it
//! drives.
//!
//! The paper's claim is that TQS is DBMS-agnostic — the same harness found
//! logic bugs in MySQL, MariaDB, TiDB and X-DB. [`DbmsConnector`] is that
//! boundary in this reproduction: it captures everything the orchestrator,
//! the baselines, the parallel explorer and the bug minimizer need from a
//! database — statement execution (plain, hinted, or raw SQL), `EXPLAIN`,
//! hint-dialect metadata, catalog loading, and fault-fired introspection.
//!
//! Three implementations ship here:
//!
//! * [`EngineConnector`] — the in-process simulated DBMS in one of its four
//!   profile builds, executed row-at-a-time ([`tqs_engine::Database`]),
//!   batch-at-a-time over column vectors ([`tqs_engine::ColumnarDatabase`],
//!   see [`EngineConnector::columnar`]), or out of a disk-backed page store
//!   ([`tqs_engine::DiskDatabase`], see [`EngineConnector::disk`]). The three
//!   executors carry pairwise-disjoint fault complements, which is what makes
//!   cross-engine differential testing
//!   ([`crate::oracle::DifferentialOracle`]) meaningful.
//! * [`RecordingConnector`] — a transparent proxy over any connector that
//!   logs every statement and its full outcome.
//! * [`ReplayConnector`] — serves recorded outcomes back from such a trace,
//!   turning any recorded bug-hunt session into a deterministic regression
//!   suite that runs without the original backend.
//!
//! New backends (a SQLite shim, a networked DBMS) implement the trait without
//! touching the rest of tqs-core; the README's "Writing a new connector"
//! section walks through it, and [`crate::conformance`] provides the shared
//! behavioral test suite every implementation should pass.

use std::collections::HashMap;
use std::fmt;

use tqs_engine::{ColumnarDatabase, Database, DbmsProfile, DiskDatabase, FaultKind, ProfileId};
use tqs_sql::ast::{DmlStmt, SelectStmt};
use tqs_sql::hints::HintSet;
use tqs_sql::parser::{parse_dml, parse_stmt};
use tqs_sql::render::render_dml;
use tqs_sql::value::Value;
use tqs_storage::{Catalog, ResultSet, Row};
use tqs_telemetry::QueryProfile;

use crate::dsg::DsgDatabase;

/// Error surfaced by a connector. Deliberately stringly-typed: backends have
/// wildly different error taxonomies, and the harness only ever needs to know
/// that a statement did not produce a result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectorError {
    pub message: String,
}

impl ConnectorError {
    pub fn new(message: impl Into<String>) -> Self {
        ConnectorError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConnectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "connector error: {}", self.message)
    }
}

impl std::error::Error for ConnectorError {}

/// Result of executing one (possibly transformed) statement.
#[derive(Debug, Clone)]
pub struct SqlOutcome {
    pub result: ResultSet,
    /// Fault provenance: which latent faults fired while producing `result`.
    /// Simulated engines report this for the Table 4 root-cause analysis;
    /// connectors to real DBMSs leave it empty (real systems don't confess).
    pub fired: Vec<FaultKind>,
}

/// Static metadata about the backend a connector drives.
#[derive(Debug, Clone)]
pub struct ConnectorInfo {
    /// Display name of the build, e.g. "MySQL-like".
    pub name: String,
    /// Version string of the build.
    pub version: String,
    /// Hint dialect the backend speaks: which profile's hint sets / session
    /// switches `hint_sets_for` should generate when transforming queries.
    pub dialect: ProfileId,
    /// Whether this build carries seeded latent faults. Fault-aware oracles
    /// (the `PlanSpaceOracle`) use this to decide which optimizer fault
    /// complement to enumerate under; connectors to real DBMSs report false.
    pub seeded_faults: bool,
}

/// Everything the TQS harness needs from a DBMS.
///
/// Required methods are [`info`](DbmsConnector::info),
/// [`load_catalog`](DbmsConnector::load_catalog),
/// [`execute_with_hints`](DbmsConnector::execute_with_hints) and
/// [`explain`](DbmsConnector::explain); plain and raw-SQL execution have
/// default implementations in terms of those.
pub trait DbmsConnector {
    /// Name, version and hint dialect of the backend build.
    fn info(&self) -> ConnectorInfo;

    /// Load (or replace) the schema and data the harness will test against.
    fn load_catalog(&mut self, catalog: &Catalog) -> Result<(), ConnectorError>;

    /// Execute a transformed query: apply the hint set's session switches,
    /// splice its hints into the statement, execute, restore the session.
    fn execute_with_hints(
        &mut self,
        stmt: &SelectStmt,
        hints: &HintSet,
    ) -> Result<SqlOutcome, ConnectorError>;

    /// `EXPLAIN`: a textual rendering of the plan the backend would choose.
    fn explain(&mut self, stmt: &SelectStmt) -> Result<String, ConnectorError>;

    /// Execute a statement with the default (un-hinted) plan.
    fn execute(&mut self, stmt: &SelectStmt) -> Result<SqlOutcome, ConnectorError> {
        self.execute_with_hints(stmt, &HintSet::new("default"))
    }

    /// Execute raw SQL text (parse, then execute).
    fn execute_sql(&mut self, sql: &str) -> Result<SqlOutcome, ConnectorError> {
        let stmt = parse_stmt(sql).map_err(|e| ConnectorError::new(e.to_string()))?;
        self.execute(&stmt)
    }

    /// Execute one DML or transaction-control statement (INSERT / UPDATE /
    /// DELETE, BEGIN / COMMIT / ROLLBACK). The outcome's result set is a
    /// single `rows_affected` row, so mutation sessions flow through the
    /// same recording/replay machinery as queries. Backends without
    /// mutation support return an error, which drivers count as a skip —
    /// exactly like any other execution failure.
    fn execute_dml(&mut self, stmt: &DmlStmt) -> Result<SqlOutcome, ConnectorError> {
        let _ = stmt;
        Err(ConnectorError::new("backend does not support DML"))
    }

    /// Execute raw DML text (parse, then execute).
    fn execute_dml_sql(&mut self, sql: &str) -> Result<SqlOutcome, ConnectorError> {
        let stmt = parse_dml(sql).map_err(|e| ConnectorError::new(e.to_string()))?;
        self.execute_dml(&stmt)
    }

    /// Operator-level profile (rows in/out, nanoseconds per operator) of the
    /// most recently executed statement — the runtime companion to
    /// [`explain`](DbmsConnector::explain). `None` when the backend doesn't
    /// collect profiles, telemetry is disabled, or nothing ran yet.
    fn query_profile(&self) -> Option<QueryProfile> {
        None
    }
}

/// Shape a [`tqs_engine::DmlOutcome`] as a one-row `rows_affected` result
/// set, keeping the fault provenance — the uniform [`SqlOutcome`] form every
/// trace consumer already understands.
fn dml_sql_outcome(out: &tqs_engine::DmlOutcome) -> SqlOutcome {
    let mut result = ResultSet::new(vec!["rows_affected".to_string()]);
    result
        .rows
        .push(Row::new(vec![Value::Int(out.rows_affected as i64)]));
    SqlOutcome {
        result,
        fired: out.fired.clone(),
    }
}

/// The three executors an [`EngineConnector`] can host.
enum EngineBackend {
    Row(Database),
    Columnar(ColumnarDatabase),
    // Boxed: the disk backend carries a buffer pool and is ~2x the size of
    // the other variants; keep the enum at in-memory-engine size.
    Disk(Box<DiskDatabase>),
}

/// The first connector: the in-process simulated DBMS of [`tqs_engine`],
/// hosting the row, columnar or disk executor.
pub struct EngineConnector {
    backend: EngineBackend,
    dialect: ProfileId,
    /// Operator profile of the last executed statement (telemetry on only).
    last_profile: Option<QueryProfile>,
}

impl EngineConnector {
    /// Connector over an explicit row-engine build (profile + faults).
    pub fn new(dialect: ProfileId, profile: DbmsProfile) -> Self {
        EngineConnector {
            backend: EngineBackend::Row(Database::new(Catalog::new(), profile)),
            dialect,
            last_profile: None,
        }
    }

    /// The faulty build of `id`, with its full Table 4 fault complement.
    pub fn faulty(id: ProfileId) -> Self {
        Self::new(id, DbmsProfile::build(id))
    }

    /// A fault-free build of `id` (soundness tests, ablation baselines).
    pub fn pristine(id: ProfileId) -> Self {
        Self::new(id, DbmsProfile::pristine(id))
    }

    /// The second engine: the columnar (batch-at-a-time) build of `id`,
    /// seeded with the columnar fault complement
    /// ([`tqs_engine::FaultKind::COLUMNAR`]).
    pub fn columnar(id: ProfileId) -> Self {
        EngineConnector {
            backend: EngineBackend::Columnar(ColumnarDatabase::new(
                Catalog::new(),
                DbmsProfile::columnar(id),
            )),
            dialect: id,
            last_profile: None,
        }
    }

    /// A fault-free columnar build of `id` — the reference engine for
    /// cross-engine differential testing.
    pub fn columnar_pristine(id: ProfileId) -> Self {
        EngineConnector {
            backend: EngineBackend::Columnar(ColumnarDatabase::new(
                Catalog::new(),
                DbmsProfile::columnar_pristine(id),
            )),
            dialect: id,
            last_profile: None,
        }
    }

    /// Factory helper: the faulty build of `id`, already loaded with the DSG
    /// database's catalog — what [`crate::baselines::run_baseline`] and the
    /// experiment binaries use to obtain a ready engine connector.
    pub fn connect(id: ProfileId, dsg: &DsgDatabase) -> Self {
        Self::faulty(id).loaded(dsg)
    }

    /// Factory helper: like [`connect`](Self::connect) but fault-free.
    pub fn connect_pristine(id: ProfileId, dsg: &DsgDatabase) -> Self {
        Self::pristine(id).loaded(dsg)
    }

    /// Factory helper: the faulty columnar build, catalog loaded.
    pub fn connect_columnar(id: ProfileId, dsg: &DsgDatabase) -> Self {
        Self::columnar(id).loaded(dsg)
    }

    /// Factory helper: the fault-free columnar build, catalog loaded.
    pub fn connect_columnar_pristine(id: ProfileId, dsg: &DsgDatabase) -> Self {
        Self::columnar_pristine(id).loaded(dsg)
    }

    /// The third engine: the disk-backed build of `id`, scanning its tables
    /// out of a `tqs-pager` page store (buffer pool, WAL, B+trees) and seeded
    /// with the storage fault complement ([`tqs_engine::FaultKind::DISK`]).
    pub fn disk(id: ProfileId) -> Self {
        EngineConnector {
            backend: EngineBackend::Disk(Box::new(
                DiskDatabase::new(Catalog::new(), DbmsProfile::disk(id))
                    .expect("disk store creation in the temp dir"),
            )),
            dialect: id,
            last_profile: None,
        }
    }

    /// A fault-free disk build of `id` — the third member of three-way
    /// differential panels.
    pub fn disk_pristine(id: ProfileId) -> Self {
        EngineConnector {
            backend: EngineBackend::Disk(Box::new(
                DiskDatabase::new(Catalog::new(), DbmsProfile::disk_pristine(id))
                    .expect("disk store creation in the temp dir"),
            )),
            dialect: id,
            last_profile: None,
        }
    }

    /// Factory helper: the faulty disk build, catalog loaded.
    pub fn connect_disk(id: ProfileId, dsg: &DsgDatabase) -> Self {
        Self::disk(id).loaded(dsg)
    }

    /// Factory helper: the fault-free disk build, catalog loaded.
    pub fn connect_disk_pristine(id: ProfileId, dsg: &DsgDatabase) -> Self {
        Self::disk_pristine(id).loaded(dsg)
    }

    fn loaded(mut self, dsg: &DsgDatabase) -> Self {
        self.load_catalog(&dsg.db.catalog)
            .expect("engine catalog load");
        self
    }

    fn profile(&self) -> &DbmsProfile {
        match &self.backend {
            EngineBackend::Row(db) => &db.profile,
            EngineBackend::Columnar(db) => db.profile(),
            EngineBackend::Disk(db) => db.profile(),
        }
    }

    /// Convert an engine outcome, stashing its operator profile so
    /// [`DbmsConnector::query_profile`] can serve it after the call.
    fn finish(
        &mut self,
        r: Result<tqs_engine::ExecOutcome, tqs_engine::EngineError>,
    ) -> Result<SqlOutcome, ConnectorError> {
        match r {
            Ok(o) => {
                self.last_profile = o.profile;
                Ok(SqlOutcome {
                    result: o.result,
                    fired: o.fired,
                })
            }
            Err(e) => {
                self.last_profile = None;
                Err(ConnectorError::new(e.to_string()))
            }
        }
    }
}

impl From<tqs_engine::ExecOutcome> for SqlOutcome {
    fn from(o: tqs_engine::ExecOutcome) -> Self {
        SqlOutcome {
            result: o.result,
            fired: o.fired,
        }
    }
}

impl DbmsConnector for EngineConnector {
    fn info(&self) -> ConnectorInfo {
        ConnectorInfo {
            name: self.profile().info.name.clone(),
            version: self.profile().info.version.clone(),
            dialect: self.dialect,
            seeded_faults: !self.profile().faults.is_empty(),
        }
    }

    fn load_catalog(&mut self, catalog: &Catalog) -> Result<(), ConnectorError> {
        match &mut self.backend {
            EngineBackend::Row(db) => db.catalog = catalog.clone(),
            EngineBackend::Columnar(db) => db.set_catalog(catalog.clone()),
            EngineBackend::Disk(db) => db
                .load_catalog(catalog.clone())
                .map_err(|e| ConnectorError::new(e.to_string()))?,
        }
        Ok(())
    }

    fn execute_with_hints(
        &mut self,
        stmt: &SelectStmt,
        hints: &HintSet,
    ) -> Result<SqlOutcome, ConnectorError> {
        let r = match &mut self.backend {
            EngineBackend::Row(db) => db.execute_with_hints(stmt, hints),
            EngineBackend::Columnar(db) => db.execute_with_hints(stmt, hints),
            EngineBackend::Disk(db) => db.execute_with_hints(stmt, hints),
        };
        self.finish(r)
    }

    fn explain(&mut self, stmt: &SelectStmt) -> Result<String, ConnectorError> {
        match &self.backend {
            EngineBackend::Row(db) => db.explain(stmt),
            EngineBackend::Columnar(db) => db.explain(stmt),
            EngineBackend::Disk(db) => db.explain(stmt),
        }
        .map_err(|e| ConnectorError::new(e.to_string()))
    }

    fn execute(&mut self, stmt: &SelectStmt) -> Result<SqlOutcome, ConnectorError> {
        let r = match &mut self.backend {
            EngineBackend::Row(db) => db.execute(stmt),
            EngineBackend::Columnar(db) => db.execute(stmt),
            EngineBackend::Disk(db) => db.execute(stmt),
        };
        self.finish(r)
    }

    fn execute_sql(&mut self, sql: &str) -> Result<SqlOutcome, ConnectorError> {
        let r = match &mut self.backend {
            EngineBackend::Row(db) => db.execute_sql(sql),
            EngineBackend::Columnar(db) => db.execute_sql(sql),
            EngineBackend::Disk(db) => db.execute_sql(sql),
        };
        self.finish(r)
    }

    fn execute_dml(&mut self, stmt: &DmlStmt) -> Result<SqlOutcome, ConnectorError> {
        let r = match &mut self.backend {
            EngineBackend::Row(db) => db.execute_dml(stmt),
            EngineBackend::Columnar(db) => db.execute_dml(stmt),
            EngineBackend::Disk(db) => db.execute_dml(stmt),
        };
        match r {
            Ok(out) => Ok(dml_sql_outcome(&out)),
            Err(e) => Err(ConnectorError::new(e.to_string())),
        }
    }

    fn query_profile(&self) -> Option<QueryProfile> {
        self.last_profile.clone()
    }
}

/// One entry in a [`RecordingConnector`] trace. Statement entries keep the
/// *full* result set (not just the row count) so a [`ReplayConnector`] can
/// serve the recorded session verbatim.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    LoadCatalog {
        tables: usize,
    },
    Statement {
        /// Hint-set label ("default" for plain execution, "sql" for raw text).
        label: String,
        sql: String,
        /// The recorded outcome, or the error message.
        outcome: Result<SqlOutcome, String>,
    },
    Explain {
        sql: String,
        /// `Ok(plan_text)` or the error message.
        outcome: Result<String, String>,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::LoadCatalog { tables } => write!(f, "LOAD\t{tables} tables"),
            TraceEvent::Statement {
                label,
                sql,
                outcome,
            } => match outcome {
                Ok(out) => write!(
                    f,
                    "EXEC\t{label}\t{sql}\t{} rows\tfired={:?}",
                    out.result.row_count(),
                    out.fired
                ),
                Err(e) => write!(f, "EXEC\t{label}\t{sql}\tERROR: {e}"),
            },
            TraceEvent::Explain { sql, outcome } => match outcome {
                Ok(plan) => write!(f, "EXPLAIN\t{sql}\t{}", plan.replace('\n', "\\n")),
                Err(e) => write!(f, "EXPLAIN\t{sql}\tERROR: {e}"),
            },
        }
    }
}

/// A transparent proxy connector that records every statement sent to the
/// backend and every outcome that came back — the seed of a replay-from-log
/// backend, and a debugging aid when a bug report needs its full session
/// context.
pub struct RecordingConnector<C: DbmsConnector> {
    inner: C,
    trace: Vec<TraceEvent>,
}

impl<C: DbmsConnector> RecordingConnector<C> {
    pub fn new(inner: C) -> Self {
        RecordingConnector {
            inner,
            trace: Vec::new(),
        }
    }

    /// Everything recorded so far, in submission order.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Drain the recorded trace, leaving the recorder empty. Long-running
    /// drivers (a campaign worker recording a witness per statement) call
    /// this between statements so the trace holds exactly one statement's
    /// events instead of growing for the whole hunt.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    /// The trace as a line-oriented text log (one event per line).
    pub fn replay_log(&self) -> String {
        let mut out = String::new();
        for ev in &self.trace {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    pub fn into_inner(self) -> C {
        self.inner
    }

    /// A [`ReplayConnector`] serving this trace (recorded so far).
    pub fn replay(&self) -> ReplayConnector {
        ReplayConnector::from_trace(self.inner.info(), self.trace.clone())
    }

    fn record_statement(
        &mut self,
        label: &str,
        sql: String,
        outcome: &Result<SqlOutcome, ConnectorError>,
    ) {
        self.trace.push(TraceEvent::Statement {
            label: label.to_string(),
            sql,
            outcome: match outcome {
                Ok(o) => Ok(o.clone()),
                Err(e) => Err(e.message.clone()),
            },
        });
    }
}

impl<C: DbmsConnector> DbmsConnector for RecordingConnector<C> {
    fn info(&self) -> ConnectorInfo {
        self.inner.info()
    }

    fn load_catalog(&mut self, catalog: &Catalog) -> Result<(), ConnectorError> {
        self.trace.push(TraceEvent::LoadCatalog {
            tables: catalog.len(),
        });
        self.inner.load_catalog(catalog)
    }

    fn execute_with_hints(
        &mut self,
        stmt: &SelectStmt,
        hints: &HintSet,
    ) -> Result<SqlOutcome, ConnectorError> {
        let out = self.inner.execute_with_hints(stmt, hints);
        self.record_statement(&hints.label, tqs_sql::render::render_stmt(stmt), &out);
        out
    }

    fn explain(&mut self, stmt: &SelectStmt) -> Result<String, ConnectorError> {
        let out = self.inner.explain(stmt);
        self.trace.push(TraceEvent::Explain {
            sql: tqs_sql::render::render_stmt(stmt),
            outcome: match &out {
                Ok(plan) => Ok(plan.clone()),
                Err(e) => Err(e.message.clone()),
            },
        });
        out
    }

    fn execute(&mut self, stmt: &SelectStmt) -> Result<SqlOutcome, ConnectorError> {
        let out = self.inner.execute(stmt);
        self.record_statement("default", tqs_sql::render::render_stmt(stmt), &out);
        out
    }

    fn execute_sql(&mut self, sql: &str) -> Result<SqlOutcome, ConnectorError> {
        let out = self.inner.execute_sql(sql);
        self.record_statement("sql", sql.to_string(), &out);
        out
    }

    fn execute_dml(&mut self, stmt: &DmlStmt) -> Result<SqlOutcome, ConnectorError> {
        let out = self.inner.execute_dml(stmt);
        self.record_statement("dml", render_dml(stmt), &out);
        out
    }

    fn execute_dml_sql(&mut self, sql: &str) -> Result<SqlOutcome, ConnectorError> {
        let out = self.inner.execute_dml_sql(sql);
        self.record_statement("dml", sql.to_string(), &out);
        out
    }

    fn query_profile(&self) -> Option<QueryProfile> {
        self.inner.query_profile()
    }
}

/// The replay-from-log backend: serves outcomes recorded by a
/// [`RecordingConnector`] without the original engine. Statements are keyed
/// by `(hint-set label, rendered SQL)` and served in recording order; a key
/// whose queue is exhausted keeps returning its last recorded outcome (the
/// simulated engines are deterministic, so repeats agree). A statement that
/// was never recorded surfaces as a [`ConnectorError`] — which a driver
/// counts as a skip, exactly like any other backend failure.
///
/// Because query generation is seeded, replaying a recorded bug-hunt session
/// with the same session configuration reproduces its statements — and
/// therefore its verdicts — exactly, turning any recorded hunt into a
/// deterministic regression suite.
pub struct ReplayConnector {
    info: ConnectorInfo,
    statements: HashMap<(String, String), std::collections::VecDeque<Result<SqlOutcome, String>>>,
    explains: HashMap<String, std::collections::VecDeque<Result<String, String>>>,
}

impl ReplayConnector {
    /// Build a replay backend from a recorded trace. `info` is what the
    /// replayed backend will report (a [`RecordingConnector`] passes its
    /// inner connector's info through [`RecordingConnector::replay`]).
    pub fn from_trace(info: ConnectorInfo, trace: Vec<TraceEvent>) -> Self {
        let mut statements: HashMap<_, std::collections::VecDeque<_>> = HashMap::new();
        let mut explains: HashMap<_, std::collections::VecDeque<_>> = HashMap::new();
        for ev in trace {
            match ev {
                TraceEvent::LoadCatalog { .. } => {}
                TraceEvent::Statement {
                    label,
                    sql,
                    outcome,
                } => {
                    statements
                        .entry((label, sql))
                        .or_default()
                        .push_back(outcome);
                }
                TraceEvent::Explain { sql, outcome } => {
                    explains.entry(sql).or_default().push_back(outcome);
                }
            }
        }
        ReplayConnector {
            info,
            statements,
            explains,
        }
    }

    /// How many distinct (label, sql) statement keys the trace recorded.
    pub fn statement_count(&self) -> usize {
        self.statements.len()
    }

    /// Does the trace hold an outcome for `(label, sql)`? Re-verification
    /// uses this to tell a *stale* witness (the failing statement was never
    /// recorded, so the trace cannot testify) from a witness that replays
    /// but no longer demonstrates the divergence.
    pub fn contains(&self, label: &str, sql: &str) -> bool {
        self.statements
            .contains_key(&(label.to_string(), sql.to_string()))
    }

    /// Pop the next recorded outcome; an exhausted queue keeps serving its
    /// last entry (the simulated engines are deterministic, so repeats of a
    /// statement agree with the recording).
    fn drain<T: Clone>(
        queue: &mut std::collections::VecDeque<Result<T, String>>,
    ) -> Result<T, ConnectorError> {
        let outcome = if queue.len() > 1 {
            queue.pop_front().expect("non-empty queue")
        } else {
            queue.front().cloned().expect("non-empty queue")
        };
        outcome.map_err(ConnectorError::new)
    }

    fn serve(&mut self, label: &str, sql: String) -> Result<SqlOutcome, ConnectorError> {
        let key = (label.to_string(), sql);
        let Some(queue) = self.statements.get_mut(&key) else {
            return Err(ConnectorError::new(format!(
                "replay miss: `{}` [{}] was not recorded",
                key.1, key.0
            )));
        };
        Self::drain(queue)
    }
}

impl DbmsConnector for ReplayConnector {
    fn info(&self) -> ConnectorInfo {
        self.info.clone()
    }

    fn load_catalog(&mut self, _catalog: &Catalog) -> Result<(), ConnectorError> {
        // The data lives in the recorded outcomes; any catalog is accepted so
        // the standard session assembly works unchanged.
        Ok(())
    }

    fn execute_with_hints(
        &mut self,
        stmt: &SelectStmt,
        hints: &HintSet,
    ) -> Result<SqlOutcome, ConnectorError> {
        self.serve(&hints.label, tqs_sql::render::render_stmt(stmt))
    }

    fn explain(&mut self, stmt: &SelectStmt) -> Result<String, ConnectorError> {
        let sql = tqs_sql::render::render_stmt(stmt);
        let Some(queue) = self.explains.get_mut(&sql) else {
            return Err(ConnectorError::new(format!(
                "replay miss: EXPLAIN `{sql}` was not recorded"
            )));
        };
        Self::drain(queue)
    }

    fn execute(&mut self, stmt: &SelectStmt) -> Result<SqlOutcome, ConnectorError> {
        self.serve("default", tqs_sql::render::render_stmt(stmt))
    }

    fn execute_sql(&mut self, sql: &str) -> Result<SqlOutcome, ConnectorError> {
        // Raw text is recorded verbatim under the "sql" label; fall back to
        // the parsed rendering in case the recording side executed the
        // normalized statement instead.
        match self.serve("sql", sql.to_string()) {
            Ok(out) => Ok(out),
            Err(_) => {
                let stmt = parse_stmt(sql).map_err(|e| ConnectorError::new(e.to_string()))?;
                self.execute(&stmt)
            }
        }
    }

    fn execute_dml(&mut self, stmt: &DmlStmt) -> Result<SqlOutcome, ConnectorError> {
        self.serve("dml", render_dml(stmt))
    }

    fn execute_dml_sql(&mut self, sql: &str) -> Result<SqlOutcome, ConnectorError> {
        // Raw DML text is recorded under its canonical rendering; try the
        // verbatim text first, then the normalized form.
        match self.serve("dml", sql.to_string()) {
            Ok(out) => Ok(out),
            Err(miss) => {
                let stmt = parse_dml(sql).map_err(|_| miss)?;
                self.execute_dml(&stmt)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dsg() -> DsgDatabase {
        use crate::dsg::{DsgConfig, WideSource};
        use tqs_storage::widegen::ShoppingConfig;
        DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 60,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: None,
        })
    }

    #[test]
    fn engine_connector_reports_profile_metadata() {
        for id in ProfileId::ALL {
            let conn = EngineConnector::faulty(id);
            let info = conn.info();
            assert_eq!(info.name, id.name());
            assert_eq!(info.dialect, id);
            assert!(!info.version.is_empty());
        }
    }

    #[test]
    fn connect_loads_the_dsg_catalog() {
        let dsg = small_dsg();
        let mut conn = EngineConnector::connect_pristine(ProfileId::MysqlLike, &dsg);
        let table = &dsg.db.metas[0].name;
        let out = conn
            .execute_sql(&format!("SELECT COUNT(*) AS c FROM {table}"))
            .expect("count over a loaded table");
        assert_eq!(out.result.row_count(), 1);
        assert!(out.fired.is_empty());
    }

    #[test]
    fn execute_default_matches_execute_with_empty_hints() {
        let dsg = small_dsg();
        let mut conn = EngineConnector::connect_pristine(ProfileId::TidbLike, &dsg);
        let table = &dsg.db.metas[0].name;
        let col = &dsg.db.metas[0].columns[0];
        let stmt = parse_stmt(&format!("SELECT {table}.{col} FROM {table}")).unwrap();
        let plain = conn.execute(&stmt).unwrap();
        let empty = conn
            .execute_with_hints(&stmt, &HintSet::new("default"))
            .unwrap();
        assert!(plain.result.same_bag(&empty.result));
    }

    #[test]
    fn recording_connector_traces_every_call() {
        let dsg = small_dsg();
        let mut conn = RecordingConnector::new(EngineConnector::pristine(ProfileId::MariadbLike));
        conn.load_catalog(&dsg.db.catalog).unwrap();
        let table = &dsg.db.metas[0].name;
        let col = &dsg.db.metas[0].columns[0];
        let sql = format!("SELECT {table}.{col} FROM {table}");
        conn.execute_sql(&sql).unwrap();
        let stmt = parse_stmt(&sql).unwrap();
        conn.execute(&stmt).unwrap();
        conn.explain(&stmt).unwrap();
        let _ = conn.execute_sql("SELECT x.a FROM missing x");

        let trace = conn.trace();
        assert_eq!(
            trace.len(),
            4 + 1,
            "load + 3 statements + explain: {trace:#?}"
        );
        assert!(matches!(trace[0], TraceEvent::LoadCatalog { tables } if tables > 0));
        assert!(matches!(&trace[3], TraceEvent::Explain { .. }));
        assert!(matches!(
            &trace[4],
            TraceEvent::Statement {
                outcome: Err(_),
                ..
            }
        ));
        let log = conn.replay_log();
        assert_eq!(log.lines().count(), 5);
        assert!(log.contains("EXPLAIN"));
        assert!(log.contains("ERROR"));
    }

    #[test]
    fn columnar_connector_reports_columnar_metadata() {
        for id in ProfileId::ALL {
            let conn = EngineConnector::columnar(id);
            let info = conn.info();
            assert!(info.name.contains("[columnar]"), "{}", info.name);
            assert_eq!(info.dialect, id);
        }
    }

    #[test]
    fn columnar_connector_agrees_with_row_connector_when_pristine() {
        let dsg = small_dsg();
        let mut row = EngineConnector::connect_pristine(ProfileId::MysqlLike, &dsg);
        let mut col = EngineConnector::connect_columnar_pristine(ProfileId::MysqlLike, &dsg);
        let table = &dsg.db.metas[0].name;
        let cols = &dsg.db.metas[0].columns;
        let sql = format!("SELECT {table}.{} FROM {table}", cols[0]);
        let a = row.execute_sql(&sql).unwrap();
        let b = col.execute_sql(&sql).unwrap();
        assert!(a.result.same_bag(&b.result));
        assert!(col
            .explain(&parse_stmt(&sql).unwrap())
            .unwrap()
            .contains("columnar"));
    }

    #[test]
    fn disk_connector_reports_disk_metadata() {
        for id in ProfileId::ALL {
            let conn = EngineConnector::disk(id);
            let info = conn.info();
            assert!(info.name.contains("[disk]"), "{}", info.name);
            assert!(info.version.ends_with("-disk"), "{}", info.version);
            assert_eq!(info.dialect, id);
        }
    }

    #[test]
    fn disk_connector_agrees_with_row_connector_when_pristine() {
        let dsg = small_dsg();
        let mut row = EngineConnector::connect_pristine(ProfileId::MysqlLike, &dsg);
        let mut disk = EngineConnector::connect_disk_pristine(ProfileId::MysqlLike, &dsg);
        let table = &dsg.db.metas[0].name;
        let cols = &dsg.db.metas[0].columns;
        let sql = format!("SELECT {table}.{} FROM {table}", cols[0]);
        let a = row.execute_sql(&sql).unwrap();
        let b = disk.execute_sql(&sql).unwrap();
        assert!(a.result.same_bag(&b.result));
        assert!(disk
            .explain(&parse_stmt(&sql).unwrap())
            .unwrap()
            .contains("executor: disk"));
    }

    #[test]
    fn replay_connector_serves_recorded_outcomes_deterministically() {
        let dsg = small_dsg();
        let mut rec = RecordingConnector::new(EngineConnector::connect(ProfileId::XdbLike, &dsg));
        let table = &dsg.db.metas[0].name;
        let col = &dsg.db.metas[0].columns[0];
        let stmt = parse_stmt(&format!("SELECT {table}.{col} FROM {table}")).unwrap();
        let hs = HintSet::new("hash-join");
        let live_plain = rec.execute(&stmt).unwrap();
        let live_hinted = rec.execute_with_hints(&stmt, &hs).unwrap();
        let live_explain = rec.explain(&stmt).unwrap();
        assert!(rec.execute_sql("SELECT x.a FROM missing x").is_err());

        let mut replay = rec.replay();
        assert_eq!(replay.info().name, "X-DB-like");
        assert!(replay.statement_count() >= 3);
        replay.load_catalog(&dsg.db.catalog).unwrap();
        // Recorded statements come back with full, identical result sets —
        // repeatedly, since the queue keeps serving its last outcome.
        for _ in 0..2 {
            let plain = replay.execute(&stmt).unwrap();
            assert!(plain.result.same_bag(&live_plain.result));
            assert_eq!(plain.fired, live_plain.fired);
        }
        let hinted = replay.execute_with_hints(&stmt, &hs).unwrap();
        assert!(hinted.result.same_bag(&live_hinted.result));
        assert_eq!(replay.explain(&stmt).unwrap(), live_explain);
        // Recorded errors replay as errors; unrecorded statements miss.
        assert!(replay.execute_sql("SELECT x.a FROM missing x").is_err());
        let other = parse_stmt(&format!("SELECT {table}.{col} FROM {table} WHERE 1 = 2"));
        assert!(replay.execute(&other.unwrap()).is_err(), "unrecorded stmt");
    }
}
