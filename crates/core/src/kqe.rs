//! KQE — Knowledge-guided Query space Exploration (§4).
//!
//! Wraps the embedding-based graph index `GI` and turns it into a
//! [`WalkScorer`] for the DSG random walk: the transition probability of
//! extending the current query graph with an edge is `1 / (coverage + 1)`
//! (Equation 3), so structurally novel extensions are preferred.

use crate::dsg::WalkScorer;
use tqs_graph::embedding::embed_graph;
use tqs_graph::plangraph::{PlanIterativeGraph, SchemaDesc};
use tqs_graph::{GraphIndex, LabeledGraph};

/// KQE configuration.
#[derive(Debug, Clone)]
pub struct KqeConfig {
    /// k for the kNN coverage score (Equation 2).
    pub knn_k: usize,
    /// WL refinement rounds for embeddings.
    pub wl_rounds: usize,
}

impl Default for KqeConfig {
    fn default() -> Self {
        KqeConfig {
            knn_k: 5,
            wl_rounds: 2,
        }
    }
}

/// The KQE state: the plan-iterative graph plus the explored-query index.
#[derive(Debug, Clone)]
pub struct Kqe {
    pub cfg: KqeConfig,
    pub plan_graph: PlanIterativeGraph,
    pub index: GraphIndex,
}

impl Kqe {
    pub fn new(schema: SchemaDesc, cfg: KqeConfig) -> Self {
        Kqe {
            cfg,
            plan_graph: PlanIterativeGraph::build(schema),
            index: GraphIndex::new(),
        }
    }

    /// Coverage score of a query graph w.r.t. the explored history (Eq. 2).
    pub fn coverage(&self, g: &LabeledGraph) -> f32 {
        let e = embed_graph(g, self.cfg.wl_rounds);
        self.index.coverage(&e, self.cfg.knn_k)
    }

    /// Transition weight of Eq. 3.
    pub fn transition_weight(&self, g: &LabeledGraph) -> f64 {
        1.0 / (self.coverage(g) as f64 + 1.0)
    }

    /// Record an explored query graph in `GI` (Algorithm 1, line 9).
    pub fn record(&mut self, g: &LabeledGraph) {
        let e = embed_graph(g, self.cfg.wl_rounds);
        self.index.insert(g, e);
    }

    /// Number of distinct isomorphic sets explored so far — the diversity
    /// metric plotted in Figure 8(a–d).
    pub fn diversity(&self) -> usize {
        self.index.isomorphic_set_count()
    }

    /// Has an isomorphic query already been explored?
    pub fn seen_isomorphic(&self, g: &LabeledGraph) -> bool {
        self.index.contains_isomorphic(g)
    }
}

/// Scorer adapter handed to the DSG random walk.
pub struct KqeScorer<'a> {
    pub kqe: &'a Kqe,
}

impl WalkScorer for KqeScorer<'_> {
    fn weight(&self, candidate: &LabeledGraph) -> f64 {
        self.kqe.transition_weight(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> SchemaDesc {
        SchemaDesc {
            tables: vec!["T1".into(), "T2".into()],
            columns: vec![
                ("T1".into(), "a".into(), "int".into(), true),
                ("T2".into(), "a".into(), "int".into(), true),
                ("T2".into(), "b".into(), "varchar".into(), false),
            ],
            join_edges: vec![("T1".into(), "T2".into(), "a".into())],
        }
    }

    fn chain(n: usize, label: &str) -> LabeledGraph {
        let mut g = LabeledGraph::default();
        let ids: Vec<usize> = (0..n).map(|_| g.add_node("table")).collect();
        for i in 1..n {
            g.add_edge(ids[i - 1], ids[i], label);
        }
        g
    }

    #[test]
    fn coverage_starts_at_zero_and_grows() {
        let mut kqe = Kqe::new(schema(), KqeConfig::default());
        let g = chain(2, "inner join");
        assert_eq!(kqe.coverage(&g), 0.0);
        assert!((kqe.transition_weight(&g) - 1.0).abs() < 1e-6);
        kqe.record(&g);
        assert!(kqe.coverage(&g) > 0.9);
        assert!(kqe.transition_weight(&g) < 0.6);
        assert_eq!(kqe.diversity(), 1);
        assert!(kqe.seen_isomorphic(&chain(2, "inner join")));
        assert!(!kqe.seen_isomorphic(&chain(2, "anti join")));
    }

    #[test]
    fn novel_structures_keep_higher_weights() {
        let mut kqe = Kqe::new(schema(), KqeConfig::default());
        let seen = chain(2, "inner join");
        for _ in 0..3 {
            kqe.record(&seen);
        }
        let novel = chain(3, "anti join");
        assert!(
            kqe.transition_weight(&novel) > kqe.transition_weight(&seen),
            "unexplored structure must be preferred"
        );
        let scorer = KqeScorer { kqe: &kqe };
        assert!(scorer.weight(&novel) > scorer.weight(&seen));
    }

    #[test]
    fn plan_graph_is_built_from_schema() {
        let kqe = Kqe::new(schema(), KqeConfig::default());
        assert_eq!(kqe.plan_graph.table_nodes.len(), 2);
        assert_eq!(kqe.plan_graph.join_edge_count(), 7);
    }
}
