//! Hint-set generation (`HintGen`, Algorithm 1 line 11).
//!
//! For every generated logic query, TQS produces several *transformed
//! queries*: the same statement steered onto different physical plans through
//! optimizer hints and `optimizer_switch` settings, in the dialect of the
//! target DBMS profile.

use tqs_engine::ProfileId;
use tqs_sql::ast::SelectStmt;
use tqs_sql::hints::{Hint, HintSet, SemiJoinStrategy, SessionSwitch, SwitchName};

/// Build the hint sets used to transform `stmt` against `profile`.
///
/// The first entry is always the un-hinted default plan; the rest force the
/// plan families the paper's listings exercise (hash / merge / nested-loop /
/// index joins, semi-join strategies, materialization, join-cache switches,
/// join order).
pub fn hint_sets_for(profile: ProfileId, stmt: &SelectStmt) -> Vec<HintSet> {
    let tables: Vec<String> = stmt
        .from
        .tables()
        .iter()
        .map(|t| t.binding().to_string())
        .collect();
    let mut sets = vec![HintSet::new("default")];
    let multi_table = tables.len() > 1;

    if multi_table {
        sets.push(HintSet::new("hash-join").with_hint(Hint::HashJoin(tables.clone())));
        sets.push(HintSet::new("merge-join").with_hint(Hint::MergeJoin(tables.clone())));
        sets.push(HintSet::new("nl-join").with_hint(Hint::NlJoin(tables.clone())));
        sets.push(HintSet::new("index-join").with_hint(Hint::IndexJoin(tables.clone())));
        let mut reversed = tables.clone();
        reversed.reverse();
        sets.push(HintSet::new("join-order").with_hint(Hint::JoinOrder(reversed)));
    }

    if stmt.has_subquery() {
        sets.push(
            HintSet::new("semijoin-materialization")
                .with_hint(Hint::SemiJoin(Some(SemiJoinStrategy::Materialization))),
        );
        sets.push(HintSet::new("no-semijoin").with_hint(Hint::NoSemiJoin));
        sets.push(HintSet::new("subquery-to-derived").with_hint(Hint::SubqueryToDerived));
        sets.push(
            HintSet::new("materialization-off")
                .with_switch(SessionSwitch::off(SwitchName::Materialization))
                .with_hint(Hint::Materialization(false)),
        );
    }

    match profile {
        ProfileId::MariadbLike => {
            sets.push(
                HintSet::new("join-cache-hashed-off")
                    .with_switch(SessionSwitch::off(SwitchName::JoinCacheHashed)),
            );
            sets.push(
                HintSet::new("join-cache-bka-off")
                    .with_switch(SessionSwitch::off(SwitchName::JoinCacheBka)),
            );
            sets.push(
                HintSet::new("no-join-buffers")
                    .with_switch(SessionSwitch::off(SwitchName::JoinCacheBka))
                    .with_switch(SessionSwitch::off(SwitchName::JoinCacheHashed))
                    .with_switch(SessionSwitch::off(SwitchName::OuterJoinWithCache)),
            );
        }
        ProfileId::MysqlLike => {
            sets.push(
                HintSet::new("bnl-only")
                    .with_switch(SessionSwitch::off(SwitchName::HashJoin))
                    .with_switch(SessionSwitch::off(SwitchName::BatchedKeyAccess)),
            );
            if stmt.has_subquery() {
                sets.push(
                    HintSet::new("firstmatch")
                        .with_hint(Hint::SemiJoin(Some(SemiJoinStrategy::FirstMatch))),
                );
            }
        }
        ProfileId::TidbLike => {
            // TiDB's hint dialect favours per-join-type hints; merge join is
            // the historically buggy one, also try forcing index joins off.
            sets.push(
                HintSet::new("no-index-join")
                    .with_hint(Hint::HashJoin(tables.clone()))
                    .with_switch(SessionSwitch::off(SwitchName::BatchedKeyAccess)),
            );
        }
        ProfileId::XdbLike => {
            sets.push(HintSet::new("simplify-outer").with_hint(Hint::SimplifyOuterJoin));
            sets.push(
                HintSet::new("materialization-off")
                    .with_switch(SessionSwitch::off(SwitchName::Materialization)),
            );
        }
    }
    // de-duplicate by label (materialization-off may repeat)
    let mut seen = std::collections::HashSet::new();
    sets.retain(|s| seen.insert(s.label.clone()));
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_sql::parser::parse_stmt;

    fn join_query() -> SelectStmt {
        parse_stmt("SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a LEFT OUTER JOIN t3 ON t2.b = t3.b")
            .unwrap()
    }

    fn subquery_query() -> SelectStmt {
        parse_stmt("SELECT t1.a FROM t1 WHERE t1.a IN (SELECT t2.a FROM t2)").unwrap()
    }

    #[test]
    fn default_plan_is_always_first() {
        for p in ProfileId::ALL {
            let sets = hint_sets_for(p, &join_query());
            assert_eq!(sets[0].label, "default");
            assert!(sets[0].is_empty());
            assert!(sets.len() >= 5, "{p:?} produced too few hint sets");
        }
    }

    #[test]
    fn join_queries_cover_all_algorithm_families() {
        let labels: Vec<String> = hint_sets_for(ProfileId::MysqlLike, &join_query())
            .into_iter()
            .map(|s| s.label)
            .collect();
        for expected in [
            "hash-join",
            "merge-join",
            "nl-join",
            "index-join",
            "join-order",
        ] {
            assert!(labels.contains(&expected.to_string()), "{labels:?}");
        }
    }

    #[test]
    fn subqueries_add_semijoin_strategies() {
        let labels: Vec<String> = hint_sets_for(ProfileId::MysqlLike, &subquery_query())
            .into_iter()
            .map(|s| s.label)
            .collect();
        assert!(labels.contains(&"semijoin-materialization".to_string()));
        assert!(labels.contains(&"no-semijoin".to_string()));
        assert!(labels.contains(&"materialization-off".to_string()));
        assert!(labels.contains(&"firstmatch".to_string()));
    }

    #[test]
    fn mariadb_uses_optimizer_switches() {
        let sets = hint_sets_for(ProfileId::MariadbLike, &join_query());
        let switchy = sets.iter().filter(|s| !s.switches.is_empty()).count();
        assert!(switchy >= 3);
        // rendering shows the SET optimizer_switch syntax from the listings
        let rendered: Vec<String> = sets.iter().map(|s| s.to_string()).collect();
        assert!(rendered.iter().any(|r| r.contains("join_cache_hashed=off")));
    }

    #[test]
    fn labels_are_unique() {
        for p in ProfileId::ALL {
            let sets = hint_sets_for(p, &subquery_query());
            let mut labels: Vec<&str> = sets.iter().map(|s| s.label.as_str()).collect();
            let before = labels.len();
            labels.dedup();
            labels.sort();
            labels.dedup();
            assert_eq!(before, labels.len());
        }
    }
}
