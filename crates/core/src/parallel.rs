//! Parallel query-space exploration (§4, Figure 10).
//!
//! A central server owns the graph index and the adaptive walk; each client
//! holds a replica of the database and a DSG/engine pair. We model this with
//! one shared, mutex-protected [`GraphIndex`] and one worker thread per
//! client, and measure how many queries the fleet processes within a fixed
//! wall-clock budget.

use crate::dsg::{DsgDatabase, QueryGenConfig, QueryGenerator, WalkScorer};
use crate::hintgen::hint_sets_for;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tqs_engine::{Database, DbmsProfile, ProfileId};
use tqs_graph::embedding::embed_graph;
use tqs_graph::plangraph::query_graph_with_subqueries;
use tqs_graph::{GraphIndex, LabeledGraph};
use tqs_schema::GroundTruthEvaluator;

/// Result of one parallel exploration run.
#[derive(Debug, Clone)]
pub struct ParallelStats {
    pub clients: usize,
    pub queries_processed: usize,
    pub bugs_found: usize,
    pub diversity: usize,
    pub elapsed: Duration,
}

/// Scorer backed by the *shared* graph index.
struct SharedScorer {
    index: Arc<Mutex<GraphIndex>>,
    knn_k: usize,
}

impl WalkScorer for SharedScorer {
    fn weight(&self, candidate: &LabeledGraph) -> f64 {
        let e = embed_graph(candidate, 2);
        let cov = self.index.lock().coverage(&e, self.knn_k) as f64;
        1.0 / (cov + 1.0)
    }
}

/// Run `clients` workers for `budget` wall-clock time against `profile`.
/// Every worker clones the catalog (its database replica), generates queries
/// with the shared adaptive scorer, executes all hint-set transformations and
/// verifies them against the ground truth.
pub fn parallel_explore(
    profile: ProfileId,
    dsg: &DsgDatabase,
    clients: usize,
    budget: Duration,
    seed: u64,
) -> ParallelStats {
    let shared_index = Arc::new(Mutex::new(GraphIndex::new()));
    let queries = Arc::new(AtomicUsize::new(0));
    let bugs = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();

    crossbeam::scope(|scope| {
        for client in 0..clients {
            let shared_index = Arc::clone(&shared_index);
            let queries = Arc::clone(&queries);
            let bugs = Arc::clone(&bugs);
            let dsg = dsg.clone();
            scope.spawn(move |_| {
                let engine = Database::new(dsg.db.catalog.clone(), DbmsProfile::build(profile));
                let mut engine = engine;
                let mut generator = QueryGenerator::new(QueryGenConfig {
                    seed: seed ^ (client as u64 + 1) * 0x9E37_79B9,
                    ..Default::default()
                });
                let scorer = SharedScorer { index: Arc::clone(&shared_index), knn_k: 5 };
                let gt = GroundTruthEvaluator::new(&dsg.db);
                while start.elapsed() < budget {
                    let stmt = generator.generate(&dsg, None, &scorer);
                    let qg = query_graph_with_subqueries(&stmt, &dsg.schema_desc);
                    {
                        // synchronization cost of the central server
                        let mut idx = shared_index.lock();
                        let e = embed_graph(&qg, 2);
                        idx.insert(&qg, e);
                    }
                    let truth = match gt.evaluate(&stmt) {
                        Ok(t) => t,
                        Err(_) => continue,
                    };
                    for hs in hint_sets_for(profile, &stmt) {
                        if let Ok(out) = engine.execute_with_hints(&stmt, &hs) {
                            if !truth.matches(&out.result) {
                                bugs.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    })
    .expect("worker panicked");

    let diversity = shared_index.lock().isomorphic_set_count();
    ParallelStats {
        clients,
        queries_processed: queries.load(Ordering::Relaxed),
        bugs_found: bugs.load(Ordering::Relaxed),
        diversity,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsg::{DsgConfig, WideSource};
    use tqs_schema::NoiseConfig;
    use tqs_storage::widegen::ShoppingConfig;

    fn dsg() -> DsgDatabase {
        DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(ShoppingConfig { n_rows: 80, ..Default::default() }),
            fd: Default::default(),
            noise: Some(NoiseConfig { epsilon: 0.03, seed: 2, max_injections: 8 }),
        })
    }

    #[test]
    fn single_client_processes_queries() {
        let d = dsg();
        let stats = parallel_explore(
            ProfileId::MysqlLike,
            &d,
            1,
            Duration::from_millis(300),
            11,
        );
        assert_eq!(stats.clients, 1);
        assert!(stats.queries_processed > 0);
        assert!(stats.diversity > 0);
    }

    #[test]
    fn more_clients_process_at_least_as_many_queries() {
        let d = dsg();
        let one = parallel_explore(ProfileId::MysqlLike, &d, 1, Duration::from_millis(400), 13);
        let four = parallel_explore(ProfileId::MysqlLike, &d, 4, Duration::from_millis(400), 13);
        // The test harness itself runs many threads, so we only assert that
        // the fleet makes clear progress and explores at least as much
        // structure — the throughput scaling itself is measured by the
        // Figure 10 experiment binary on an otherwise idle machine.
        assert!(four.queries_processed > 0);
        assert!(
            four.queries_processed as f64 >= one.queries_processed as f64 * 0.5,
            "1 client: {}, 4 clients: {}",
            one.queries_processed,
            four.queries_processed
        );
    }
}
