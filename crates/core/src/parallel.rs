//! Parallel query-space exploration (§4, Figure 10).
//!
//! A central server owns the graph index and the adaptive walk; each client
//! holds a replica of the database and a DSG/connector pair. We model this
//! with one shared, mutex-protected [`GraphIndex`] and one worker thread per
//! client, and measure how many queries the fleet processes within a fixed
//! wall-clock budget.
//!
//! The explorer is backend- and oracle-agnostic: callers hand it a connector
//! factory (and optionally an oracle factory) and every worker drives its own
//! [`DbmsConnector`] replica through its own [`Oracle`].
//!
//! Two scale properties matter for fleets:
//!
//! * **Zero-copy replicas.** The DSG database is taken behind an [`Arc`] and
//!   the catalog's tables are `Arc`-shared ([`tqs_storage::Catalog`]), so a
//!   worker "loading" the testing database into its engine replica bumps
//!   reference counts instead of cloning row storage.
//! * **Sharding.** [`parallel_explore_sharded`] spreads workers over
//!   row-range shard databases ([`DsgDatabase::build_sharded`]): every worker
//!   hunts one partition of the wide table instead of the whole catalog,
//!   which is how a campaign scales past the memory of a single replica.

use crate::backend::{ConnectorError, DbmsConnector};
use crate::dsg::{DsgDatabase, QueryGenConfig, QueryGenerator, WalkScorer};
use crate::oracle::{Oracle, OracleVerdict, TqsOracle};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tqs_graph::embedding::embed_graph;
use tqs_graph::plangraph::query_graph_with_subqueries;
use tqs_graph::{GraphIndex, LabeledGraph};

/// Shard-aware oracle factory: `(client index, the worker's shard database)
/// -> verdict procedure`.
type ShardOracleFactory<'a> = dyn Fn(usize, &Arc<DsgDatabase>) -> Box<dyn Oracle> + Sync + 'a;

/// Result of one parallel exploration run.
#[derive(Debug, Clone)]
pub struct ParallelStats {
    pub clients: usize,
    /// Number of distinct shard databases the fleet hunted (1 = unsharded).
    pub shards: usize,
    pub queries_processed: usize,
    pub bugs_found: usize,
    pub diversity: usize,
    pub elapsed: Duration,
}

/// Scorer backed by the *shared* graph index.
struct SharedScorer<'a> {
    index: &'a Mutex<GraphIndex>,
    knn_k: usize,
}

impl WalkScorer for SharedScorer<'_> {
    fn weight(&self, candidate: &LabeledGraph) -> f64 {
        let e = embed_graph(candidate, 2);
        let cov = self.index.lock().coverage(&e, self.knn_k) as f64;
        1.0 / (cov + 1.0)
    }
}

/// Run `clients` workers for `budget` wall-clock time with the default
/// ground-truth oracle ([`TqsOracle`]) per worker. See
/// [`parallel_explore_with`] for the oracle-agnostic variant and
/// [`parallel_explore_sharded`] for partitioned hunts.
pub fn parallel_explore<C, F>(
    dsg: &Arc<DsgDatabase>,
    clients: usize,
    budget: Duration,
    seed: u64,
    connect: F,
) -> Result<ParallelStats, ConnectorError>
where
    C: DbmsConnector,
    F: Fn(usize) -> C + Sync,
{
    let shards = [Arc::clone(dsg)];
    explore_fleet(&shards, clients, budget, seed, &connect, &|_, shard| {
        Box::new(TqsOracle::shared(Arc::clone(shard)))
    })
}

/// Run `clients` workers for `budget` wall-clock time. Every worker obtains
/// its own backend replica from `connect` and its own verdict procedure from
/// `make_oracle` (each called with the client index), loads the shared DSG
/// catalog into the replica (an `Arc` bump per table, not a copy), generates
/// queries with the shared adaptive scorer and drives every statement
/// through its `&mut dyn Oracle`.
///
/// Returns an error when any worker's connector rejects the catalog; the
/// remaining workers stop at their next iteration (rather than burning the
/// whole budget) and the partial counts are discarded.
pub fn parallel_explore_with<C, F, G>(
    dsg: &Arc<DsgDatabase>,
    clients: usize,
    budget: Duration,
    seed: u64,
    connect: F,
    make_oracle: G,
) -> Result<ParallelStats, ConnectorError>
where
    C: DbmsConnector,
    F: Fn(usize) -> C + Sync,
    G: Fn(usize) -> Box<dyn Oracle> + Sync,
{
    let shards = [Arc::clone(dsg)];
    explore_fleet(&shards, clients, budget, seed, &connect, &|client, _| {
        make_oracle(client)
    })
}

/// Sharded fleet exploration: worker `i` hunts shard `i % shards.len()` —
/// it loads only its partition's catalog and generates queries from its
/// partition's schema view. `make_oracle` receives the client index *and*
/// the worker's shard database, so shard-local verdict procedures (a
/// [`TqsOracle`] over the shard's own ground truth) come for free:
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use tqs_core::backend::EngineConnector;
/// use tqs_core::dsg::{DsgConfig, DsgDatabase};
/// use tqs_core::oracle::TqsOracle;
/// use tqs_core::parallel::parallel_explore_sharded;
/// use tqs_engine::ProfileId;
///
/// let shards = DsgDatabase::build_sharded(&DsgConfig::default(), 2);
/// let stats = parallel_explore_sharded(
///     &shards,
///     2,
///     Duration::from_millis(50),
///     7,
///     |_| EngineConnector::faulty(ProfileId::MysqlLike),
///     |_, shard| Box::new(TqsOracle::shared(Arc::clone(shard))),
/// )
/// .unwrap();
/// assert_eq!(stats.shards, 2);
/// ```
pub fn parallel_explore_sharded<C, F, G>(
    shards: &[Arc<DsgDatabase>],
    clients: usize,
    budget: Duration,
    seed: u64,
    connect: F,
    make_oracle: G,
) -> Result<ParallelStats, ConnectorError>
where
    C: DbmsConnector,
    F: Fn(usize) -> C + Sync,
    G: Fn(usize, &Arc<DsgDatabase>) -> Box<dyn Oracle> + Sync,
{
    explore_fleet(shards, clients, budget, seed, &connect, &make_oracle)
}

/// The shared fleet loop behind the three public entry points.
fn explore_fleet<C, F>(
    shards: &[Arc<DsgDatabase>],
    clients: usize,
    budget: Duration,
    seed: u64,
    connect: &F,
    make_oracle: &ShardOracleFactory<'_>,
) -> Result<ParallelStats, ConnectorError>
where
    C: DbmsConnector,
    F: Fn(usize) -> C + Sync,
{
    assert!(!shards.is_empty(), "at least one shard database required");
    let shared_index = Mutex::new(GraphIndex::new());
    let queries = AtomicUsize::new(0);
    let bugs = AtomicUsize::new(0);
    let load_error: Mutex<Option<ConnectorError>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for client in 0..clients {
            let shard = &shards[client % shards.len()];
            let shared_index = &shared_index;
            let queries = &queries;
            let bugs = &bugs;
            let load_error = &load_error;
            let abort = &abort;
            scope.spawn(move || {
                let mut conn = connect(client);
                // With `Arc`-shared catalog tables this load is reference
                // bumps, not a copy of the shard's rows.
                if let Err(e) = conn.load_catalog(&shard.db.catalog) {
                    *load_error.lock() = Some(e);
                    abort.store(true, Ordering::Relaxed);
                    return;
                }
                let mut oracle = make_oracle(client, shard);
                let mut generator = QueryGenerator::new(QueryGenConfig {
                    seed: seed ^ ((client as u64 + 1) * 0x9E37_79B9),
                    ..Default::default()
                });
                let scorer = SharedScorer {
                    index: shared_index,
                    knn_k: 5,
                };
                while start.elapsed() < budget && !abort.load(Ordering::Relaxed) {
                    let stmt = generator.generate(shard, None, &scorer);
                    let qg = query_graph_with_subqueries(&stmt, &shard.schema_desc);
                    {
                        // synchronization cost of the central server
                        let mut idx = shared_index.lock();
                        let e = embed_graph(&qg, 2);
                        idx.insert(&qg, e);
                    }
                    match oracle.check(&stmt, &mut conn) {
                        OracleVerdict::Skip => continue,
                        OracleVerdict::Pass => {}
                        OracleVerdict::Bugs(reports) => {
                            bugs.fetch_add(reports.len(), Ordering::Relaxed);
                        }
                    }
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    if let Some(e) = load_error.into_inner() {
        return Err(e);
    }
    let diversity = shared_index.lock().isomorphic_set_count();
    Ok(ParallelStats {
        clients,
        // Worker i hunts shard i % shards.len(), so with fewer clients than
        // shards the tail shards are never assigned.
        shards: shards.len().min(clients),
        queries_processed: queries.load(Ordering::Relaxed),
        bugs_found: bugs.load(Ordering::Relaxed),
        diversity,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::EngineConnector;
    use crate::dsg::{DsgConfig, WideSource};
    use tqs_engine::ProfileId;
    use tqs_schema::NoiseConfig;
    use tqs_storage::widegen::ShoppingConfig;

    fn dsg_cfg() -> DsgConfig {
        DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 80,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.03,
                seed: 2,
                max_injections: 8,
            }),
        }
    }

    fn dsg() -> Arc<DsgDatabase> {
        Arc::new(DsgDatabase::build(&dsg_cfg()))
    }

    #[test]
    fn single_client_processes_queries() {
        let d = dsg();
        let stats = parallel_explore(&d, 1, Duration::from_millis(300), 11, |_| {
            EngineConnector::faulty(ProfileId::MysqlLike)
        })
        .unwrap();
        assert_eq!(stats.clients, 1);
        assert_eq!(stats.shards, 1);
        assert!(stats.queries_processed > 0);
        assert!(stats.diversity > 0);
    }

    #[test]
    fn more_clients_process_at_least_as_many_queries() {
        let d = dsg();
        let connect = |_| EngineConnector::faulty(ProfileId::MysqlLike);
        let one = parallel_explore(&d, 1, Duration::from_millis(400), 13, connect).unwrap();
        let four = parallel_explore(&d, 4, Duration::from_millis(400), 13, connect).unwrap();
        // The test harness itself runs many threads, so we only assert that
        // the fleet makes clear progress and explores at least as much
        // structure — the throughput scaling itself is measured by the
        // Figure 10 experiment binary on an otherwise idle machine.
        assert!(four.queries_processed > 0);
        assert!(
            four.queries_processed as f64 >= one.queries_processed as f64 * 0.5,
            "1 client: {}, 4 clients: {}",
            one.queries_processed,
            four.queries_processed
        );
    }

    #[test]
    fn workers_can_run_a_custom_oracle() {
        // Cross-engine differential exploration: every worker tests the
        // faulty row engine against its own pristine columnar replica.
        let d = dsg();
        let oracle_dsg = Arc::clone(&d);
        let stats = parallel_explore_with(
            &d,
            2,
            Duration::from_millis(250),
            23,
            |_| EngineConnector::faulty(ProfileId::MysqlLike),
            move |_| {
                Box::new(crate::oracle::DifferentialOracle::new(
                    EngineConnector::connect_columnar_pristine(ProfileId::MysqlLike, &oracle_dsg),
                ))
            },
        )
        .unwrap();
        assert!(stats.queries_processed > 0);
    }

    #[test]
    fn workers_can_target_heterogeneous_profiles() {
        // The factory receives the client index, so a fleet can spread over
        // several backend builds in one run.
        let d = dsg();
        let stats = parallel_explore(&d, 2, Duration::from_millis(200), 17, |client| {
            EngineConnector::faulty(ProfileId::ALL[client % ProfileId::ALL.len()])
        })
        .unwrap();
        assert_eq!(stats.clients, 2);
        assert!(stats.queries_processed > 0);
    }

    #[test]
    fn sharded_fleet_hunts_partitions() {
        let shards = DsgDatabase::build_sharded(&dsg_cfg(), 2);
        let stats = parallel_explore_sharded(
            &shards,
            2,
            Duration::from_millis(300),
            29,
            |_| EngineConnector::faulty(ProfileId::MysqlLike),
            |_, shard| Box::new(TqsOracle::shared(Arc::clone(shard))),
        )
        .unwrap();
        assert_eq!(stats.shards, 2);
        assert!(stats.queries_processed > 0);
        assert!(stats.diversity > 0);
    }
}
