//! DSG — Data-guided Schema and query Generation.
//!
//! Builds the testing database (wide table → FDs → 3NF schema → noise →
//! bitmap/RowID machinery) and generates join queries by random walks over
//! the schema graph (§3.3). The walk's edge weighting is pluggable so that
//! KQE can bias it towards unexplored query structures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tqs_graph::plangraph::SchemaDesc;
use tqs_graph::LabeledGraph;
use tqs_schema::{
    inject_noise, normalize, FdDiscoveryConfig, FdSet, NoiseConfig, NoiseRecord, NormalizedDb,
    SchemaGraph,
};
use tqs_sql::ast::*;
use tqs_sql::value::Value;
use tqs_storage::widegen::{
    random_fd_table, shopping_orders, tpch_like, RandomFdConfig, ShoppingConfig, TpchLikeConfig,
};
use tqs_storage::{WideTable, WideTableShard};

/// Which wide-table source to use (substitutes for the paper's UCI / TPC-H
/// datasets).
#[derive(Debug, Clone)]
pub enum WideSource {
    Shopping(ShoppingConfig),
    TpchLike(TpchLikeConfig),
    RandomFd(RandomFdConfig),
}

impl Default for WideSource {
    fn default() -> Self {
        WideSource::Shopping(ShoppingConfig::default())
    }
}

impl WideSource {
    /// Generate the wide table this source describes. Exposed so that a
    /// sharded campaign can generate `T_w` exactly once, share it behind an
    /// `Arc`, and build per-shard databases from row-range views of it.
    pub fn generate(&self) -> WideTable {
        match self {
            WideSource::Shopping(c) => shopping_orders(c),
            WideSource::TpchLike(c) => tpch_like(c),
            WideSource::RandomFd(c) => random_fd_table(c),
        }
    }
}

/// DSG data-layer configuration.
#[derive(Debug, Clone, Default)]
pub struct DsgConfig {
    pub source: WideSource,
    pub fd: FdDiscoveryConfig,
    /// `None` disables noise injection (the `TQS!Noise` ablation).
    pub noise: Option<NoiseConfig>,
}

/// The fully-built DSG database: normalized schema + graph views + sampled
/// literal pools for filter generation.
#[derive(Debug, Clone)]
pub struct DsgDatabase {
    pub db: NormalizedDb,
    pub schema_graph: SchemaGraph,
    pub schema_desc: SchemaDesc,
    pub noise: Vec<NoiseRecord>,
    /// Sample values per (table, column), used to generate selective filters.
    pub value_pool: Vec<(String, String, Vec<Value>)>,
}

impl DsgDatabase {
    /// Run the full DSG data pipeline.
    pub fn build(cfg: &DsgConfig) -> DsgDatabase {
        let wide = cfg.source.generate();
        let fds = FdSet::discover(&wide, &cfg.fd);
        DsgDatabase::from_wide_with_fds(wide, &fds, cfg.noise.as_ref())
    }

    /// Build the database from an already-generated wide table and an
    /// already-discovered FD set.
    ///
    /// This is the shard entry point: FDs discovered on the *full* wide
    /// table hold on every row subset, so normalizing each shard with the
    /// shared FD set yields the same schema (tables, columns, join edges) on
    /// every shard — queries, ground truth and plan-graph fingerprints stay
    /// comparable across the whole fleet while each worker only materializes
    /// its own partition.
    pub fn from_wide_with_fds(
        wide: WideTable,
        fds: &FdSet,
        noise_cfg: Option<&NoiseConfig>,
    ) -> DsgDatabase {
        let mut db = normalize(wide, fds);
        let noise = match noise_cfg {
            Some(nc) => inject_noise(&mut db, nc),
            None => Vec::new(),
        };
        let schema_graph = SchemaGraph::build(&db);
        let schema_desc = SchemaDesc {
            tables: schema_graph.tables.clone(),
            columns: schema_graph
                .columns
                .iter()
                .map(|c| {
                    (
                        c.table.clone(),
                        c.column.clone(),
                        c.ty.graph_label().to_string(),
                        c.is_key,
                    )
                })
                .collect(),
            join_edges: schema_graph
                .join_edges
                .iter()
                .map(|e| {
                    (
                        e.left_table.clone(),
                        e.right_table.clone(),
                        e.column.clone(),
                    )
                })
                .collect(),
        };
        let value_pool = build_value_pool(&db);
        DsgDatabase {
            db,
            schema_graph,
            schema_desc,
            noise,
            value_pool,
        }
    }

    /// Build `count` row-range shard databases. The wide table is generated
    /// once and shared behind an `Arc`; FDs are discovered once on the full
    /// table; each shard materializes only its own row partition and runs
    /// the rest of the pipeline (normalization, noise, value pools) on it.
    /// With `count == 1` this is the unsharded database in a vector.
    pub fn build_sharded(cfg: &DsgConfig, count: usize) -> Vec<std::sync::Arc<DsgDatabase>> {
        let wide = std::sync::Arc::new(cfg.source.generate());
        let fds = FdSet::discover(&wide, &cfg.fd);
        WideTableShard::split(wide, count)
            .into_iter()
            .map(|shard| {
                // Per-shard noise seed (shard 0 keeps the configured seed,
                // so a 1-shard build is *exactly* `DsgDatabase::build`): the
                // same injection pattern on every shard would make shard 0's
                // bugs predict every other shard's, which defeats
                // partitioned exploration.
                let noise = cfg.noise.clone().map(|mut nc| {
                    nc.seed ^= (shard.spec().index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
                    nc
                });
                std::sync::Arc::new(DsgDatabase::from_wide_with_fds(
                    shard.materialize(),
                    &fds,
                    noise.as_ref(),
                ))
            })
            .collect()
    }

    pub fn sample_values(&self, table: &str, column: &str) -> &[Value] {
        self.value_pool
            .iter()
            .find(|(t, c, _)| t.eq_ignore_ascii_case(table) && c.eq_ignore_ascii_case(column))
            .map(|(_, _, v)| v.as_slice())
            .unwrap_or(&[])
    }
}

fn build_value_pool(db: &NormalizedDb) -> Vec<(String, String, Vec<Value>)> {
    let mut out = Vec::new();
    for m in &db.metas {
        let t = match db.catalog.table(&m.name) {
            Some(t) => t,
            None => continue,
        };
        for col in &m.columns {
            let idx = match t.column_index(col) {
                Some(i) => i,
                None => continue,
            };
            let mut vals = Vec::new();
            let step = (t.row_count() / 8).max(1);
            for r in (0..t.row_count()).step_by(step) {
                let v = t.rows[r].get(idx).clone();
                if !v.is_null() && !vals.contains(&v) {
                    vals.push(v);
                }
            }
            out.push((m.name.clone(), col.clone(), vals));
        }
    }
    out
}

/// A pluggable scorer used by the random walk when ranking candidate next
/// edges. [`UniformScorer`] gives the plain DSG walk; KQE provides a
/// coverage-based scorer.
pub trait WalkScorer {
    /// Weight of extending the current query graph to `candidate` (larger =
    /// more attractive). Must be positive.
    fn weight(&self, candidate: &LabeledGraph) -> f64;
}

/// The plain random walk: every extension is equally likely.
pub struct UniformScorer;

impl WalkScorer for UniformScorer {
    fn weight(&self, _candidate: &LabeledGraph) -> f64 {
        1.0
    }
}

/// Query generation parameters.
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Maximum number of joined tables (`l`, the maximum walk length).
    pub max_tables: usize,
    pub filter_probability: f64,
    pub subquery_probability: f64,
    pub aggregate_probability: f64,
    pub distinct_probability: f64,
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            max_tables: 4,
            filter_probability: 0.6,
            subquery_probability: 0.25,
            aggregate_probability: 0.15,
            distinct_probability: 0.2,
            seed: 23,
        }
    }
}

/// The random-walk join query generator.
pub struct QueryGenerator {
    pub cfg: QueryGenConfig,
    rng: StdRng,
}

impl QueryGenerator {
    pub fn new(cfg: QueryGenConfig) -> Self {
        let seed = cfg.seed;
        QueryGenerator {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate one join query by walking the schema graph from `start`
    /// (random table when `None`), scoring candidate extensions with
    /// `scorer`, and then attaching filters / projections / subqueries /
    /// aggregates.
    pub fn generate(
        &mut self,
        dsg: &DsgDatabase,
        start: Option<&str>,
        scorer: &dyn WalkScorer,
    ) -> SelectStmt {
        let tables = &dsg.schema_desc.tables;
        let start = match start {
            Some(s) => s.to_string(),
            None => tables[self.rng.gen_range(0..tables.len())].clone(),
        };
        let target_tables = self.rng.gen_range(1..=self.cfg.max_tables.max(1));

        // Walk: collect (table, join_type, via_table, via_column).
        let mut included: Vec<String> = vec![start.clone()];
        // Tables whose columns remain in scope for later join conditions —
        // the right side of a semi/anti join only filters and must not be
        // referenced afterwards.
        let mut anchors: Vec<String> = vec![start.clone()];
        let mut joins: Vec<Join> = Vec::new();
        let mut from = FromClause::single(start.clone());
        while included.len() < target_tables {
            // candidate edges from any anchor table to a new table
            let mut candidates: Vec<(String, String, String, JoinType)> = Vec::new(); // (from, to, col, jt)
            for t in &anchors {
                for (n, col) in dsg.schema_desc.neighbors(t) {
                    if included.iter().any(|i| i.eq_ignore_ascii_case(&n)) {
                        continue;
                    }
                    for jt in self.join_type_choices(joins.is_empty()) {
                        candidates.push((t.clone(), n.clone(), col.clone(), jt));
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            // score each candidate by building the extended query graph
            let mut weights = Vec::with_capacity(candidates.len());
            let current_graph = self.partial_graph(&from, &joins, dsg);
            let current_weight = scorer.weight(&current_graph).max(1e-6);
            let mut best = 0.0f64;
            for (via, to, col, jt) in &candidates {
                let mut trial_joins = joins.clone();
                trial_joins.push(Join {
                    join_type: *jt,
                    table: TableRef::new(to.clone()),
                    on: Some(Expr::eq(Expr::col(via, col), Expr::col(to, col))),
                });
                let g = self.partial_graph(&from, &trial_joins, dsg);
                let w = scorer.weight(&g).max(1e-6);
                best = best.max(w);
                weights.push(w);
            }
            // Termination rule (Algorithm 2 lines 9-10): stop extending when
            // every candidate is clearly less attractive than the current
            // graph. The 0.5 factor keeps walks from collapsing to two-table
            // queries once the index fills up — novelty should steer *which*
            // join is added, not stop exploration of deeper joins altogether.
            if best < current_weight * 0.5 && included.len() > 1 {
                break;
            }
            let idx = alias_sample(&weights, &mut self.rng);
            let (via, to, col, jt) = candidates[idx].clone();
            joins.push(Join {
                join_type: jt,
                table: TableRef::new(to.clone()),
                on: if jt == JoinType::Cross {
                    None
                } else {
                    Some(Expr::eq(Expr::col(&via, &col), Expr::col(&to, &col)))
                },
            });
            if !matches!(jt, JoinType::Semi | JoinType::Anti) {
                anchors.push(to.clone());
            }
            included.push(to);
        }
        from.joins = joins;

        // visible tables (semi/anti right sides only filter)
        let mut visible: Vec<String> = vec![from.base.table.clone()];
        for j in &from.joins {
            if !matches!(j.join_type, JoinType::Semi | JoinType::Anti) {
                visible.push(j.table.table.clone());
            }
        }

        let mut stmt = SelectStmt::new(from);
        stmt.distinct = self.rng.gen_bool(self.cfg.distinct_probability);

        // Projections: 1-3 columns from visible tables.
        let n_proj = self.rng.gen_range(1..=3usize);
        let mut items = Vec::new();
        for _ in 0..n_proj {
            if let Some((t, c)) = self.random_column(dsg, &visible) {
                items.push(SelectItem::column(&t, &c));
            }
        }
        if items.is_empty() {
            items.push(SelectItem::column(
                &visible[0],
                &dsg.schema_desc.columns_of(&visible[0])[0].1,
            ));
        }
        stmt.items = items;

        // Aggregates: rewrite into GROUP BY col, COUNT(*). Skipped when a
        // cross join is present — its ground truth is verified in subset
        // mode, which cannot check aggregate values.
        let has_cross = stmt
            .from
            .joins
            .iter()
            .any(|j| j.join_type == JoinType::Cross);
        if self.rng.gen_bool(self.cfg.aggregate_probability) && !stmt.distinct && !has_cross {
            if let Some((t, c)) = self.random_column(dsg, &visible) {
                stmt.items = vec![
                    SelectItem::column(&t, &c),
                    SelectItem::Aggregate {
                        func: AggFunc::CountStar,
                        arg: None,
                        alias: Some("cnt".into()),
                    },
                ];
                stmt.group_by = vec![Expr::col(&t, &c)];
            }
        }

        // Filters.
        let mut predicates: Vec<Expr> = Vec::new();
        if self.rng.gen_bool(self.cfg.filter_probability) {
            if let Some(p) = self.random_filter(dsg, &visible) {
                predicates.push(p);
            }
        }
        // Subquery filter: col IN / NOT IN (SELECT pk FROM dim WHERE ...).
        if self.rng.gen_bool(self.cfg.subquery_probability) {
            if let Some(p) = self.random_subquery_filter(dsg, &visible) {
                predicates.push(p);
            }
        }
        stmt.where_clause = Expr::conjunction(predicates);
        stmt
    }

    fn join_type_choices(&mut self, first_join: bool) -> Vec<JoinType> {
        // weighted pick of a couple of join types per candidate edge so the
        // candidate list stays small. Right/full outer joins only make sense
        // as the first join step (the ground-truth bitmap fold of Table 2 is
        // defined per pair, see GroundTruthEvaluator), so later steps draw
        // from the remaining types.
        let all: &[(JoinType, u32)] = if first_join {
            &[
                (JoinType::Inner, 32),
                (JoinType::LeftOuter, 16),
                (JoinType::RightOuter, 10),
                (JoinType::FullOuter, 6),
                (JoinType::Semi, 12),
                (JoinType::Anti, 12),
                (JoinType::Cross, 6),
            ]
        } else {
            &[
                (JoinType::Inner, 40),
                (JoinType::LeftOuter, 20),
                (JoinType::Semi, 14),
                (JoinType::Anti, 14),
                (JoinType::Cross, 6),
            ]
        };
        let mut out = Vec::new();
        for _ in 0..2 {
            let total: u32 = all.iter().map(|(_, w)| w).sum();
            let mut pick = self.rng.gen_range(0..total);
            for (jt, w) in all.iter().copied() {
                if pick < w {
                    if !out.contains(&jt) {
                        out.push(jt);
                    }
                    break;
                }
                pick -= w;
            }
        }
        out
    }

    fn partial_graph(&self, from: &FromClause, joins: &[Join], dsg: &DsgDatabase) -> LabeledGraph {
        let mut f = from.clone();
        f.joins = joins.to_vec();
        let stmt = SelectStmt::new(f);
        tqs_graph::plangraph::query_graph(&stmt, &dsg.schema_desc)
    }

    fn random_column(&mut self, dsg: &DsgDatabase, visible: &[String]) -> Option<(String, String)> {
        let t = &visible[self.rng.gen_range(0..visible.len())];
        let cols = dsg.schema_desc.columns_of(t);
        if cols.is_empty() {
            return None;
        }
        let c = cols[self.rng.gen_range(0..cols.len())];
        Some((t.clone(), c.1.clone()))
    }

    fn random_filter(&mut self, dsg: &DsgDatabase, visible: &[String]) -> Option<Expr> {
        let (t, c) = self.random_column(dsg, visible)?;
        let pool = dsg.sample_values(&t, &c);
        let col = Expr::col(&t, &c);
        let choice = self.rng.gen_range(0..10);
        Some(match choice {
            0 => Expr::is_null(col),
            1 => Expr::IsNull {
                expr: Box::new(col),
                negated: true,
            },
            2 | 3 => {
                let v = self.pick_value(pool);
                Expr::binary(BinOp::Ge, col, Expr::lit(v))
            }
            4 => {
                let v = self.pick_value(pool);
                Expr::binary(BinOp::NullSafeEq, col, Expr::lit(v))
            }
            5 => {
                let a = self.pick_value(pool);
                let b = self.pick_value(pool);
                Expr::InList {
                    expr: Box::new(col),
                    list: vec![Expr::lit(a), Expr::lit(b)],
                    negated: self.rng.gen_bool(0.3),
                }
            }
            _ => {
                let v = self.pick_value(pool);
                Expr::eq(col, Expr::lit(v))
            }
        })
    }

    fn random_subquery_filter(&mut self, dsg: &DsgDatabase, visible: &[String]) -> Option<Expr> {
        // pick a visible table column that is also the key of another table
        let mut shared: Vec<(String, String, String)> = Vec::new(); // (outer table, col, dim table)
        for t in visible {
            for (_, c, _, _) in dsg.schema_desc.columns_of(t) {
                if let Some(dim) = dsg.db.table_with_pk(c) {
                    if !visible.iter().any(|v| v.eq_ignore_ascii_case(&dim.name)) || dim.name != *t
                    {
                        shared.push((t.clone(), c.clone(), dim.name.clone()));
                    }
                }
            }
        }
        if shared.is_empty() {
            return None;
        }
        let (outer_t, col, dim) = shared[self.rng.gen_range(0..shared.len())].clone();
        let mut sub = SelectStmt::new(FromClause::single(dim.clone()));
        sub.items = vec![SelectItem::column(&dim, &col)];
        // optional inner predicate on another column of the dimension table
        let dim_cols = dsg.schema_desc.columns_of(&dim);
        if dim_cols.len() > 1 && self.rng.gen_bool(0.7) {
            let other = &dim_cols[self.rng.gen_range(0..dim_cols.len())].1;
            let pool = dsg.sample_values(&dim, other);
            let v = self.pick_value(pool);
            sub.where_clause = Some(Expr::eq(Expr::col(&dim, other), Expr::lit(v)));
        }
        let negated = self.rng.gen_bool(0.35);
        if self.rng.gen_bool(0.15) {
            // EXISTS variant with a correlated predicate
            sub.where_clause = Some(Expr::eq(Expr::col(&dim, &col), Expr::col(&outer_t, &col)));
            return Some(Expr::Exists {
                subquery: Box::new(sub),
                negated,
            });
        }
        Some(Expr::InSubquery {
            expr: Box::new(Expr::col(&outer_t, &col)),
            subquery: Box::new(sub),
            negated,
        })
    }

    fn pick_value(&mut self, pool: &[Value]) -> Value {
        if pool.is_empty() || self.rng.gen_bool(0.1) {
            // occasionally an out-of-domain literal
            return Value::Int(self.rng.gen_range(-5..5));
        }
        pool[self.rng.gen_range(0..pool.len())].clone()
    }
}

/// Alias-style weighted sampling (linear here; the weights vector is tiny).
fn alias_sample(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut pick = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_schema::GroundTruthEvaluator;

    fn dsg() -> DsgDatabase {
        DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 150,
                ..Default::default()
            }),
            fd: FdDiscoveryConfig::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.03,
                seed: 5,
                max_injections: 12,
            }),
        })
    }

    #[test]
    fn pipeline_produces_connected_schema_and_noise() {
        let d = dsg();
        assert!(d.db.metas.len() >= 4);
        assert!(d.schema_graph.is_join_connected());
        assert!(!d.noise.is_empty());
        assert!(!d.value_pool.is_empty());
        assert!(!d.sample_values("T1", "goodsId").is_empty());
    }

    #[test]
    fn generator_produces_valid_multi_table_queries() {
        let d = dsg();
        let mut gen = QueryGenerator::new(QueryGenConfig {
            max_tables: 4,
            ..Default::default()
        });
        let mut multi = 0;
        for _ in 0..50 {
            let q = gen.generate(&d, None, &UniformScorer);
            assert!(q.table_count() >= 1);
            assert!(!q.items.is_empty());
            if q.table_count() > 1 {
                multi += 1;
            }
            // the query renders and parses back
            let sql = tqs_sql::render::render_stmt(&q);
            tqs_sql::parser::parse_stmt(&sql).expect(&sql);
        }
        assert!(
            multi > 20,
            "most generated queries should join multiple tables"
        );
    }

    #[test]
    fn generated_queries_have_recoverable_ground_truth() {
        let d = dsg();
        let mut gen = QueryGenerator::new(QueryGenConfig {
            seed: 5,
            ..Default::default()
        });
        let gt = GroundTruthEvaluator::new(&d.db);
        let mut ok = 0;
        for _ in 0..40 {
            let q = gen.generate(&d, None, &UniformScorer);
            if gt.evaluate(&q).is_ok() {
                ok += 1;
            }
        }
        assert!(
            ok >= 35,
            "ground truth should be recoverable for most queries, got {ok}/40"
        );
    }

    #[test]
    fn sharded_databases_share_one_schema_and_partition_the_rows() {
        let cfg = DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 120,
                ..Default::default()
            }),
            fd: FdDiscoveryConfig::default(),
            noise: None,
        };
        let full = DsgDatabase::build(&cfg);
        let shards = DsgDatabase::build_sharded(&cfg, 3);
        assert_eq!(shards.len(), 3);
        for s in &shards {
            // FDs come from the full table, so every shard normalizes to the
            // same schema — queries and fingerprints are fleet-comparable.
            assert_eq!(s.schema_desc.tables, full.schema_desc.tables);
            assert_eq!(s.schema_desc.join_edges, full.schema_desc.join_edges);
            assert!(s.db.wide.row_count() < full.db.wide.row_count());
        }
        let total: usize = shards.iter().map(|s| s.db.wide.row_count()).sum();
        assert_eq!(total, full.db.wide.row_count());
        // One shard is the whole database — including the noise pipeline:
        // shard 0 keeps the configured noise seed, so a single-shard build
        // injects the identical noise records as the plain build.
        let noisy_cfg = DsgConfig {
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 5,
                max_injections: 10,
            }),
            ..cfg
        };
        let noisy_full = DsgDatabase::build(&noisy_cfg);
        let noisy_whole = DsgDatabase::build_sharded(&noisy_cfg, 1);
        assert_eq!(
            noisy_whole[0].db.wide.row_count(),
            noisy_full.db.wide.row_count()
        );
        assert_eq!(noisy_whole[0].noise.len(), noisy_full.noise.len());
    }

    #[test]
    fn no_noise_config_skips_injection() {
        let d = DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 80,
                ..Default::default()
            }),
            fd: FdDiscoveryConfig::default(),
            noise: None,
        });
        assert!(d.noise.is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d = dsg();
        let mut a = QueryGenerator::new(QueryGenConfig {
            seed: 77,
            ..Default::default()
        });
        let mut b = QueryGenerator::new(QueryGenConfig {
            seed: 77,
            ..Default::default()
        });
        for _ in 0..10 {
            let qa = tqs_sql::render::render_stmt(&a.generate(&d, None, &UniformScorer));
            let qb = tqs_sql::render::render_stmt(&b.generate(&d, None, &UniformScorer));
            assert_eq!(qa, qb);
        }
    }

    #[test]
    fn alias_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[alias_sample(&[0.1, 0.1, 9.8], &mut rng)] += 1;
        }
        assert!(counts[2] > 2500, "{counts:?}");
    }
}
