//! The pluggable test-oracle layer.
//!
//! Every way of deciding "is this result wrong?" is an [`Oracle`]: a named
//! checker that takes one statement and one backend and returns a
//! [`OracleVerdict`]. The orchestrator ([`crate::tqs::TqsSession`]), the
//! baseline runner ([`crate::baselines`]), the parallel explorer and the
//! oracle-driven minimizer ([`crate::bugs::minimize_with_oracle`]) all drive
//! `&mut dyn Oracle`, so oracles compose, swap and compare uniformly:
//!
//! * [`TqsOracle`] — the paper's oracle: every hint-forced transformed query
//!   must match the wide-table ground truth.
//! * [`PlanDiffOracle`] — the `TQS!GT` ablation: transformed plans must agree
//!   with the default plan (no ground truth).
//! * [`PqsOracle`], [`TlpOracle`], [`NorecOracle`] — the §5.2 baselines.
//! * [`DifferentialOracle`] — cross-engine differential testing: the same
//!   statement on two *different engine builds* (e.g. the row engine vs the
//!   columnar engine) must agree. This oracle owns a second connector, which
//!   is impossible to express as a per-query check against a single backend —
//!   the reason the oracle layer is a trait and not an enum.
//! * [`PlanSpaceOracle`] — every plan of the statement's enumerated
//!   optimizer plan space must agree with the ground truth, execute with the
//!   hint set the enumerator intended, and respect cost sanity.

use crate::backend::DbmsConnector;
use crate::bugs::{make_report, minimize_query, BugReport, OracleKind};
use crate::dsg::DsgDatabase;
use crate::hintgen::hint_sets_for;
use std::sync::Arc;
use tqs_engine::{FaultKind, FaultSet};
use tqs_optimizer::PlanSpace;
use tqs_schema::GroundTruthEvaluator;
use tqs_sql::ast::{BinOp, Expr, SelectItem, SelectStmt};
use tqs_sql::hints::{Hint, HintSet};
use tqs_sql::value::Value;
use tqs_storage::{ResultSet, Row};

/// Outcome of checking one statement with one oracle.
#[derive(Debug, Clone)]
pub enum OracleVerdict {
    /// The statement was executed and no bug was observed.
    Pass,
    /// The oracle could not apply to this statement (unsupported shape,
    /// execution failure); the statement does not count as tested.
    Skip,
    /// One report per observed violation, ready for the [`crate::bugs::BugLog`].
    Bugs(Vec<BugReport>),
}

impl OracleVerdict {
    /// Did the oracle actually exercise the statement (pass or bug)?
    pub fn executed(&self) -> bool {
        !matches!(self, OracleVerdict::Skip)
    }

    /// The reports of a bug verdict; empty for pass/skip. For drivers (like
    /// corpus re-verification) that only care *which* bugs fired, not
    /// whether the statement counted as tested.
    pub fn into_bugs(self) -> Vec<BugReport> {
        match self {
            OracleVerdict::Bugs(reports) => reports,
            OracleVerdict::Pass | OracleVerdict::Skip => Vec::new(),
        }
    }
}

/// A pluggable test oracle: one statement in, a verdict out.
pub trait Oracle {
    /// Display name ("TQS", "PQS", "differential-vs-…"); used as the `tool`
    /// column of [`crate::tqs::RunStats`].
    fn name(&self) -> &str;

    /// Check `stmt` against `conn`. Implementations may execute the
    /// statement any number of times, on any plans, or on backends they own.
    fn check(&mut self, stmt: &SelectStmt, conn: &mut dyn DbmsConnector) -> OracleVerdict;

    /// Cumulative count of optimizer-enumerated plans this oracle has
    /// executed — the paper's coverage unit. Plan-unaware oracles report 0
    /// (their hint-set transformations are counted elsewhere).
    fn plans_enumerated(&self) -> usize {
        0
    }
}

/// The TQS oracle (Algorithm 1 lines 11-15): transform the query into every
/// hint set of the backend's dialect, execute each, and verify every result
/// against the wide-table ground truth.
pub struct TqsOracle {
    dsg: Arc<DsgDatabase>,
    minimize: bool,
}

impl TqsOracle {
    /// Standalone constructor (clones the DSG once). Prefer
    /// [`shared`](Self::shared) when the caller already holds the database
    /// behind an `Arc` — a session or a worker fleet should not duplicate it.
    pub fn new(dsg: &DsgDatabase) -> Self {
        Self::shared(Arc::new(dsg.clone()))
    }

    /// Zero-copy constructor over a shared DSG database.
    pub fn shared(dsg: Arc<DsgDatabase>) -> Self {
        TqsOracle {
            dsg,
            minimize: false,
        }
    }

    /// Run the reducer on each mismatch before reporting it.
    pub fn with_minimize(mut self, minimize: bool) -> Self {
        self.minimize = minimize;
        self
    }
}

impl Oracle for TqsOracle {
    fn name(&self) -> &str {
        "TQS"
    }

    fn check(&mut self, stmt: &SelectStmt, conn: &mut dyn DbmsConnector) -> OracleVerdict {
        let gt = GroundTruthEvaluator::new(&self.dsg.db);
        let truth = match gt.evaluate(stmt) {
            Ok(t) => t,
            Err(_) => return OracleVerdict::Skip,
        };
        let info = conn.info();
        let mut executed = false;
        let mut reports = Vec::new();
        for hs in hint_sets_for(info.dialect, stmt) {
            let out = match conn.execute_with_hints(stmt, &hs) {
                Ok(o) => o,
                Err(_) => continue,
            };
            executed = true;
            if !truth.matches(&out.result) {
                let minimized = if self.minimize {
                    Some(minimize_query(stmt, &hs, conn, &gt))
                } else {
                    None
                };
                reports.push(make_report(
                    &info.name,
                    OracleKind::GroundTruth,
                    stmt,
                    &hs,
                    &truth.result,
                    &out.result,
                    out.fired.clone(),
                    minimized.as_ref(),
                ));
            }
        }
        match (executed, reports.is_empty()) {
            (false, _) => OracleVerdict::Skip,
            (true, true) => OracleVerdict::Pass,
            (true, false) => OracleVerdict::Bugs(reports),
        }
    }
}

/// The `TQS!GT` ablation oracle: the same hint-set transformations, but
/// verified against the default plan's result instead of the ground truth —
/// plain single-engine differential testing. It keeps the DSG only to skip
/// the statements whose ground truth is unsupported, so the ablation runs on
/// exactly the same query population as full TQS.
pub struct PlanDiffOracle {
    dsg: Arc<DsgDatabase>,
}

impl PlanDiffOracle {
    /// Standalone constructor (clones the DSG once); see
    /// [`shared`](Self::shared).
    pub fn new(dsg: &DsgDatabase) -> Self {
        Self::shared(Arc::new(dsg.clone()))
    }

    /// Zero-copy constructor over a shared DSG database.
    pub fn shared(dsg: Arc<DsgDatabase>) -> Self {
        PlanDiffOracle { dsg }
    }
}

impl Oracle for PlanDiffOracle {
    fn name(&self) -> &str {
        "TQS!GT"
    }

    fn check(&mut self, stmt: &SelectStmt, conn: &mut dyn DbmsConnector) -> OracleVerdict {
        let gt = GroundTruthEvaluator::new(&self.dsg.db);
        if gt.evaluate(stmt).is_err() {
            return OracleVerdict::Skip;
        }
        let info = conn.info();
        let mut outcomes = Vec::new();
        for hs in hint_sets_for(info.dialect, stmt) {
            if let Ok(out) = conn.execute_with_hints(stmt, &hs) {
                outcomes.push((hs, out));
            }
        }
        if outcomes.is_empty() {
            return OracleVerdict::Skip;
        }
        let (_, base) = &outcomes[0];
        let mut reports = Vec::new();
        for (hs, out) in &outcomes[1..] {
            if !base.result.same_bag(&out.result) {
                reports.push(make_report(
                    &info.name,
                    OracleKind::Differential,
                    stmt,
                    hs,
                    &base.result,
                    &out.result,
                    out.fired.clone(),
                    None,
                ));
            }
        }
        if reports.is_empty() {
            OracleVerdict::Pass
        } else {
            OracleVerdict::Bugs(reports)
        }
    }
}

/// The PQS oracle: the rows of the base table satisfying the pivot predicate
/// must appear in the result (checked in bag subset mode against the stored
/// table, no ground-truth machinery). Only *pivot-shaped* statements — a
/// single-table scan projecting plain columns, no subqueries/aggregates/
/// DISTINCT/LIMIT — are checkable; anything else is skipped, which is
/// exactly why PQS's structural diversity stays low in Figure 8.
pub struct PqsOracle {
    dsg: Arc<DsgDatabase>,
}

impl PqsOracle {
    /// Standalone constructor (clones the DSG once); see
    /// [`shared`](Self::shared).
    pub fn new(dsg: &DsgDatabase) -> Self {
        Self::shared(Arc::new(dsg.clone()))
    }

    /// Zero-copy constructor over a shared DSG database.
    pub fn shared(dsg: Arc<DsgDatabase>) -> Self {
        PqsOracle { dsg }
    }

    /// Is the statement a pivot query the PQS check is sound for?
    fn pivot_shaped(stmt: &SelectStmt) -> bool {
        let base = stmt.from.base.binding();
        stmt.from.joins.is_empty()
            && !stmt.has_subquery()
            && !stmt.has_aggregates()
            && stmt.group_by.is_empty()
            && !stmt.distinct
            && stmt.limit.is_none()
            && stmt.items.iter().all(|i| match i {
                SelectItem::Expr {
                    expr: Expr::Column(c),
                    ..
                } => c
                    .table
                    .as_ref()
                    .map(|t| t.eq_ignore_ascii_case(base))
                    .unwrap_or(true),
                _ => false,
            })
    }
}

impl Oracle for PqsOracle {
    fn name(&self) -> &str {
        "PQS"
    }

    fn check(&mut self, stmt: &SelectStmt, conn: &mut dyn DbmsConnector) -> OracleVerdict {
        if !Self::pivot_shaped(stmt) {
            return OracleVerdict::Skip;
        }
        let out = match conn.execute(stmt) {
            Ok(o) => o,
            Err(_) => return OracleVerdict::Skip,
        };
        let base = &stmt.from.base.table;
        let Some(table) = self.dsg.db.catalog.table(base) else {
            return OracleVerdict::Skip;
        };
        // Recompute the expected pivot values straight from the stored table.
        let expected_rows: Vec<Row> = table
            .rows
            .iter()
            .filter(|r| match &stmt.where_clause {
                Some(w) => {
                    let scope: Vec<(String, String, Value)> = table
                        .columns
                        .iter()
                        .zip(&r.values)
                        .map(|(c, v)| (base.clone(), c.name.clone(), v.clone()))
                        .collect();
                    let resolver = tqs_sql::eval::ScopedRow::new(&scope);
                    tqs_sql::eval::eval_predicate(w, &resolver, &tqs_sql::eval::NoSubqueries)
                        .ok()
                        .flatten()
                        == Some(true)
                }
                None => true,
            })
            .map(|r| {
                Row::new(
                    stmt.items
                        .iter()
                        .filter_map(|i| match i {
                            SelectItem::Expr {
                                expr: Expr::Column(c),
                                ..
                            } => table.column_index(&c.column).map(|idx| r.get(idx).clone()),
                            _ => None,
                        })
                        .collect(),
                )
            })
            .collect();
        let expected = ResultSet {
            columns: vec![],
            rows: expected_rows,
        };
        if !expected.subset_of(&out.result) {
            OracleVerdict::Bugs(vec![make_report(
                &conn.info().name,
                OracleKind::PivotMissing,
                stmt,
                &HintSet::new("default"),
                &expected,
                &out.result,
                out.fired.clone(),
                None,
            )])
        } else {
            OracleVerdict::Pass
        }
    }
}

/// The TLP oracle: |Q ∧ p| + |Q ∧ ¬p| + |Q ∧ p IS NULL| must equal |Q|.
pub struct TlpOracle;

impl Oracle for TlpOracle {
    fn name(&self) -> &str {
        "TLP"
    }

    fn check(&mut self, stmt: &SelectStmt, conn: &mut dyn DbmsConnector) -> OracleVerdict {
        let base = match conn.execute(stmt) {
            Ok(o) => o,
            Err(_) => return OracleVerdict::Skip,
        };
        // partitioning predicate over a projected column
        let Some(col) = stmt.items.iter().find_map(|i| match i {
            SelectItem::Expr {
                expr: Expr::Column(c),
                ..
            } => Some(c.clone()),
            _ => None,
        }) else {
            return OracleVerdict::Skip;
        };
        let p = Expr::binary(
            BinOp::Ge,
            Expr::Column(col.clone()),
            Expr::lit(Value::Int(0)),
        );
        let mut total = 0usize;
        for variant in [p.clone(), Expr::not(p.clone()), Expr::is_null(p.clone())] {
            let mut q = stmt.clone();
            q.where_clause = Some(match &q.where_clause {
                Some(w) => Expr::and(w.clone(), variant),
                None => variant,
            });
            let out = match conn.execute(&q) {
                Ok(o) => o,
                Err(_) => return OracleVerdict::Skip,
            };
            total += out.result.row_count();
        }
        if total != base.result.row_count() {
            OracleVerdict::Bugs(vec![make_report(
                &conn.info().name,
                OracleKind::Partitioning,
                stmt,
                &HintSet::new("tlp-partitions"),
                &base.result,
                &base.result,
                base.fired.clone(),
                None,
            )])
        } else {
            OracleVerdict::Pass
        }
    }
}

/// The NoRec oracle: the optimized query and a de-optimized execution (nested
/// loops, no semi-join transformation, no materialization) must agree.
pub struct NorecOracle;

impl Oracle for NorecOracle {
    fn name(&self) -> &str {
        "NoRec"
    }

    fn check(&mut self, stmt: &SelectStmt, conn: &mut dyn DbmsConnector) -> OracleVerdict {
        let optimized = match conn.execute(stmt) {
            Ok(o) => o,
            Err(_) => return OracleVerdict::Skip,
        };
        let tables: Vec<String> = stmt
            .from
            .tables()
            .iter()
            .map(|t| t.binding().to_string())
            .collect();
        let deopt = HintSet::new("norec-deopt")
            .with_hint(Hint::NlJoin(tables))
            .with_hint(Hint::NoSemiJoin)
            .with_hint(Hint::Materialization(false));
        let reference = match conn.execute_with_hints(stmt, &deopt) {
            Ok(o) => o,
            Err(_) => return OracleVerdict::Skip,
        };
        if !optimized.result.same_bag(&reference.result) {
            let mut fired = optimized.fired.clone();
            fired.extend(reference.fired.clone());
            OracleVerdict::Bugs(vec![make_report(
                &conn.info().name,
                OracleKind::NonOptimizingRewrite,
                stmt,
                &deopt,
                &reference.result,
                &optimized.result,
                fired,
                None,
            )])
        } else {
            OracleVerdict::Pass
        }
    }
}

/// The plan-space oracle: enumerate the statement's full optimizer plan
/// space ([`tqs_optimizer::PlanSpace`]) and require **every** enumerated plan
/// to agree with the wide-table ground truth (and therefore with every other
/// plan). Three further checks ride along:
///
/// * **Hint conformance** — the hint set a plan executed with must be the
///   one the enumerator intended for it (the memo-collision fault seeds
///   violations).
/// * **Cost sanity** — the cost-model pick (`plans[0]`) must not cost more
///   than any other enumerated plan. On a pristine optimizer this is
///   guaranteed (the DP minimizes over the entire order space and algorithm
///   factors are ≥ 1); the inverted-comparison and stale-cardinality faults
///   make it observable without a single wrong row.
/// * **Baseline anchor** — the *original* statement runs once, unhinted,
///   under the label `plan-baseline`. Every report carries that label and
///   the original SQL, so corpus re-verification replays resolve (the
///   recorded trace always contains the anchor), while the plan identity
///   travels in the report's fingerprint.
///
/// Which optimizer fault complement to enumerate under comes from the
/// backend itself ([`crate::backend::ConnectorInfo::seeded_faults`]): faulty
/// builds get the seeded [`FaultKind::OPTIMIZER`] complement, pristine
/// builds a pristine enumerator. Enumeration is a pure function of
/// `(statement, catalog, fault set)`, so hunt, witness replay and
/// re-verification walk the identical space.
pub struct PlanSpaceOracle {
    dsg: Arc<DsgDatabase>,
    /// Explicit fault-complement override; `None` derives it from the
    /// connector's `seeded_faults` flag.
    faults: Option<FaultSet>,
    plans: usize,
}

/// The hint label anchoring every plan-space report (and the one unhinted
/// execution of the original statement) in witness traces.
pub const PLAN_BASELINE_LABEL: &str = "plan-baseline";

impl PlanSpaceOracle {
    /// Standalone constructor (clones the DSG once); see
    /// [`shared`](Self::shared).
    pub fn new(dsg: &DsgDatabase) -> Self {
        Self::shared(Arc::new(dsg.clone()))
    }

    /// Zero-copy constructor over a shared DSG database.
    pub fn shared(dsg: Arc<DsgDatabase>) -> Self {
        PlanSpaceOracle {
            dsg,
            faults: None,
            plans: 0,
        }
    }

    /// Enumerate under an explicit optimizer fault complement instead of
    /// deriving it from the connector (tests and triage drivers).
    pub fn with_faults(mut self, faults: FaultSet) -> Self {
        self.faults = Some(faults);
        self
    }

    /// A copy of `hints` re-labelled with the baseline anchor, so the report
    /// keeps the plan's hint text while re-verification keys on the anchor.
    fn anchored(hints: &HintSet) -> HintSet {
        let mut hs = hints.clone();
        hs.label = PLAN_BASELINE_LABEL.to_string();
        hs
    }
}

impl Oracle for PlanSpaceOracle {
    fn name(&self) -> &str {
        "TQS-plan-space"
    }

    fn plans_enumerated(&self) -> usize {
        self.plans
    }

    fn check(&mut self, stmt: &SelectStmt, conn: &mut dyn DbmsConnector) -> OracleVerdict {
        let gt = GroundTruthEvaluator::new(&self.dsg.db);
        let truth = match gt.evaluate(stmt) {
            Ok(t) => t,
            Err(_) => return OracleVerdict::Skip,
        };
        let info = conn.info();
        let seeded = match &self.faults {
            Some(f) => f.clone(),
            None if info.seeded_faults => FaultSet::of(&FaultKind::OPTIMIZER),
            None => FaultSet::none(),
        };
        let space = PlanSpace::enumerate(stmt, &self.dsg.db.catalog, &seeded);

        // Baseline anchor: the original statement, unhinted. A backend that
        // cannot execute it cannot be meaningfully plan-hunted.
        let baseline_hints = HintSet::new(PLAN_BASELINE_LABEL);
        let Ok(baseline) = conn.execute_with_hints(stmt, &baseline_hints) else {
            return OracleVerdict::Skip;
        };
        let mut reports = Vec::new();
        if !truth.matches(&baseline.result) {
            reports.push(make_report(
                &info.name,
                OracleKind::PlanSpace,
                stmt,
                &baseline_hints,
                &truth.result,
                &baseline.result,
                baseline.fired.clone(),
                None,
            ));
        }

        for plan in &space.plans {
            let Ok(out) = conn.execute_with_hints(&space.stmt, &plan.hints) else {
                continue;
            };
            self.plans += 1;
            if !truth.matches(&out.result) {
                let mut fired = out.fired.clone();
                fired.extend(space.rewrite_fired.iter().copied());
                fired.extend(plan.fired.iter().copied());
                let mut r = make_report(
                    &info.name,
                    OracleKind::PlanSpace,
                    stmt,
                    &Self::anchored(&plan.hints),
                    &truth.result,
                    &out.result,
                    fired,
                    None,
                );
                r.set_fingerprint(Some(plan.fingerprint));
                reports.push(r);
            } else if plan.hints != plan.intended {
                // Right rows, wrong plan: the memo served another plan's
                // hint set. A result-blind conformance violation.
                let mut r = make_report(
                    &info.name,
                    OracleKind::PlanSpace,
                    stmt,
                    &Self::anchored(&plan.intended),
                    &truth.result,
                    &out.result,
                    plan.fired.clone(),
                    None,
                );
                r.set_fingerprint(Some(plan.fingerprint));
                reports.push(r);
            }
        }

        // Cost sanity: the pick must be the cheapest member of its own space.
        if space.best().cost > space.min_cost() + 1e-9 {
            let best = space.best();
            let mut r = make_report(
                &info.name,
                OracleKind::PlanSpace,
                stmt,
                &Self::anchored(&best.hints),
                &truth.result,
                &truth.result,
                space.cost_fired.clone(),
                None,
            );
            r.set_fingerprint(Some(best.fingerprint));
            reports.push(r);
        }

        if reports.is_empty() {
            OracleVerdict::Pass
        } else {
            OracleVerdict::Bugs(reports)
        }
    }
}

/// Cross-engine differential testing: execute every hint-set transformation
/// of the statement on the backend under test *and* on one or more
/// independent engine builds owned by the oracle, and report any divergence
/// from the panel's majority answer.
///
/// With pairwise-disjoint fault complements (row engine's Table 4 faults,
/// the columnar engine's batching faults, the disk engine's storage faults) a
/// pristine reference acts as a ground-truth stand-in, and a panel of two
/// references ([`DifferentialOracle::panel`]) gives three-way differential
/// testing: the build under test is flagged when it leaves the majority. This
/// is the first oracle that *requires* the trait: it owns whole connectors,
/// not just a per-query check.
pub struct DifferentialOracle {
    references: Vec<Box<dyn DbmsConnector>>,
    name: String,
}

impl DifferentialOracle {
    /// `reference` must already have the catalog under test loaded (e.g. via
    /// [`crate::backend::EngineConnector::connect_columnar_pristine`]).
    pub fn new(reference: impl DbmsConnector + 'static) -> Self {
        Self::boxed(Box::new(reference))
    }

    pub fn boxed(reference: Box<dyn DbmsConnector>) -> Self {
        Self::panel(vec![reference])
    }

    /// A panel of reference connectors (each with the catalog already
    /// loaded). The build under test is reported when its answer diverges
    /// from the result the largest group of references agrees on.
    pub fn panel(references: Vec<Box<dyn DbmsConnector>>) -> Self {
        assert!(
            !references.is_empty(),
            "a panel needs at least one reference"
        );
        let name = format!(
            "differential-vs-{}",
            references
                .iter()
                .map(|r| r.info().name)
                .collect::<Vec<_>>()
                .join("+")
        );
        DifferentialOracle { references, name }
    }

    /// The first reference connector (e.g. to load a catalog or inspect a
    /// trace).
    pub fn reference_mut(&mut self) -> &mut dyn DbmsConnector {
        self.references[0].as_mut()
    }

    pub fn reference_count(&self) -> usize {
        self.references.len()
    }
}

impl Oracle for DifferentialOracle {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&mut self, stmt: &SelectStmt, conn: &mut dyn DbmsConnector) -> OracleVerdict {
        let info = conn.info();
        let mut executed = false;
        let mut reports = Vec::new();
        'hints: for hs in hint_sets_for(info.dialect, stmt) {
            let Ok(out) = conn.execute_with_hints(stmt, &hs) else {
                continue;
            };
            let mut refs = Vec::with_capacity(self.references.len());
            for r in self.references.iter_mut() {
                match r.execute_with_hints(stmt, &hs) {
                    Ok(o) => refs.push(o),
                    Err(_) => continue 'hints,
                }
            }
            executed = true;
            // The expected answer is the result the largest group of
            // references agrees on (ties break toward the earlier one).
            let majority = refs
                .iter()
                .map(|cand| {
                    refs.iter()
                        .filter(|o| o.result.same_bag(&cand.result))
                        .count()
                })
                .collect::<Vec<_>>();
            let best = (0..refs.len())
                .max_by_key(|&i| (majority[i], std::cmp::Reverse(i)))
                .expect("non-empty panel");
            let expected = &refs[best];
            if !expected.result.same_bag(&out.result) {
                let mut fired = out.fired.clone();
                for r in &refs {
                    fired.extend(r.fired.clone());
                }
                reports.push(make_report(
                    &info.name,
                    OracleKind::CrossEngine,
                    stmt,
                    &hs,
                    &expected.result,
                    &out.result,
                    fired,
                    None,
                ));
            }
        }
        match (executed, reports.is_empty()) {
            (false, _) => OracleVerdict::Skip,
            (true, true) => OracleVerdict::Pass,
            (true, false) => OracleVerdict::Bugs(reports),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::EngineConnector;
    use crate::dsg::{DsgConfig, WideSource};
    use tqs_engine::ProfileId;
    use tqs_schema::NoiseConfig;
    use tqs_sql::parser::parse_stmt;
    use tqs_storage::widegen::ShoppingConfig;

    fn dsg() -> DsgDatabase {
        DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 120,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 11,
                max_injections: 12,
            }),
        })
    }

    fn sample_queries(d: &DsgDatabase, n: usize) -> Vec<SelectStmt> {
        use crate::dsg::{QueryGenerator, UniformScorer};
        let mut gen = QueryGenerator::new(Default::default());
        (0..n)
            .map(|_| gen.generate(d, None, &UniformScorer))
            .collect()
    }

    #[test]
    fn tqs_oracle_passes_on_pristine_and_flags_faulty() {
        let d = dsg();
        let mut oracle = TqsOracle::new(&d);
        let mut pristine = EngineConnector::connect_pristine(ProfileId::MysqlLike, &d);
        let mut faulty = EngineConnector::connect(ProfileId::MysqlLike, &d);
        let mut bugs = 0;
        for stmt in sample_queries(&d, 60) {
            if let OracleVerdict::Bugs(r) = oracle.check(&stmt, &mut pristine) {
                panic!("false positive on pristine: {r:#?}");
            }
            if let OracleVerdict::Bugs(r) = oracle.check(&stmt, &mut faulty) {
                bugs += r.len();
            }
        }
        assert!(bugs > 0, "TQS oracle found nothing on a faulty build");
        assert_eq!(oracle.name(), "TQS");
    }

    #[test]
    fn baseline_oracles_are_sound_on_pristine_builds() {
        let d = dsg();
        let mut conn = EngineConnector::connect_pristine(ProfileId::TidbLike, &d);
        let mut oracles: Vec<Box<dyn Oracle>> = vec![
            Box::new(PqsOracle::new(&d)),
            Box::new(TlpOracle),
            Box::new(NorecOracle),
            Box::new(PlanDiffOracle::new(&d)),
        ];
        for stmt in sample_queries(&d, 30) {
            for o in oracles.iter_mut() {
                if let OracleVerdict::Bugs(r) = o.check(&stmt, &mut conn) {
                    panic!("{} false positive: {r:#?}", o.name());
                }
            }
        }
    }

    #[test]
    fn differential_oracle_passes_when_both_engines_are_pristine() {
        let d = dsg();
        let mut oracle = DifferentialOracle::new(EngineConnector::connect_columnar_pristine(
            ProfileId::MysqlLike,
            &d,
        ));
        assert!(oracle.name().contains("columnar"));
        let mut conn = EngineConnector::connect_pristine(ProfileId::MysqlLike, &d);
        let mut executed = 0;
        for stmt in sample_queries(&d, 40) {
            match oracle.check(&stmt, &mut conn) {
                OracleVerdict::Bugs(r) => panic!("pristine engines diverged: {r:#?}"),
                OracleVerdict::Pass => executed += 1,
                OracleVerdict::Skip => {}
            }
        }
        assert!(executed > 20, "only {executed} statements executed");
    }

    #[test]
    fn three_way_panel_is_sound_on_pristine_and_flags_a_faulty_disk_build() {
        let d = dsg();
        let panel = || {
            DifferentialOracle::panel(vec![
                Box::new(EngineConnector::connect_pristine(ProfileId::MysqlLike, &d))
                    as Box<dyn DbmsConnector>,
                Box::new(EngineConnector::connect_columnar_pristine(
                    ProfileId::MysqlLike,
                    &d,
                )),
            ])
        };
        let mut oracle = panel();
        assert_eq!(oracle.reference_count(), 2);
        assert!(oracle.name().contains('+'));
        // Sound on a pristine disk build...
        let mut pristine = EngineConnector::connect_disk_pristine(ProfileId::MysqlLike, &d);
        let mut executed = 0;
        for stmt in sample_queries(&d, 40) {
            match oracle.check(&stmt, &mut pristine) {
                OracleVerdict::Bugs(r) => panic!("pristine engines diverged: {r:#?}"),
                OracleVerdict::Pass => executed += 1,
                OracleVerdict::Skip => {}
            }
        }
        assert!(executed > 20, "only {executed} statements executed");
        // ...and the faulty disk build leaves the majority.
        let mut oracle = panel();
        let mut faulty = EngineConnector::connect_disk(ProfileId::MysqlLike, &d);
        let mut bugs = Vec::new();
        for stmt in sample_queries(&d, 120) {
            if let OracleVerdict::Bugs(r) = oracle.check(&stmt, &mut faulty) {
                bugs.extend(r);
            }
        }
        assert!(!bugs.is_empty(), "three-way panel never fired");
        assert!(bugs
            .iter()
            .flat_map(|b| &b.fired)
            .all(|f| f.dbms() == "Disk"));
    }

    #[test]
    fn oracle_driven_minimizer_shrinks_a_cross_engine_reproducer() {
        let d = dsg();
        let mut oracle = DifferentialOracle::new(EngineConnector::connect_columnar_pristine(
            ProfileId::TidbLike,
            &d,
        ));
        let mut conn = EngineConnector::connect(ProfileId::TidbLike, &d);
        for stmt in sample_queries(&d, 120) {
            if matches!(oracle.check(&stmt, &mut conn), OracleVerdict::Bugs(_)) {
                let minimized = crate::bugs::minimize_with_oracle(&stmt, &mut oracle, &mut conn);
                assert!(minimized.from.joins.len() <= stmt.from.joins.len());
                assert!(matches!(
                    oracle.check(&minimized, &mut conn),
                    OracleVerdict::Bugs(_)
                ));
                return;
            }
        }
        panic!("cross-engine differential oracle never fired on a faulty build");
    }

    #[test]
    fn verdict_executed_flag() {
        assert!(OracleVerdict::Pass.executed());
        assert!(OracleVerdict::Bugs(Vec::new()).executed());
        assert!(!OracleVerdict::Skip.executed());
    }

    #[test]
    fn tlp_skips_aggregates_without_projected_columns() {
        let d = dsg();
        let mut conn = EngineConnector::connect_pristine(ProfileId::MysqlLike, &d);
        let table = &d.db.metas[0].name;
        let stmt = parse_stmt(&format!("SELECT COUNT(*) AS c FROM {table}")).unwrap();
        assert!(matches!(
            TlpOracle.check(&stmt, &mut conn),
            OracleVerdict::Skip
        ));
    }
}
