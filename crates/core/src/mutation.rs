//! Mutation workloads: DML + transactions with a delta-maintained ground
//! truth.
//!
//! Three pieces make mutation testing a first-class axis next to SELECT
//! hunting:
//!
//! * [`MutationGroundTruth`] — an independent reference implementation of
//!   the DML semantics that maintains its state *incrementally*: every
//!   mutation applies a delta and records its exact inverse in a
//!   transaction undo log; `ROLLBACK` replays the undo log backwards and
//!   `COMMIT` drops it. The committed view is derived by applying the
//!   pending undo entries to the live state — the ground truth is never
//!   rebuilt from scratch (the delta-vs-rebuild proptest proves the two
//!   agree after every statement).
//! * [`DmlGenerator`] — a seeded generator of mutation *programs*:
//!   interleavings of INSERT / UPDATE / DELETE and well-formed
//!   BEGIN … COMMIT/ROLLBACK blocks, with literals drawn from the DSG value
//!   pools so statements are admissible and predicates are selective.
//! * [`DmlOracle`] — runs a program on any [`DbmsConnector`] and verifies
//!   every statement's `rows_affected` and every touched table's final
//!   committed state against the ground truth, reporting divergences as
//!   [`OracleKind::Mutation`] bugs with full fault provenance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tqs_sql::ast::{
    Assignment, BinOp, DeleteStmt, DmlStmt, Expr, InsertStmt, SelectItem, SelectStmt, UpdateStmt,
};
use tqs_sql::eval::{eval_expr, eval_predicate, NoSubqueries, SliceRow};
use tqs_sql::hints::HintSet;
use tqs_sql::render::render_program;
use tqs_sql::value::Value;
use tqs_storage::{Catalog, ResultSet, Row};

use crate::backend::DbmsConnector;
use crate::bugs::{BugReport, OracleKind};
use crate::dsg::DsgDatabase;
use crate::oracle::OracleVerdict;

/// The rows of one table with their stable identities: `(row id, values)`.
pub type IdentityRows = Vec<(u64, Vec<Value>)>;

/// The hint-set label the mutation oracle executes its verification SELECTs
/// under, so recorded witness traces key them apart from hunt queries.
pub const DML_VERIFY_LABEL: &str = "dml-verify";

/// One table's reference state: rows tagged with stable identities assigned
/// at load/insert time, in engine order.
#[derive(Debug, Clone, PartialEq)]
struct TableState {
    name: String,
    /// `(row identity, values)` — the identity is the witness that rollback
    /// restores *the same rows*, not merely equal-looking ones.
    rows: Vec<(u64, Vec<Value>)>,
}

/// One inverse delta in the transaction undo log. Indices are positions at
/// the moment the forward op applied, so replaying the log *backwards*
/// restores the pre-transaction state exactly (the same invariant as
/// [`tqs_engine::DmlOp`]).
#[derive(Debug, Clone)]
enum Undo {
    /// Inverse of an insert: remove the row at `at`.
    Insert { table: usize, at: usize },
    /// Inverse of an update: restore the old values at `at`.
    Update {
        table: usize,
        at: usize,
        old: Vec<Value>,
    },
    /// Inverse of a delete: re-insert the identified row at `at`.
    Delete {
        table: usize,
        at: usize,
        id: u64,
        old: Vec<Value>,
    },
}

/// Delta-maintained reference state for mutation workloads.
///
/// Semantics mirror the pristine engine exactly: INSERT evaluates constant
/// VALUES (missing columns become NULL) and type-checks against the column,
/// UPDATE matches rows with the three-valued-logic reference evaluator and
/// every SET expression sees the pre-update row, DELETE removes matching
/// rows. Statements are atomic: any error leaves the state untouched.
#[derive(Debug, Clone)]
pub struct MutationGroundTruth {
    /// Column metadata (types, arity) — row data lives in `tables`.
    schema: Catalog,
    tables: Vec<TableState>,
    next_id: u64,
    /// `Some` inside a transaction: the inverse of every op applied since
    /// BEGIN, in application order.
    undo: Option<Vec<Undo>>,
}

impl MutationGroundTruth {
    /// Capture the catalog's current rows as the committed starting state.
    pub fn new(catalog: &Catalog) -> Self {
        let mut next_id = 0u64;
        let tables = catalog
            .iter()
            .map(|t| TableState {
                name: t.name.clone(),
                rows: t
                    .rows
                    .iter()
                    .map(|r| {
                        next_id += 1;
                        (next_id, r.values.clone())
                    })
                    .collect(),
            })
            .collect();
        MutationGroundTruth {
            schema: catalog.clone(),
            tables,
            next_id,
            undo: None,
        }
    }

    pub fn in_txn(&self) -> bool {
        self.undo.is_some()
    }

    fn table_idx(&self, name: &str) -> Result<usize, String> {
        self.tables
            .iter()
            .position(|t| t.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown table {name}"))
    }

    /// The live (in-transaction) rows of a table, identities included.
    pub fn visible_rows(&self, table: &str) -> Result<&[(u64, Vec<Value>)], String> {
        Ok(&self.tables[self.table_idx(table)?].rows)
    }

    /// The committed rows of a table: the live state with the open
    /// transaction's deltas *undone* — derived by inverse application, never
    /// by re-running statements.
    pub fn committed_rows(&self, table: &str) -> Result<Vec<(u64, Vec<Value>)>, String> {
        let ti = self.table_idx(table)?;
        let mut rows = self.tables[ti].rows.clone();
        if let Some(undo) = &self.undo {
            for u in undo.iter().rev() {
                match u {
                    Undo::Insert { table, at } if *table == ti && *at < rows.len() => {
                        rows.remove(*at);
                    }
                    Undo::Update { table, at, old } if *table == ti => {
                        if let Some(r) = rows.get_mut(*at) {
                            r.1 = old.clone();
                        }
                    }
                    Undo::Delete { table, at, id, old } if *table == ti => {
                        let at = (*at).min(rows.len());
                        rows.insert(at, (*id, old.clone()));
                    }
                    _ => {}
                }
            }
        }
        Ok(rows)
    }

    /// The committed state of a table as a [`ResultSet`] (for bag comparison
    /// against a `SELECT *` from the backend).
    pub fn committed_result(&self, table: &str) -> Result<ResultSet, String> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| format!("unknown table {table}"))?;
        let mut rs = ResultSet::new(t.column_names());
        for (_, values) in self.committed_rows(table)? {
            rs.rows.push(Row::new(values));
        }
        Ok(rs)
    }

    /// The full live state, table by table — what the delta-vs-rebuild
    /// harness compares byte-for-byte against a from-scratch replay.
    pub fn snapshot(&self) -> Vec<(String, IdentityRows)> {
        self.tables
            .iter()
            .map(|t| (t.name.clone(), t.rows.clone()))
            .collect()
    }

    /// Apply one statement, returning the number of rows affected. Errors
    /// leave the state exactly as it was.
    pub fn apply(&mut self, stmt: &DmlStmt) -> Result<usize, String> {
        match stmt {
            DmlStmt::Begin => {
                if self.undo.is_some() {
                    return Err("BEGIN inside an open transaction".into());
                }
                self.undo = Some(Vec::new());
                Ok(0)
            }
            DmlStmt::Commit => {
                if self.undo.take().is_none() {
                    return Err("COMMIT without an open transaction".into());
                }
                Ok(0)
            }
            DmlStmt::Rollback => {
                let Some(undo) = self.undo.take() else {
                    return Err("ROLLBACK without an open transaction".into());
                };
                for u in undo.iter().rev() {
                    match u {
                        Undo::Insert { table, at } => {
                            self.tables[*table].rows.remove(*at);
                        }
                        Undo::Update { table, at, old } => {
                            self.tables[*table].rows[*at].1 = old.clone();
                        }
                        Undo::Delete { table, at, id, old } => {
                            self.tables[*table].rows.insert(*at, (*id, old.clone()));
                        }
                    }
                }
                Ok(0)
            }
            DmlStmt::Insert(i) => self.apply_insert(i),
            DmlStmt::Update(u) => self.apply_update(u),
            DmlStmt::Delete(d) => self.apply_delete(d),
        }
    }

    fn push_undo(&mut self, u: Undo) {
        if let Some(undo) = &mut self.undo {
            undo.push(u);
        }
    }

    fn apply_insert(&mut self, stmt: &InsertStmt) -> Result<usize, String> {
        let ti = self.table_idx(&stmt.table)?;
        let schema = self
            .schema
            .table(&stmt.table)
            .ok_or_else(|| format!("unknown table {}", stmt.table))?;
        let mut col_indices = Vec::with_capacity(stmt.columns.len());
        for c in &stmt.columns {
            col_indices.push(
                schema
                    .column_index(c)
                    .ok_or_else(|| format!("unknown column {c} in {}", stmt.table))?,
            );
        }
        let scope = SliceRow::new(&[], &[]);
        let mut rows = Vec::with_capacity(stmt.rows.len());
        for exprs in &stmt.rows {
            let mut values = vec![Value::Null; schema.columns.len()];
            for (ci, e) in col_indices.iter().zip(exprs) {
                values[*ci] = eval_expr(e, &scope, &NoSubqueries).map_err(|e| e.to_string())?;
            }
            for (v, c) in values.iter().zip(&schema.columns) {
                if !c.ty.admits(v) {
                    return Err(format!("value {v} not admitted by column {}", c.name));
                }
            }
            rows.push(values);
        }
        let n = rows.len();
        for values in rows {
            self.next_id += 1;
            let id = self.next_id;
            let at = self.tables[ti].rows.len();
            self.tables[ti].rows.push((id, values));
            self.push_undo(Undo::Insert { table: ti, at });
        }
        Ok(n)
    }

    fn apply_update(&mut self, stmt: &UpdateStmt) -> Result<usize, String> {
        let ti = self.table_idx(&stmt.table)?;
        let schema = self
            .schema
            .table(&stmt.table)
            .ok_or_else(|| format!("unknown table {}", stmt.table))?;
        let mut set_cols = Vec::with_capacity(stmt.set.len());
        for a in &stmt.set {
            let ci = schema
                .column_index(&a.column)
                .ok_or_else(|| format!("unknown column {} in {}", a.column, stmt.table))?;
            set_cols.push((ci, &a.value));
        }
        let matched = self.matching(ti, schema, stmt.where_clause.as_ref())?;
        let cols: Vec<(String, String)> = schema
            .columns
            .iter()
            .map(|c| (schema.name.clone(), c.name.clone()))
            .collect();
        // Two-phase: evaluate every new row against the pre-statement state,
        // then apply — a failed SET leaves nothing half-written.
        let mut writes = Vec::with_capacity(matched.len());
        for &at in &matched {
            let old = self.tables[ti].rows[at].1.clone();
            let mut new = old.clone();
            let scope = SliceRow::new(&cols, &old);
            for (ci, e) in &set_cols {
                let v = eval_expr(e, &scope, &NoSubqueries).map_err(|e| e.to_string())?;
                if !schema.columns[*ci].ty.admits(&v) {
                    return Err(format!(
                        "value {v} not admitted by column {}",
                        schema.columns[*ci].name
                    ));
                }
                new[*ci] = v;
            }
            writes.push((at, old, new));
        }
        let n = writes.len();
        for (at, old, new) in writes {
            self.tables[ti].rows[at].1 = new;
            self.push_undo(Undo::Update { table: ti, at, old });
        }
        Ok(n)
    }

    fn apply_delete(&mut self, stmt: &DeleteStmt) -> Result<usize, String> {
        let ti = self.table_idx(&stmt.table)?;
        let schema = self
            .schema
            .table(&stmt.table)
            .ok_or_else(|| format!("unknown table {}", stmt.table))?;
        let matched = self.matching(ti, schema, stmt.where_clause.as_ref())?;
        let n = matched.len();
        for (removed, &i) in matched.iter().enumerate() {
            let at = i - removed;
            let (id, old) = self.tables[ti].rows.remove(at);
            self.push_undo(Undo::Delete {
                table: ti,
                at,
                id,
                old,
            });
        }
        Ok(n)
    }

    /// Row positions whose WHERE predicate is *true* (3VL), against the
    /// pre-statement state.
    fn matching(
        &self,
        ti: usize,
        schema: &tqs_storage::Table,
        where_clause: Option<&Expr>,
    ) -> Result<Vec<usize>, String> {
        let rows = &self.tables[ti].rows;
        let Some(pred) = where_clause else {
            return Ok((0..rows.len()).collect());
        };
        let cols: Vec<(String, String)> = schema
            .columns
            .iter()
            .map(|c| (schema.name.clone(), c.name.clone()))
            .collect();
        let mut out = Vec::new();
        for (i, (_, values)) in rows.iter().enumerate() {
            let scope = SliceRow::new(&cols, values);
            if eval_predicate(pred, &scope, &NoSubqueries).map_err(|e| e.to_string())? == Some(true)
            {
                out.push(i);
            }
        }
        Ok(out)
    }
}

/// Parameters for the mutation-program generator.
#[derive(Debug, Clone)]
pub struct DmlGenConfig {
    /// Mutation statements per program (transaction control rides on top).
    pub statements: usize,
    /// Probability that the next mutation opens a BEGIN … COMMIT/ROLLBACK
    /// block of 2–4 statements instead of auto-committing.
    pub txn_probability: f64,
    /// Probability that a transaction block ends in ROLLBACK.
    pub rollback_probability: f64,
    pub seed: u64,
}

impl Default for DmlGenConfig {
    fn default() -> Self {
        DmlGenConfig {
            statements: 8,
            txn_probability: 0.4,
            rollback_probability: 0.35,
            seed: 31,
        }
    }
}

/// Seeded generator of mutation programs over a DSG database. Literals come
/// from the DSG value pools, so generated statements are admissible and
/// predicates actually select rows; every transaction block is well-formed
/// and closed, so a program always ends at a commit boundary.
pub struct DmlGenerator {
    pub cfg: DmlGenConfig,
    rng: StdRng,
}

impl DmlGenerator {
    pub fn new(cfg: DmlGenConfig) -> Self {
        let seed = cfg.seed;
        DmlGenerator {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One program: `cfg.statements` mutations, some grouped into
    /// transaction blocks.
    pub fn generate_program(&mut self, dsg: &DsgDatabase) -> Vec<DmlStmt> {
        let mut out = Vec::new();
        let mut mutations = 0usize;
        while mutations < self.cfg.statements {
            if self.rng.gen_bool(self.cfg.txn_probability) {
                out.push(DmlStmt::Begin);
                let n = self.rng.gen_range(2..=4usize);
                for _ in 0..n {
                    out.push(self.mutation(dsg));
                    mutations += 1;
                }
                out.push(if self.rng.gen_bool(self.cfg.rollback_probability) {
                    DmlStmt::Rollback
                } else {
                    DmlStmt::Commit
                });
            } else {
                out.push(self.mutation(dsg));
                mutations += 1;
            }
        }
        out
    }

    fn mutation(&mut self, dsg: &DsgDatabase) -> DmlStmt {
        let metas = &dsg.db.metas;
        let m = &metas[self.rng.gen_range(0..metas.len())];
        match self.rng.gen_range(0..10) {
            0..=3 => self.insert(dsg, &m.name, &m.columns),
            4..=7 => self.update(dsg, &m.name, &m.columns),
            _ => self.delete(dsg, &m.name, &m.columns),
        }
    }

    fn pool_value(&mut self, dsg: &DsgDatabase, table: &str, column: &str) -> Value {
        let pool = dsg.sample_values(table, column);
        if pool.is_empty() {
            return Value::Null;
        }
        pool[self.rng.gen_range(0..pool.len())].clone()
    }

    fn insert(&mut self, dsg: &DsgDatabase, table: &str, columns: &[String]) -> DmlStmt {
        let mut values = Vec::with_capacity(columns.len());
        for c in columns {
            // Mostly pool values; occasionally NULL to seed the NULL-key
            // corner cases the M2 fault needs.
            let v = if self.rng.gen_bool(0.12) {
                Value::Null
            } else {
                self.pool_value(dsg, table, c)
            };
            values.push(Expr::lit(v));
        }
        DmlStmt::Insert(InsertStmt {
            table: table.to_string(),
            columns: columns.to_vec(),
            rows: vec![values],
        })
    }

    fn update(&mut self, dsg: &DsgDatabase, table: &str, columns: &[String]) -> DmlStmt {
        let n_set = self.rng.gen_range(1..=2usize.min(columns.len()));
        let mut set = Vec::with_capacity(n_set);
        let mut used = Vec::new();
        for _ in 0..n_set {
            let c = &columns[self.rng.gen_range(0..columns.len())];
            if used.contains(c) {
                continue;
            }
            used.push(c.clone());
            let v = self.pool_value(dsg, table, c);
            set.push(Assignment {
                column: c.clone(),
                value: Expr::lit(v),
            });
        }
        let where_clause = if self.rng.gen_bool(0.85) {
            Some(self.predicate(dsg, table, columns))
        } else {
            None
        };
        DmlStmt::Update(UpdateStmt {
            table: table.to_string(),
            set,
            where_clause,
        })
    }

    fn delete(&mut self, dsg: &DsgDatabase, table: &str, columns: &[String]) -> DmlStmt {
        // Always filtered: an unconditional DELETE would drain the table and
        // starve every later statement of rows to mutate.
        DmlStmt::Delete(DeleteStmt {
            table: table.to_string(),
            where_clause: Some(self.predicate(dsg, table, columns)),
        })
    }

    fn predicate(&mut self, dsg: &DsgDatabase, table: &str, columns: &[String]) -> Expr {
        let c = &columns[self.rng.gen_range(0..columns.len())];
        let col = Expr::col(table, c);
        let v = self.pool_value(dsg, table, c);
        match self.rng.gen_range(0..10) {
            0..=3 => Expr::eq(col, Expr::lit(v)),
            4..=5 => Expr::binary(BinOp::Gt, col, Expr::lit(v)),
            6 => Expr::is_null(col),
            // The shape M2 needs: a NULL-carrying row matching the predicate
            // through the IS NULL arm.
            7 => Expr::or(Expr::eq(col.clone(), Expr::lit(v)), Expr::is_null(col)),
            _ => Expr::binary(BinOp::Lt, col, Expr::lit(v)),
        }
    }
}

/// The mutation oracle: run a DML program on a backend, mirror it on the
/// delta-maintained ground truth, and verify (a) every statement's
/// `rows_affected` and (b) every touched table's final committed state.
pub struct DmlOracle {
    catalog: Catalog,
}

impl DmlOracle {
    /// `catalog` is the pristine starting state; every
    /// [`check_program`](Self::check_program) reloads it into the backend so
    /// programs are independent.
    pub fn new(catalog: &Catalog) -> Self {
        DmlOracle {
            catalog: catalog.clone(),
        }
    }

    pub fn from_dsg(dsg: &DsgDatabase) -> Self {
        Self::new(&dsg.db.catalog)
    }

    /// A `SELECT t.c1, t.c2, … FROM t` over every column — the canonical
    /// verification probe for one table.
    fn select_all(&self, table: &str) -> Option<SelectStmt> {
        let t = self.catalog.table(table)?;
        let mut stmt = SelectStmt::new(tqs_sql::ast::FromClause::single(&t.name));
        stmt.items = t
            .columns
            .iter()
            .map(|c| SelectItem::column(&t.name, &c.name))
            .collect();
        Some(stmt)
    }

    /// Check one program against one backend. The backend is reloaded with
    /// the pristine catalog first; a backend that cannot load or execute DML
    /// at all yields `Skip`.
    pub fn check_program(
        &self,
        program: &[DmlStmt],
        conn: &mut dyn DbmsConnector,
    ) -> OracleVerdict {
        if conn.load_catalog(&self.catalog).is_err() {
            return OracleVerdict::Skip;
        }
        let info = conn.info();
        let mut gt = MutationGroundTruth::new(&self.catalog);
        let mut fired = Vec::new();
        let mut reports: Vec<BugReport> = Vec::new();
        let mut executed = false;
        let mut touched: Vec<String> = Vec::new();

        let run_stmt = |stmt: &DmlStmt,
                        gt: &mut MutationGroundTruth,
                        conn: &mut dyn DbmsConnector,
                        fired: &mut Vec<tqs_engine::FaultKind>,
                        reports: &mut Vec<BugReport>,
                        executed: &mut bool|
         -> bool {
            let expected = gt.apply(stmt);
            let observed = conn.execute_dml(stmt);
            match (expected, observed) {
                // Both sides reject: the statement doesn't count.
                (Err(_), Err(_)) => true,
                (Ok(exp), Ok(out)) => {
                    *executed = true;
                    for f in &out.fired {
                        if !fired.contains(f) {
                            fired.push(*f);
                        }
                    }
                    let obs = out
                        .result
                        .rows
                        .first()
                        .and_then(|r| match r.get(0) {
                            Value::Int(n) => Some(*n),
                            _ => None,
                        })
                        .unwrap_or(-1);
                    if obs != exp as i64 {
                        reports.push(mutation_report(
                            &info.name,
                            program,
                            tqs_sql::render::render_dml(stmt),
                            exp,
                            obs.max(0) as usize,
                            fired.clone(),
                        ));
                    }
                    true
                }
                // One side rejects what the other accepts: semantic
                // divergence; the two states can no longer be compared.
                (Ok(exp), Err(e)) => {
                    *executed = true;
                    reports.push(mutation_report(
                        &info.name,
                        program,
                        format!("{}: {e}", tqs_sql::render::render_dml(stmt)),
                        exp,
                        0,
                        fired.clone(),
                    ));
                    false
                }
                (Err(e), Ok(_)) => {
                    *executed = true;
                    reports.push(mutation_report(
                        &info.name,
                        program,
                        format!(
                            "{}: ground truth rejected: {e}",
                            tqs_sql::render::render_dml(stmt)
                        ),
                        0,
                        1,
                        fired.clone(),
                    ));
                    false
                }
            }
        };

        for stmt in program {
            if let Some(t) = stmt.table() {
                if !touched.iter().any(|x| x.eq_ignore_ascii_case(t)) {
                    touched.push(t.to_string());
                }
            }
            if !run_stmt(stmt, &mut gt, conn, &mut fired, &mut reports, &mut executed) {
                return OracleVerdict::Bugs(reports);
            }
        }
        // A program that leaves a transaction open is closed with ROLLBACK on
        // both sides, so the final comparison sees committed state only.
        if gt.in_txn()
            && !run_stmt(
                &DmlStmt::Rollback,
                &mut gt,
                conn,
                &mut fired,
                &mut reports,
                &mut executed,
            )
        {
            return OracleVerdict::Bugs(reports);
        }

        for table in &touched {
            let Some(probe) = self.select_all(table) else {
                continue;
            };
            let Ok(expected) = gt.committed_result(table) else {
                continue;
            };
            let Ok(out) = conn.execute_with_hints(&probe, &HintSet::new(DML_VERIFY_LABEL)) else {
                continue;
            };
            executed = true;
            for f in &out.fired {
                if !fired.contains(f) {
                    fired.push(*f);
                }
            }
            if !expected.same_bag(&out.result) {
                reports.push(mutation_report(
                    &info.name,
                    program,
                    format!(
                        "final state of {table} diverged: {}",
                        tqs_sql::render::render_stmt(&probe)
                    ),
                    expected.row_count(),
                    out.result.row_count(),
                    fired.clone(),
                ));
            }
        }

        match (executed, reports.is_empty()) {
            (false, _) => OracleVerdict::Skip,
            (true, true) => OracleVerdict::Pass,
            (true, false) => OracleVerdict::Bugs(reports),
        }
    }
}

/// Assemble a [`OracleKind::Mutation`] report. `detail` describes the exact
/// divergence (statement or probe) and travels in `transformed_sql`; the
/// reproducer is the whole program.
fn mutation_report(
    dbms: &str,
    program: &[DmlStmt],
    detail: String,
    expected_rows: usize,
    observed_rows: usize,
    mut fired: Vec<tqs_engine::FaultKind>,
) -> BugReport {
    fired.sort();
    fired.dedup();
    BugReport {
        dbms: dbms.to_string(),
        oracle: OracleKind::Mutation,
        sql: render_program(program),
        transformed_sql: detail,
        hint_label: "dml".to_string(),
        expected_rows,
        observed_rows,
        fired,
        minimized_sql: None,
        fingerprint: None,
        keys: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::EngineConnector;
    use crate::conformance::conformance_dsg;
    use tqs_engine::{FaultKind, ProfileId};
    use tqs_sql::parser::parse_program;

    fn small_catalog() -> Catalog {
        use tqs_sql::types::{ColumnDef, ColumnType};
        use tqs_storage::Table;
        let mut cat = Catalog::new();
        let mut t = Table::new(
            "t1",
            vec![
                ColumnDef::new("id", ColumnType::BigInt { unsigned: false }).not_null(),
                ColumnDef::new("col1", ColumnType::Int { unsigned: false }),
            ],
        )
        .with_primary_key(vec!["id"]);
        for (id, c1) in [(1, Value::Int(10)), (2, Value::Null), (3, Value::Int(30))] {
            t.push_row(Row::new(vec![Value::Int(id), c1])).unwrap();
        }
        cat.add_table(t);
        cat
    }

    fn ids(gt: &MutationGroundTruth, table: &str) -> Vec<i64> {
        gt.visible_rows(table)
            .unwrap()
            .iter()
            .map(|(_, v)| match &v[0] {
                Value::Int(i) => *i,
                other => panic!("non-int id {other}"),
            })
            .collect()
    }

    #[test]
    fn ground_truth_applies_deltas_and_rolls_back_exactly() {
        let mut gt = MutationGroundTruth::new(&small_catalog());
        let before = gt.snapshot();
        for stmt in parse_program(
            "BEGIN; INSERT INTO t1 (id, col1) VALUES (4, 40); \
             UPDATE t1 SET col1 = 99 WHERE t1.id = 1; DELETE FROM t1 WHERE t1.id = 3",
        )
        .unwrap()
        {
            gt.apply(&stmt).unwrap();
        }
        assert!(gt.in_txn());
        assert_eq!(ids(&gt, "t1"), vec![1, 2, 4], "own writes visible");
        // The committed view is the pre-transaction state, identities intact.
        let committed = gt.committed_rows("t1").unwrap();
        assert_eq!(committed, before[0].1, "uncommitted deltas invisible");
        gt.apply(&DmlStmt::Rollback).unwrap();
        assert_eq!(gt.snapshot(), before, "rollback restores byte-identically");

        // Committing makes the deltas the new committed state.
        for stmt in parse_program("BEGIN; DELETE FROM t1 WHERE t1.col1 IS NULL; COMMIT").unwrap() {
            gt.apply(&stmt).unwrap();
        }
        assert_eq!(ids(&gt, "t1"), vec![1, 3]);
        assert_eq!(gt.committed_rows("t1").unwrap().len(), 2);
    }

    #[test]
    fn ground_truth_statements_are_atomic() {
        let mut gt = MutationGroundTruth::new(&small_catalog());
        let before = gt.snapshot();
        // Second VALUES row is inadmissible: nothing may stick.
        let stmt = parse_program("INSERT INTO t1 (id, col1) VALUES (7, 70), ('oops', 80)").unwrap();
        assert!(gt.apply(&stmt[0]).is_err());
        assert_eq!(gt.snapshot(), before);
        assert!(gt.apply(&DmlStmt::Commit).is_err(), "no open txn");
        assert!(gt.apply(&DmlStmt::Rollback).is_err());
    }

    #[test]
    fn generator_emits_wellformed_closed_programs() {
        let dsg = conformance_dsg();
        let mut gen = DmlGenerator::new(DmlGenConfig {
            statements: 12,
            seed: 7,
            ..Default::default()
        });
        for _ in 0..10 {
            let program = gen.generate_program(&dsg);
            let mutations = program.iter().filter(|s| !s.is_txn_control()).count();
            assert!(mutations >= 12);
            let mut depth = 0i32;
            for s in &program {
                match s {
                    DmlStmt::Begin => {
                        assert_eq!(depth, 0, "nested BEGIN");
                        depth += 1;
                    }
                    DmlStmt::Commit | DmlStmt::Rollback => {
                        assert_eq!(depth, 1, "txn control outside a block");
                        depth -= 1;
                    }
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "program left a transaction open");
            // Round-trips through the renderer and parser.
            let text = render_program(&program);
            assert_eq!(parse_program(&text).unwrap(), program);
        }
    }

    #[test]
    fn oracle_is_sound_on_pristine_engines_and_flags_faulty_ones() {
        let dsg = conformance_dsg();
        let oracle = DmlOracle::from_dsg(&dsg);
        let mut gen = DmlGenerator::new(DmlGenConfig {
            seed: 13,
            ..Default::default()
        });
        let programs: Vec<Vec<DmlStmt>> = (0..12).map(|_| gen.generate_program(&dsg)).collect();

        let mut pristine = EngineConnector::pristine(ProfileId::MysqlLike);
        let mut executed = 0;
        for p in &programs {
            match oracle.check_program(p, &mut pristine) {
                OracleVerdict::Bugs(r) => panic!("false positive on pristine: {r:#?}"),
                OracleVerdict::Pass => executed += 1,
                OracleVerdict::Skip => {}
            }
        }
        assert!(executed >= 10, "only {executed}/12 programs executed");

        let mut faulty = EngineConnector::faulty(ProfileId::MysqlLike);
        let mut implicated: Vec<FaultKind> = Vec::new();
        for p in &programs {
            for r in oracle.check_program(p, &mut faulty).into_bugs() {
                assert_eq!(r.oracle, OracleKind::Mutation);
                assert!(r.sql.contains(';'), "reproducer is the whole program");
                implicated.extend(r.fired);
            }
        }
        implicated.sort();
        implicated.dedup();
        assert!(
            !implicated.is_empty(),
            "mutation oracle never implicated a DML fault on a faulty build"
        );
        assert!(implicated.iter().all(|f| FaultKind::DML.contains(f)));
    }

    #[test]
    fn oracle_flags_all_three_engines() {
        let dsg = conformance_dsg();
        let oracle = DmlOracle::from_dsg(&dsg);
        let mut gen = DmlGenerator::new(DmlGenConfig {
            seed: 17,
            ..Default::default()
        });
        let programs: Vec<Vec<DmlStmt>> = (0..15).map(|_| gen.generate_program(&dsg)).collect();
        for (name, mut conn) in [
            ("row", EngineConnector::faulty(ProfileId::MysqlLike)),
            ("columnar", EngineConnector::columnar(ProfileId::MysqlLike)),
            ("disk", EngineConnector::disk(ProfileId::MysqlLike)),
        ] {
            let mut bugs = 0;
            for p in &programs {
                bugs += oracle.check_program(p, &mut conn).into_bugs().len();
            }
            assert!(bugs > 0, "{name} engine: no mutation bugs over 15 programs");
        }
    }
}
