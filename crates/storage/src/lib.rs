//! # tqs-storage
//!
//! In-memory storage substrate for the TQS reproduction:
//!
//! * [`row`] — rows and bag-semantics result sets (the unit of comparison
//!   between engine output and ground truth).
//! * [`table`] — tables with key/foreign-key metadata and the [`table::Catalog`]
//!   loaded into each simulated DBMS.
//! * [`wide`] — the wide table `T_w` with explicit `RowID`s.
//! * [`shard`] — zero-copy row-range shard views over the wide table, the
//!   unit of data partitioning for fleet-scale hunt campaigns.
//! * [`widegen`] — synthetic wide-table generators standing in for the UCI
//!   KDD-Cup dataset and denormalized TPC-H samples used in the paper.

pub mod row;
pub mod shard;
pub mod table;
pub mod wide;
pub mod widegen;

pub use row::{ResultSet, Row};
pub use shard::{ShardSpec, WideTableShard};
pub use table::{Catalog, ForeignKey, Table};
pub use wide::{WideTable, ROW_ID};

#[cfg(test)]
mod proptests {
    use crate::row::{ResultSet, Row};
    use proptest::prelude::*;
    use tqs_sql::value::Value;

    fn arb_row(width: usize) -> impl Strategy<Value = Row> {
        proptest::collection::vec(
            prop_oneof![
                Just(Value::Null),
                (-20i64..20).prop_map(Value::Int),
                "[a-c]{0,3}".prop_map(Value::Varchar),
            ],
            width,
        )
        .prop_map(Row::new)
    }

    proptest! {
        /// Bag equality is invariant under permutation of rows.
        #[test]
        fn same_bag_is_order_insensitive(rows in proptest::collection::vec(arb_row(2), 0..8)) {
            let a = ResultSet { columns: vec!["x".into(), "y".into()], rows: rows.clone() };
            let mut shuffled = rows.clone();
            shuffled.reverse();
            let b = ResultSet { columns: vec!["x".into(), "y".into()], rows: shuffled };
            prop_assert!(a.same_bag(&b));
            prop_assert!(b.same_bag(&a));
        }

        /// Every bag is a subset of itself, and dropping a row keeps it a subset.
        #[test]
        fn subset_of_is_reflexive_and_monotone(rows in proptest::collection::vec(arb_row(2), 1..8)) {
            let full = ResultSet { columns: vec!["x".into(), "y".into()], rows: rows.clone() };
            prop_assert!(full.subset_of(&full));
            let mut fewer = rows;
            fewer.pop();
            let small = ResultSet { columns: vec!["x".into(), "y".into()], rows: fewer };
            prop_assert!(small.subset_of(&full));
        }
    }
}
