//! In-memory tables, keys and the catalog handed to the simulated engine.

use crate::row::Row;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use tqs_sql::types::{ColumnDef, ColumnType};
use tqs_sql::value::Value;

/// A declared foreign key: `columns` of this table reference `ref_columns`
/// of `ref_table`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub columns: Vec<String>,
    pub ref_table: String,
    pub ref_columns: Vec<String>,
}

/// An in-memory table with schema metadata used by the optimizer
/// (primary key, secondary keys, foreign keys).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Explicit primary key column names (possibly composite).
    pub primary_key: Vec<String>,
    /// Secondary (non-unique) key column names, one entry per index.
    pub keys: Vec<Vec<String>>,
    pub foreign_keys: Vec<ForeignKey>,
    pub rows: Vec<Row>,
}

impl Table {
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        Table {
            name: name.into(),
            columns,
            primary_key: Vec::new(),
            keys: Vec::new(),
            foreign_keys: Vec::new(),
            rows: Vec::new(),
        }
    }

    pub fn with_primary_key(mut self, cols: Vec<&str>) -> Self {
        self.primary_key = cols.into_iter().map(String::from).collect();
        self
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column_type(&self, name: &str) -> Option<ColumnType> {
        self.column_index(name).map(|i| self.columns[i].ty)
    }

    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Push a row, checking arity and (loosely) type compatibility.
    pub fn push_row(&mut self, row: Row) -> Result<(), String> {
        if row.len() != self.columns.len() {
            return Err(format!(
                "table {}: row arity {} != column count {}",
                self.name,
                row.len(),
                self.columns.len()
            ));
        }
        for (v, c) in row.values.iter().zip(&self.columns) {
            if !c.ty.admits(v) {
                return Err(format!(
                    "table {}: value {v} not admitted by column {} ({})",
                    self.name, c.name, c.ty
                ));
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Cell accessor by (row, column name).
    pub fn cell(&self, row: usize, col: &str) -> Option<&Value> {
        let idx = self.column_index(col)?;
        self.rows.get(row).map(|r| r.get(idx))
    }

    /// Set a cell (used by noise injection).
    pub fn set_cell(&mut self, row: usize, col: &str, v: Value) -> Result<(), String> {
        let idx = self
            .column_index(col)
            .ok_or_else(|| format!("unknown column {col} in {}", self.name))?;
        let r = self
            .rows
            .get_mut(row)
            .ok_or_else(|| format!("row {row} out of range in {}", self.name))?;
        r.values[idx] = v;
        Ok(())
    }

    /// Does `cols` form (a superset of) the primary key?
    pub fn is_primary_key(&self, cols: &[String]) -> bool {
        !self.primary_key.is_empty()
            && self
                .primary_key
                .iter()
                .all(|pk| cols.iter().any(|c| c.eq_ignore_ascii_case(pk)))
    }

    /// Whether any declared key (primary or secondary) starts with `col`,
    /// i.e. an index lookup join on that column is possible.
    pub fn has_key_on(&self, col: &str) -> bool {
        self.primary_key
            .first()
            .map(|c| c.eq_ignore_ascii_case(col))
            .unwrap_or(false)
            || self.keys.iter().any(|k| {
                k.first()
                    .map(|c| c.eq_ignore_ascii_case(col))
                    .unwrap_or(false)
            })
    }

    /// Render a MySQL-style `CREATE TABLE`, as shown in the paper's listings.
    pub fn create_table_sql(&self) -> String {
        let mut parts: Vec<String> = self
            .columns
            .iter()
            .map(|c| {
                format!(
                    "  {} {}{}",
                    c.name,
                    c.ty,
                    if c.nullable { "" } else { " NOT NULL" }
                )
            })
            .collect();
        if !self.primary_key.is_empty() {
            parts.push(format!("  PRIMARY KEY ({})", self.primary_key.join(", ")));
        }
        for (i, k) in self.keys.iter().enumerate() {
            parts.push(format!("  KEY {}_k{} ({})", self.name, i, k.join(", ")));
        }
        for (i, fk) in self.foreign_keys.iter().enumerate() {
            parts.push(format!(
                "  CONSTRAINT {}_ibfk_{} FOREIGN KEY ({}) REFERENCES {} ({})",
                self.name,
                i + 1,
                fk.columns.join(", "),
                fk.ref_table,
                fk.ref_columns.join(", ")
            ));
        }
        format!("CREATE TABLE {} (\n{}\n);", self.name, parts.join(",\n"))
    }
}

/// A named collection of tables — the testing database produced by DSG and
/// loaded into each simulated DBMS.
///
/// Tables are held behind [`Arc`], so cloning a catalog — which every worker
/// replica in a hunt does when it loads the testing database into its backend
/// — shares the (read-only) row storage instead of duplicating it. Mutation
/// through [`table_mut`](Catalog::table_mut) stays possible via copy-on-write
/// (`Arc::make_mut`): noise injection runs before the catalog is shared and
/// pays nothing; a hypothetical post-share writer pays for its own copy.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    /// Insertion order, so schema graphs and dumps are deterministic.
    order: Vec<String>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    pub fn add_table(&mut self, table: Table) {
        self.add_shared_table(Arc::new(table));
    }

    /// Insert an already-shared table without copying its rows (shard views
    /// and worker replicas hand catalogs around this way).
    pub fn add_shared_table(&mut self, table: Arc<Table>) {
        let key = table.name.to_lowercase();
        if !self.tables.contains_key(&key) {
            self.order.push(table.name.clone());
        }
        self.tables.insert(key, table);
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_lowercase()).map(Arc::as_ref)
    }

    /// The shared handle of a table (zero-copy; used to build shard views).
    pub fn shared_table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(&name.to_lowercase()).cloned()
    }

    /// Copy-on-write mutable access: cheap while the table is unshared,
    /// clones the row storage the first time a *shared* table is mutated.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_lowercase()).map(Arc::make_mut)
    }

    pub fn table_names(&self) -> Vec<String> {
        self.order.clone()
    }

    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.order
            .iter()
            .filter_map(|n| self.tables.get(&n.to_lowercase()).map(Arc::as_ref))
    }

    /// All declared foreign-key relationships as
    /// `(from_table, from_cols, to_table, to_cols)`.
    pub fn foreign_key_edges(&self) -> Vec<(String, Vec<String>, String, Vec<String>)> {
        let mut out = Vec::new();
        for t in self.iter() {
            for fk in &t.foreign_keys {
                out.push((
                    t.name.clone(),
                    fk.columns.clone(),
                    fk.ref_table.clone(),
                    fk.ref_columns.clone(),
                ));
            }
        }
        out
    }

    /// Total number of rows across tables.
    pub fn total_rows(&self) -> usize {
        self.iter().map(Table::row_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_sql::types::ColumnType;

    fn goods_table() -> Table {
        let mut t = Table::new(
            "T3",
            vec![
                ColumnDef::new("RowID", ColumnType::BigInt { unsigned: false }).not_null(),
                ColumnDef::new("goodsId", ColumnType::Int { unsigned: false }),
                ColumnDef::new("goodsName", ColumnType::Varchar(100)),
            ],
        )
        .with_primary_key(vec!["RowID"]);
        t.keys.push(vec!["goodsId".into()]);
        t.push_row(Row::new(vec![
            Value::Int(0),
            Value::Int(1111),
            Value::str("book"),
        ]))
        .unwrap();
        t.push_row(Row::new(vec![
            Value::Int(1),
            Value::Int(1112),
            Value::str("food"),
        ]))
        .unwrap();
        t
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let t = goods_table();
        assert_eq!(t.column_index("GOODSNAME"), Some(2));
        assert_eq!(
            t.column_type("goodsid"),
            Some(ColumnType::Int { unsigned: false })
        );
        assert!(t.column_index("missing").is_none());
    }

    #[test]
    fn push_row_validates_arity_and_types() {
        let mut t = goods_table();
        assert!(t.push_row(Row::new(vec![Value::Int(9)])).is_err());
        assert!(t
            .push_row(Row::new(vec![
                Value::Int(2),
                Value::str("oops"),
                Value::str("x")
            ]))
            .is_err());
        assert!(t
            .push_row(Row::new(vec![Value::Int(2), Value::Null, Value::Null]))
            .is_ok());
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn cell_get_set() {
        let mut t = goods_table();
        assert_eq!(t.cell(0, "goodsName"), Some(&Value::str("book")));
        t.set_cell(0, "goodsName", Value::Null).unwrap();
        assert_eq!(t.cell(0, "goodsName"), Some(&Value::Null));
        assert!(t.set_cell(0, "nope", Value::Null).is_err());
        assert!(t.set_cell(99, "goodsName", Value::Null).is_err());
    }

    #[test]
    fn key_metadata() {
        let t = goods_table();
        assert!(t.is_primary_key(&["RowID".to_string(), "goodsId".to_string()]));
        assert!(!t.is_primary_key(&["goodsId".to_string()]));
        assert!(t.has_key_on("rowid"));
        assert!(t.has_key_on("goodsId"));
        assert!(!t.has_key_on("goodsName"));
    }

    #[test]
    fn create_table_sql_includes_keys_and_fks() {
        let mut t = goods_table();
        t.foreign_keys.push(ForeignKey {
            columns: vec!["goodsName".into()],
            ref_table: "T4".into(),
            ref_columns: vec!["goodsName".into()],
        });
        let sql = t.create_table_sql();
        assert!(sql.starts_with("CREATE TABLE T3 ("));
        assert!(sql.contains("PRIMARY KEY (RowID)"));
        assert!(sql.contains("FOREIGN KEY (goodsName) REFERENCES T4 (goodsName)"));
    }

    #[test]
    fn catalog_round_trip_and_fk_edges() {
        let mut cat = Catalog::new();
        cat.add_table(goods_table());
        let mut t4 = Table::new(
            "T4",
            vec![
                ColumnDef::new("RowID", ColumnType::BigInt { unsigned: false }),
                ColumnDef::new("goodsName", ColumnType::Varchar(100)),
            ],
        );
        t4.foreign_keys.push(ForeignKey {
            columns: vec!["goodsName".into()],
            ref_table: "T3".into(),
            ref_columns: vec!["goodsName".into()],
        });
        cat.add_table(t4);
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.table_names(), vec!["T3".to_string(), "T4".to_string()]);
        assert!(cat.table("t3").is_some());
        assert_eq!(cat.foreign_key_edges().len(), 1);
        assert_eq!(cat.total_rows(), 2);
    }

    #[test]
    fn catalog_clone_shares_row_storage() {
        let mut cat = Catalog::new();
        cat.add_table(goods_table());
        let replica = cat.clone();
        let a = cat.shared_table("T3").unwrap();
        let b = replica.shared_table("T3").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "worker replicas must not copy rows");
    }

    #[test]
    fn table_mut_copies_on_write_without_touching_replicas() {
        let mut cat = Catalog::new();
        cat.add_table(goods_table());
        let replica = cat.clone();
        cat.table_mut("T3")
            .unwrap()
            .set_cell(0, "goodsName", Value::Null)
            .unwrap();
        assert_eq!(
            cat.table("T3").unwrap().cell(0, "goodsName"),
            Some(&Value::Null)
        );
        assert_eq!(
            replica.table("T3").unwrap().cell(0, "goodsName"),
            Some(&Value::str("book")),
            "copy-on-write must leave shared replicas unchanged"
        );
    }
}
