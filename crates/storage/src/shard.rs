//! Row-range shard views over the wide table.
//!
//! A long-running hunt campaign partitions the wide table `T_w` into
//! contiguous row ranges and hands every worker one partition instead of a
//! copy of the whole catalog. A [`WideTableShard`] is a zero-copy view: it
//! holds the full table behind an [`Arc`] plus the row range it covers, and
//! only materializes its slice (with re-densified `RowID`s) when the DSG
//! normalization pipeline actually needs an owned table.

use crate::row::Row;
use crate::wide::WideTable;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;
use tqs_sql::value::Value;

/// Which of `count` contiguous row-range shards a view covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Shard index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the table is split into (≥ 1).
    pub count: usize,
}

impl ShardSpec {
    /// The whole table as a single shard.
    pub fn whole() -> ShardSpec {
        ShardSpec { index: 0, count: 1 }
    }

    /// All `count` shard specs, in order.
    pub fn split(count: usize) -> Vec<ShardSpec> {
        let count = count.max(1);
        (0..count).map(|index| ShardSpec { index, count }).collect()
    }

    /// The contiguous row range this shard covers in a table of `total`
    /// rows. Ranges partition `0..total`: the first `total % count` shards
    /// take one extra row, so sizes differ by at most one.
    pub fn row_range(&self, total: usize) -> Range<usize> {
        assert!(self.count >= 1 && self.index < self.count, "{self:?}");
        let base = total / self.count;
        let extra = total % self.count;
        let lo = self.index * base + self.index.min(extra);
        let hi = lo + base + usize::from(self.index < extra);
        lo..hi
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {}/{}", self.index, self.count)
    }
}

/// A zero-copy row-range view over a shared [`WideTable`].
#[derive(Debug, Clone)]
pub struct WideTableShard {
    wide: Arc<WideTable>,
    spec: ShardSpec,
    range: Range<usize>,
}

impl WideTableShard {
    /// View `spec`'s row range of `wide`. No rows are copied.
    pub fn view(wide: Arc<WideTable>, spec: ShardSpec) -> WideTableShard {
        let range = spec.row_range(wide.row_count());
        WideTableShard { wide, spec, range }
    }

    /// All shards of `wide`, sharing the same underlying storage.
    pub fn split(wide: Arc<WideTable>, count: usize) -> Vec<WideTableShard> {
        ShardSpec::split(count)
            .into_iter()
            .map(|spec| WideTableShard::view(Arc::clone(&wide), spec))
            .collect()
    }

    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The shared full table this shard views.
    pub fn wide(&self) -> &Arc<WideTable> {
        &self.wide
    }

    /// The covered row range (indices into the full table).
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    pub fn row_count(&self) -> usize {
        self.range.len()
    }

    /// The covered rows, borrowed from the shared storage.
    pub fn rows(&self) -> &[Row] {
        &self.wide.table.rows[self.range.clone()]
    }

    /// Attribute values of the shard-local row `i` (RowID stripped).
    pub fn attrs_of(&self, i: usize) -> Option<Vec<Value>> {
        if i >= self.range.len() {
            return None;
        }
        self.wide.attrs_of((self.range.start + i) as u64)
    }

    /// Materialize this shard as an owned [`WideTable`] with dense `RowID`s
    /// `0..row_count` — the shape the DSG normalization pipeline expects.
    /// This is the one place a shard copies rows, and it copies only its own
    /// partition.
    pub fn materialize(&self) -> WideTable {
        let mut out = WideTable::new(
            self.wide.table.name.clone(),
            self.wide.attr_columns().to_vec(),
        );
        for row in self.rows() {
            out.append(row.values[1..].to_vec())
                .expect("shard rows match the wide schema");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wide::ROW_ID;
    use tqs_sql::types::{ColumnDef, ColumnType};

    fn wide(n: usize) -> Arc<WideTable> {
        let mut w = WideTable::new(
            "Tw",
            vec![ColumnDef::new("v", ColumnType::Int { unsigned: false })],
        );
        for i in 0..n {
            w.append(vec![Value::Int(i as i64)]).unwrap();
        }
        Arc::new(w)
    }

    #[test]
    fn ranges_partition_the_table() {
        for total in [0usize, 1, 7, 10, 23] {
            for count in [1usize, 2, 3, 5] {
                let mut covered = 0;
                let mut next = 0;
                for spec in ShardSpec::split(count) {
                    let r = spec.row_range(total);
                    assert_eq!(r.start, next, "shards must be contiguous");
                    next = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, total);
                assert_eq!(next, total);
            }
        }
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = ShardSpec::split(3)
            .into_iter()
            .map(|s| s.row_range(10).len())
            .collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn views_share_storage_and_cover_disjoint_rows() {
        let w = wide(10);
        let shards = WideTableShard::split(Arc::clone(&w), 3);
        assert_eq!(shards.len(), 3);
        for s in &shards {
            assert!(Arc::ptr_eq(s.wide(), &w), "views must be zero-copy");
        }
        let total: usize = shards.iter().map(|s| s.row_count()).sum();
        assert_eq!(total, 10);
        assert_eq!(shards[1].attrs_of(0), Some(vec![Value::Int(4)]));
        assert_eq!(shards[1].attrs_of(99), None);
    }

    #[test]
    fn materialize_redensifies_rowids() {
        let w = wide(7);
        let shard = WideTableShard::view(w, ShardSpec { index: 1, count: 2 });
        let owned = shard.materialize();
        assert_eq!(owned.row_count(), 3);
        // RowIDs restart at 0; the attribute values are the tail rows.
        assert_eq!(owned.cell(0, ROW_ID), Some(&Value::Int(0)));
        assert_eq!(owned.attrs_of(0), Some(vec![Value::Int(4)]));
        assert_eq!(owned.attrs_of(2), Some(vec![Value::Int(6)]));
    }

    #[test]
    fn whole_table_is_one_shard() {
        let w = wide(5);
        let shard = WideTableShard::view(Arc::clone(&w), ShardSpec::whole());
        assert_eq!(shard.row_count(), 5);
        assert_eq!(format!("{}", shard.spec()), "shard 0/1");
    }
}
