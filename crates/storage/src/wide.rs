//! The wide table (`T_w` in the paper).
//!
//! DSG treats the whole test dataset as one wide table, splits it into a
//! normalized schema, and later recovers ground-truth join results by mapping
//! join bitmaps back onto this table. Every row carries an explicit `RowID`;
//! noise synchronization appends rows and NULLs-out cells per §3.2.

use crate::row::Row;
use crate::table::Table;
use serde::{Deserialize, Serialize};
use tqs_sql::types::{ColumnDef, ColumnType};
use tqs_sql::value::Value;

/// Name of the explicit row-identifier column maintained everywhere.
pub const ROW_ID: &str = "RowID";

/// A wide table: a [`Table`] whose first column is the explicit `RowID`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WideTable {
    pub table: Table,
}

impl WideTable {
    /// Create an empty wide table with the given attribute columns
    /// (a `RowID` column is prepended automatically).
    pub fn new(name: impl Into<String>, attrs: Vec<ColumnDef>) -> Self {
        let mut columns =
            vec![ColumnDef::new(ROW_ID, ColumnType::BigInt { unsigned: false }).not_null()];
        columns.extend(attrs);
        let table = Table::new(name, columns).with_primary_key(vec![ROW_ID]);
        WideTable { table }
    }

    /// Attribute columns, excluding `RowID`.
    pub fn attr_columns(&self) -> &[ColumnDef] {
        &self.table.columns[1..]
    }

    pub fn attr_names(&self) -> Vec<String> {
        self.attr_columns().iter().map(|c| c.name.clone()).collect()
    }

    pub fn row_count(&self) -> usize {
        self.table.row_count()
    }

    /// Append a row of attribute values; returns the assigned RowID.
    pub fn append(&mut self, attrs: Vec<Value>) -> Result<u64, String> {
        let rid = self.table.row_count() as u64;
        let mut values = Vec::with_capacity(attrs.len() + 1);
        values.push(Value::Int(rid as i64));
        values.extend(attrs);
        self.table.push_row(Row::new(values))?;
        Ok(rid)
    }

    /// Attribute values of a row (RowID stripped).
    pub fn attrs_of(&self, row_id: u64) -> Option<Vec<Value>> {
        self.table
            .rows
            .get(row_id as usize)
            .map(|r| r.values[1..].to_vec())
    }

    /// Value of one attribute cell.
    pub fn cell(&self, row_id: u64, col: &str) -> Option<&Value> {
        self.table.cell(row_id as usize, col)
    }

    pub fn set_cell(&mut self, row_id: u64, col: &str, v: Value) -> Result<(), String> {
        self.table.set_cell(row_id as usize, col, v)
    }

    /// Column index of an attribute within the *attribute* list (RowID
    /// excluded), used by FD discovery which never looks at RowID.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attr_columns()
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn attr_type(&self, name: &str) -> Option<ColumnType> {
        self.attr_index(name).map(|i| self.attr_columns()[i].ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide() -> WideTable {
        let mut w = WideTable::new(
            "Tw",
            vec![
                ColumnDef::new("orderId", ColumnType::Varchar(10)),
                ColumnDef::new("goodsId", ColumnType::Int { unsigned: false }),
                ColumnDef::new("price", ColumnType::Int { unsigned: false }),
            ],
        );
        w.append(vec![Value::str("0001"), Value::Int(1111), Value::Int(15)])
            .unwrap();
        w.append(vec![Value::str("0001"), Value::Int(1112), Value::Int(5)])
            .unwrap();
        w
    }

    #[test]
    fn rowids_are_dense_and_sequential() {
        let mut w = wide();
        assert_eq!(w.row_count(), 2);
        let rid = w
            .append(vec![Value::str("0002"), Value::Int(1111), Value::Int(15)])
            .unwrap();
        assert_eq!(rid, 2);
        assert_eq!(w.cell(2, ROW_ID), Some(&Value::Int(2)));
    }

    #[test]
    fn attr_accessors_skip_rowid() {
        let w = wide();
        assert_eq!(w.attr_names(), vec!["orderId", "goodsId", "price"]);
        assert_eq!(w.attr_index("goodsId"), Some(1));
        assert_eq!(
            w.attrs_of(0),
            Some(vec![Value::str("0001"), Value::Int(1111), Value::Int(15)])
        );
        assert_eq!(w.attrs_of(99), None);
    }

    #[test]
    fn cell_mutation_for_noise_sync() {
        let mut w = wide();
        w.set_cell(0, "price", Value::Null).unwrap();
        assert_eq!(w.cell(0, "price"), Some(&Value::Null));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut w = wide();
        assert!(w.append(vec![Value::str("x")]).is_err());
    }
}
