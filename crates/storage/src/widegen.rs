//! Wide-table generators.
//!
//! The paper builds its wide table either from a real dataset (UCI KDD-Cup)
//! or by denormalizing a TPC-H sample. Neither is shipped here, so we provide
//! three synthetic generators that preserve the properties DSG relies on:
//! the table is wide, it embeds functional dependencies, key columns have
//! controllable cardinality/skew, and value types are diverse enough to
//! trigger type-coercion corner cases.

use crate::wide::WideTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tqs_sql::types::{ColumnDef, ColumnType};
use tqs_sql::value::{Decimal, Value};

/// Configuration for the "shopping order" dataset — the paper's own running
/// example (Figure 3): orders of goods placed by users, with FDs
/// `goodsId → goodsName`, `goodsName → price`, `userId → userName`.
#[derive(Debug, Clone)]
pub struct ShoppingConfig {
    pub n_rows: usize,
    pub n_goods: usize,
    pub n_users: usize,
    pub n_orders: usize,
    pub seed: u64,
}

impl Default for ShoppingConfig {
    fn default() -> Self {
        ShoppingConfig {
            n_rows: 400,
            n_goods: 24,
            n_users: 16,
            n_orders: 120,
            seed: 7,
        }
    }
}

/// Goods names reused so that `goodsName → price` has interesting duplicate
/// structure (several goods share a name and hence a price).
const GOODS_NAMES: &[&str] = &[
    "book", "food", "flower", "phone", "chair", "lamp", "cup", "pen", "desk", "shoe", "hat", "ball",
];

/// Generate the shopping-order wide table.
pub fn shopping_orders(cfg: &ShoppingConfig) -> WideTable {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut w = WideTable::new(
        "wide_orders",
        vec![
            ColumnDef::new("orderId", ColumnType::Varchar(10)),
            ColumnDef::new("goodsId", ColumnType::Int { unsigned: false }),
            ColumnDef::new("goodsName", ColumnType::Varchar(100)),
            ColumnDef::new("userId", ColumnType::Varchar(20)),
            ColumnDef::new("userName", ColumnType::Varchar(100)),
            ColumnDef::new(
                "price",
                ColumnType::Decimal {
                    precision: 10,
                    scale: 2,
                    zerofill: false,
                },
            ),
            ColumnDef::new("quantity", ColumnType::Int { unsigned: false }),
            ColumnDef::new("orderDate", ColumnType::Date),
        ],
    );
    // goodsId → (goodsName, price); goodsName → price must also hold, so
    // price is a function of the *name*, not the id.
    let name_of_good: Vec<&str> = (0..cfg.n_goods)
        .map(|g| GOODS_NAMES[g % GOODS_NAMES.len()])
        .collect();
    // Several goods names share the same price so that `price → goodsName`
    // does NOT hold — the FD structure stays a clean chain
    // goodsId → goodsName → price, exactly as in the paper's Figure 3.
    let price_of_name = |name: &str| -> Decimal {
        let idx = GOODS_NAMES.iter().position(|n| *n == name).unwrap_or(0) as i128;
        Decimal::new(((idx % 5) + 1) * 500, 2) // 5.00 … 25.00, reused
    };
    let user_names = [
        "Tom", "Peter", "Bob", "Alice", "Carol", "Dave", "Erin", "Frank",
    ];
    for _ in 0..cfg.n_rows {
        let good = rng.gen_range(0..cfg.n_goods);
        let user = rng.gen_range(0..cfg.n_users);
        let order = rng.gen_range(0..cfg.n_orders);
        let gname = name_of_good[good];
        w.append(vec![
            Value::str(format!("{:04}", order + 1)),
            Value::Int(1111 + good as i64),
            Value::str(gname),
            Value::str(format!("str{}", user + 1)),
            Value::str(user_names[user % user_names.len()]),
            Value::Decimal(price_of_name(gname)),
            Value::Int(rng.gen_range(1..6)),
            // a small date domain so no spurious `orderDate → …` FD appears
            Value::Date(19_000 + rng.gen_range(0..30)),
        ])
        .expect("row arity");
    }
    w
}

/// Configuration for a TPC-H-like denormalized sample: `lineitem` joined with
/// its dimension tables, as §3.1 describes ("pick unbiased random samples
/// from the fact table lineitem, and apply the primary-foreign key joins to
/// merge it with the dimension tables").
#[derive(Debug, Clone)]
pub struct TpchLikeConfig {
    pub n_rows: usize,
    pub n_parts: usize,
    pub n_suppliers: usize,
    pub n_customers: usize,
    pub n_nations: usize,
    pub seed: u64,
}

impl Default for TpchLikeConfig {
    fn default() -> Self {
        TpchLikeConfig {
            n_rows: 600,
            n_parts: 40,
            n_suppliers: 12,
            n_customers: 30,
            n_nations: 5,
            seed: 11,
        }
    }
}

/// Generate the TPC-H-like wide table with FDs
/// `partkey → partname, retailprice`, `suppkey → suppname, nationkey`,
/// `custkey → custname, nationkey`, `nationkey → nationname, regionname`.
pub fn tpch_like(cfg: &TpchLikeConfig) -> WideTable {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut w = WideTable::new(
        "wide_lineitem",
        vec![
            ColumnDef::new("orderkey", ColumnType::BigInt { unsigned: false }),
            ColumnDef::new("partkey", ColumnType::Int { unsigned: false }),
            ColumnDef::new("partname", ColumnType::Varchar(55)),
            ColumnDef::new(
                "retailprice",
                ColumnType::Decimal {
                    precision: 12,
                    scale: 2,
                    zerofill: false,
                },
            ),
            ColumnDef::new("suppkey", ColumnType::Int { unsigned: false }),
            ColumnDef::new("suppname", ColumnType::Varchar(25)),
            ColumnDef::new("custkey", ColumnType::Int { unsigned: false }),
            ColumnDef::new("custname", ColumnType::Varchar(25)),
            ColumnDef::new("nationkey", ColumnType::Int { unsigned: false }),
            ColumnDef::new("nationname", ColumnType::Varchar(25)),
            ColumnDef::new("quantity", ColumnType::Double),
            ColumnDef::new("shipdate", ColumnType::Date),
        ],
    );
    let nations = [
        "ALGERIA", "BRAZIL", "CANADA", "DENMARK", "EGYPT", "FRANCE", "GERMANY",
    ];
    for i in 0..cfg.n_rows {
        let part = rng.gen_range(0..cfg.n_parts) as i64;
        let supp = rng.gen_range(0..cfg.n_suppliers) as i64;
        let cust = rng.gen_range(0..cfg.n_customers) as i64;
        // nationkey is a function of BOTH supplier (for the supplier's nation)
        // — to keep it an FD of one key we derive it from custkey only and
        // expose the supplier nation via suppname instead.
        let nation = (cust as usize % cfg.n_nations) as i64;
        // Dimension attributes are deliberately NOT unique per key (several
        // parts share a name, several suppliers share a name, …) so the FDs
        // stay one-directional: key → attribute but not attribute → key.
        w.append(vec![
            Value::Int(1000 + (i as i64 / 4)),
            Value::Int(part + 1),
            Value::str(format!("part#{:03}", (part % 13) + 1)),
            Value::Decimal(Decimal::new(((part % 13) + 1) as i128 * 999, 2)),
            Value::Int(supp + 1),
            Value::str(format!("Supplier#{:03}", (supp % 5) + 1)),
            Value::Int(cust + 1),
            Value::str(format!("Customer#{:03}", (cust % 9) + 1)),
            Value::Int(nation + 1),
            Value::str(nations[nation as usize % 3]),
            Value::Double(rng.gen_range(1..50) as f64),
            // small date domain for the same reason as the shopping generator
            Value::Date(10_000 + rng.gen_range(0..60)),
        ])
        .expect("row arity");
    }
    w
}

/// A generic generator that manufactures `n_groups` FD chains
/// `k_i → a_i → b_i` over randomly typed columns. Used by property tests and
/// by benches that need schemas of controllable width.
#[derive(Debug, Clone)]
pub struct RandomFdConfig {
    pub n_groups: usize,
    pub n_rows: usize,
    /// Distinct key values per group (smaller → more FD-induced redundancy).
    pub cardinality: usize,
    pub seed: u64,
}

impl Default for RandomFdConfig {
    fn default() -> Self {
        RandomFdConfig {
            n_groups: 3,
            n_rows: 300,
            cardinality: 20,
            seed: 3,
        }
    }
}

pub fn random_fd_table(cfg: &RandomFdConfig) -> WideTable {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cols = Vec::new();
    for g in 0..cfg.n_groups {
        let key_ty = match g % 3 {
            0 => ColumnType::Int { unsigned: false },
            1 => ColumnType::BigInt { unsigned: false },
            _ => ColumnType::Varchar(20),
        };
        cols.push(ColumnDef::new(format!("k{g}"), key_ty));
        cols.push(ColumnDef::new(format!("a{g}"), ColumnType::Varchar(30)));
        cols.push(ColumnDef::new(
            format!("b{g}"),
            if g % 2 == 0 {
                ColumnType::Double
            } else {
                ColumnType::Int { unsigned: false }
            },
        ));
    }
    let mut w = WideTable::new("wide_random", cols);
    for _ in 0..cfg.n_rows {
        let mut row = Vec::new();
        for g in 0..cfg.n_groups {
            let k = rng.gen_range(0..cfg.cardinality) as i64;
            let key_val = match g % 3 {
                0 => Value::Int(k),
                1 => Value::Int(k * 1_000_003),
                _ => Value::str(format!("key{k:04}")),
            };
            row.push(key_val);
            // a_g is a function of k, b_g is a function of a_g.
            let a = k / 2;
            row.push(Value::str(format!("attr{g}_{a}")));
            row.push(if g % 2 == 0 {
                Value::Double(a as f64 * 1.5)
            } else {
                Value::Int(a * 7)
            });
        }
        w.append(row).expect("row arity");
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Check that `lhs → rhs` holds in the generated data.
    fn fd_holds(w: &WideTable, lhs: &str, rhs: &str) -> bool {
        let li = w.attr_index(lhs).unwrap() + 1;
        let ri = w.attr_index(rhs).unwrap() + 1;
        let mut seen: HashMap<String, String> = HashMap::new();
        for row in &w.table.rows {
            let k = row.get(li).to_string();
            let v = row.get(ri).to_string();
            if let Some(prev) = seen.get(&k) {
                if prev != &v {
                    return false;
                }
            } else {
                seen.insert(k, v);
            }
        }
        true
    }

    #[test]
    fn shopping_orders_embeds_paper_fds() {
        let w = shopping_orders(&ShoppingConfig::default());
        assert_eq!(w.row_count(), 400);
        assert!(fd_holds(&w, "goodsId", "goodsName"));
        assert!(fd_holds(&w, "goodsName", "price"));
        assert!(fd_holds(&w, "userId", "userName"));
        // and a non-FD to keep discovery honest
        assert!(!fd_holds(&w, "userId", "goodsId"));
    }

    #[test]
    fn shopping_orders_is_deterministic_per_seed() {
        let a = shopping_orders(&ShoppingConfig::default());
        let b = shopping_orders(&ShoppingConfig::default());
        assert_eq!(a.table.rows, b.table.rows);
        let c = shopping_orders(&ShoppingConfig {
            seed: 99,
            ..Default::default()
        });
        assert_ne!(a.table.rows, c.table.rows);
    }

    #[test]
    fn tpch_like_embeds_dimension_fds() {
        let w = tpch_like(&TpchLikeConfig::default());
        assert!(fd_holds(&w, "partkey", "partname"));
        assert!(fd_holds(&w, "partkey", "retailprice"));
        assert!(fd_holds(&w, "suppkey", "suppname"));
        assert!(fd_holds(&w, "custkey", "custname"));
        assert!(fd_holds(&w, "custkey", "nationkey"));
        assert!(fd_holds(&w, "nationkey", "nationname"));
    }

    #[test]
    fn random_fd_table_chains_hold() {
        let cfg = RandomFdConfig {
            n_groups: 4,
            ..Default::default()
        };
        let w = random_fd_table(&cfg);
        for g in 0..4 {
            assert!(
                fd_holds(&w, &format!("k{g}"), &format!("a{g}")),
                "k{g}→a{g}"
            );
            assert!(
                fd_holds(&w, &format!("a{g}"), &format!("b{g}")),
                "a{g}→b{g}"
            );
        }
        assert_eq!(w.attr_columns().len(), 12);
    }
}
