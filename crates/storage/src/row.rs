//! Rows and result sets.

use serde::{Deserialize, Serialize};
use tqs_sql::value::{result_value_eq, KeyBuf, Value};

/// A row is an ordered list of values, positionally aligned with a column
/// list owned by the enclosing table / result set.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Row {
    pub values: Vec<Value>,
}

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Concatenate two rows (used by join operators).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row { values }
    }

    /// A row of `n` NULLs (the padding side of outer joins).
    pub fn nulls(n: usize) -> Row {
        Row {
            values: vec![Value::Null; n],
        }
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row { values }
    }
}

/// A bag (multiset) of result rows with named columns.
///
/// Query results in SQL are bags, not sets, and the order is irrelevant
/// unless ORDER BY is present — so equality is multiset equality using
/// [`result_value_eq`] (NULL equals NULL as a *result cell*).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl ResultSet {
    pub fn new(columns: Vec<String>) -> Self {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Multiset equality, ignoring row order and column naming.
    pub fn same_bag(&self, other: &ResultSet) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let mut used = vec![false; other.rows.len()];
        'outer: for r in &self.rows {
            for (i, o) in other.rows.iter().enumerate() {
                if used[i] || r.len() != o.len() {
                    continue;
                }
                if r.values
                    .iter()
                    .zip(&o.values)
                    .all(|(a, b)| result_value_eq(a, b))
                {
                    used[i] = true;
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }

    /// `DISTINCT` by the `(type_tag, Display)` row equivalence, first
    /// occurrence kept — the one implementation both engines and the
    /// ground-truth evaluator share, so their DISTINCT semantics cannot
    /// drift apart (a drift would be indistinguishable from an engine bug).
    /// Keys go through the reusable binary [`KeyBuf`] group encoding.
    pub fn into_distinct(self) -> ResultSet {
        let mut seen: std::collections::HashSet<KeyBuf> = std::collections::HashSet::new();
        let mut out = ResultSet::new(self.columns.clone());
        let mut fp = KeyBuf::new();
        for row in self.rows {
            fp.clear();
            for v in &row.values {
                fp.push_group(v);
            }
            if !seen.contains(&fp) {
                seen.insert(fp.clone());
                out.rows.push(row);
            }
        }
        out
    }

    /// Is `self` a sub-bag of `other`? Used for the SubSet verification mode
    /// of cross joins (Table 2 of the paper).
    pub fn subset_of(&self, other: &ResultSet) -> bool {
        if self.rows.len() > other.rows.len() {
            return false;
        }
        let mut used = vec![false; other.rows.len()];
        'outer: for r in &self.rows {
            for (i, o) in other.rows.iter().enumerate() {
                if used[i] || r.len() != o.len() {
                    continue;
                }
                if r.values
                    .iter()
                    .zip(&o.values)
                    .all(|(a, b)| result_value_eq(a, b))
                {
                    used[i] = true;
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }

    /// Render as the ASCII table format used in the paper's listings.
    pub fn pretty(&self) -> String {
        if self.rows.is_empty() {
            return "Empty set".to_string();
        }
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.values
                    .iter()
                    .map(|v| match v {
                        Value::Null => "NULL".to_string(),
                        Value::Varchar(s) | Value::Text(s) => s.clone(),
                        other => other.to_string(),
                    })
                    .collect()
            })
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() && cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let sep = |w: &Vec<usize>| {
            let mut s = String::from("+");
            for width in w {
                s.push_str(&"-".repeat(width + 2));
                s.push('+');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep(&widths));
        out.push('\n');
        out.push('|');
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
        out.push_str(&sep(&widths));
        out.push('\n');
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        out.push_str(&sep(&widths));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet {
            columns: vec!["c0".into()],
            rows: rows.into_iter().map(Row::new).collect(),
        }
    }

    #[test]
    fn concat_and_nulls() {
        let a = Row::new(vec![Value::Int(1)]);
        let b = Row::nulls(2);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert!(c.get(1).is_null());
    }

    #[test]
    fn bag_equality_ignores_order() {
        let a = rs(vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(2)],
        ]);
        let b = rs(vec![
            vec![Value::Int(2)],
            vec![Value::Int(1)],
            vec![Value::Int(2)],
        ]);
        assert!(a.same_bag(&b));
        let c = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert!(!a.same_bag(&c));
    }

    #[test]
    fn bag_equality_respects_duplicates() {
        let a = rs(vec![vec![Value::Int(1)], vec![Value::Int(1)]]);
        let b = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert!(!a.same_bag(&b));
    }

    #[test]
    fn null_cells_match_null_cells() {
        let a = rs(vec![vec![Value::Null], vec![Value::Null]]);
        let b = rs(vec![vec![Value::Null], vec![Value::Null]]);
        assert!(a.same_bag(&b));
        // ...but a NULL cell never matches an empty string — exactly the
        // MariaDB Listing 3 bug signature.
        let c = rs(vec![vec![Value::str("")], vec![Value::Null]]);
        assert!(!a.same_bag(&c));
    }

    #[test]
    fn subset_check() {
        let small = rs(vec![vec![Value::Int(1)]]);
        let big = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
        assert!(big.subset_of(&big));
    }

    #[test]
    fn pretty_matches_paper_listing_style() {
        let a = rs(vec![vec![Value::Null]]);
        let p = a.pretty();
        assert!(p.contains("| NULL |"));
        assert_eq!(rs(vec![]).pretty(), "Empty set");
    }
}
