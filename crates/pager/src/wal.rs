//! The write-ahead log: full page images followed by a commit record, with
//! redo-only recovery.
//!
//! Record wire format (all integers little-endian):
//!
//! ```text
//! page image : [0x01][page_id u32][image: PAGE_SIZE bytes]
//! commit     : [0x02][batch_seq u64]
//! ```
//!
//! A commit batch is staged in one userspace buffer and written with a single
//! `write_all`, then made durable with one `fsync`. Recovery scans the log
//! from the start, stages page images, and applies them to the data file only
//! when their commit record is reached; a torn tail (truncated record or an
//! unknown kind byte) ends the scan — everything before the last complete
//! commit record is redone, everything after is discarded.

use crate::envfault::{EnvFaultOp, EnvFaultPolicy};
use crate::page::{PageBuf, PageId, PAGE_SIZE};
use crate::pool::DataFile;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

const REC_PAGE: u8 = 0x01;
const REC_COMMIT: u8 = 0x02;

/// What redo recovery found and did while replaying a WAL.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Commit batches whose page images were re-applied to the data file.
    pub batches_replayed: usize,
    /// Total page images applied (a page staged twice is applied twice).
    pub pages_applied: usize,
    /// Page images staged after the last commit record and discarded.
    pub uncommitted_pages_dropped: usize,
    /// The log ended mid-record (crash during the WAL append itself).
    pub torn_tail: bool,
}

/// An append-only write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    env: EnvFaultPolicy,
}

impl Wal {
    pub fn open(path: &Path) -> io::Result<Wal> {
        // Never truncate: recovery must read whatever tail survived a crash.
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        Ok(Wal {
            file,
            env: EnvFaultPolicy::off(),
        })
    }

    /// Route this log's writes and fsyncs through an environmental fault
    /// policy (chaos testing). An injected write failure leaves a torn tail
    /// — exactly what recovery's scan is built to discard.
    pub fn set_env_faults(&mut self, env: EnvFaultPolicy) {
        self.env = env;
    }

    pub fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Append one commit batch — page images then the commit record — with a
    /// single write. **Not yet durable**: call [`Wal::sync`] afterwards.
    pub fn append_batch(
        &mut self,
        images: &[(PageId, &PageBuf)],
        batch_seq: u64,
    ) -> io::Result<()> {
        let mut buf = Vec::with_capacity(images.len() * (1 + 4 + PAGE_SIZE) + 9);
        for (id, page) in images {
            buf.push(REC_PAGE);
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(page.as_bytes().as_slice());
        }
        buf.push(REC_COMMIT);
        buf.extend_from_slice(&batch_seq.to_le_bytes());
        self.file.seek(SeekFrom::End(0))?;
        tqs_telemetry::counter!("pager.wal.appends").incr();
        tqs_telemetry::counter!("pager.wal.append_bytes").add(buf.len() as u64);
        if let Some(e) = self.env.should_fail(EnvFaultOp::Write) {
            // A short write: half the batch reaches the log before the EIO,
            // leaving a torn tail for recovery to discard.
            self.file.write_all(&buf[..buf.len() / 2])?;
            return Err(e);
        }
        self.file.write_all(&buf)
    }

    pub fn sync(&mut self) -> io::Result<()> {
        tqs_telemetry::counter!("pager.wal.fsyncs").incr();
        if let Some(e) = self.env.should_fail(EnvFaultOp::Sync) {
            return Err(e);
        }
        self.file.sync_all()
    }

    /// Truncate back to `len` — used to emulate the OS page cache losing an
    /// appended-but-never-fsynced batch in a crash.
    pub fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        Ok(())
    }

    /// Discard the whole log (after its batches are safely in the data file).
    pub fn reset(&mut self) -> io::Result<()> {
        self.truncate_to(0)?;
        self.file.sync_all()
    }

    /// Redo every committed batch into the data file. Stops at a torn tail.
    /// Does not sync or truncate anything — the caller owns that ordering.
    pub fn replay(&mut self, data: &mut DataFile) -> io::Result<RecoveryStats> {
        let mut bytes = Vec::new();
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut bytes)?;

        let mut stats = RecoveryStats::default();
        let mut staged: Vec<(PageId, PageBuf)> = Vec::new();
        let mut at = 0usize;
        while at < bytes.len() {
            match bytes[at] {
                REC_PAGE if at + 1 + 4 + PAGE_SIZE <= bytes.len() => {
                    let id = u32::from_le_bytes([
                        bytes[at + 1],
                        bytes[at + 2],
                        bytes[at + 3],
                        bytes[at + 4],
                    ]);
                    let mut page = PageBuf::default();
                    page.as_bytes_mut()
                        .copy_from_slice(&bytes[at + 5..at + 5 + PAGE_SIZE]);
                    staged.push((id, page));
                    at += 1 + 4 + PAGE_SIZE;
                }
                REC_COMMIT if at + 1 + 8 <= bytes.len() => {
                    for (id, page) in staged.drain(..) {
                        data.write_page(id, &page)?;
                        stats.pages_applied += 1;
                    }
                    stats.batches_replayed += 1;
                    at += 1 + 8;
                }
                // Truncated record or garbage: a torn tail. Nothing after it
                // can be trusted.
                _ => {
                    stats.torn_tail = true;
                    break;
                }
            }
        }
        stats.uncommitted_pages_dropped = staged.len();
        tqs_telemetry::counter!("pager.wal.replay_batches").add(stats.batches_replayed as u64);
        tqs_telemetry::counter!("pager.wal.replay_pages").add(stats.pages_applied as u64);
        if stats.torn_tail {
            tqs_telemetry::counter!("pager.wal.replay_torn_tails").incr();
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Leaf;

    struct TempWal {
        wal_path: std::path::PathBuf,
        data_path: std::path::PathBuf,
    }

    impl TempWal {
        fn new(tag: &str) -> TempWal {
            let base = std::env::temp_dir();
            let pid = std::process::id();
            let t = TempWal {
                wal_path: base.join(format!("tqs-wal-{pid}-{tag}.wal")),
                data_path: base.join(format!("tqs-wal-{pid}-{tag}.db")),
            };
            let _ = std::fs::remove_file(&t.wal_path);
            let _ = std::fs::remove_file(&t.data_path);
            t
        }

        fn data(&self) -> DataFile {
            DataFile::new(
                OpenOptions::new()
                    .create(true)
                    .truncate(false)
                    .read(true)
                    .write(true)
                    .open(&self.data_path)
                    .unwrap(),
            )
        }
    }

    impl Drop for TempWal {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.wal_path);
            let _ = std::fs::remove_file(&self.data_path);
        }
    }

    fn leaf_with(rowids: &[u64]) -> PageBuf {
        let mut p = PageBuf::default();
        Leaf::init(&mut p);
        for &r in rowids {
            Leaf::push_cell(&mut p, r, &r.to_le_bytes());
        }
        p
    }

    #[test]
    fn committed_batches_replay_and_uncommitted_tail_is_dropped() {
        let t = TempWal::new("replay");
        let mut wal = Wal::open(&t.wal_path).unwrap();
        let p1 = leaf_with(&[1, 2]);
        let p2 = leaf_with(&[3]);
        wal.append_batch(&[(0, &p1), (1, &p2)], 1).unwrap();
        let p1b = leaf_with(&[1, 2, 5]);
        wal.append_batch(&[(0, &p1b)], 2).unwrap();
        // a third batch whose commit record never made it
        let len = wal.len().unwrap();
        wal.append_batch(&[(1, &leaf_with(&[3, 9]))], 3).unwrap();
        wal.truncate_to(len + 1 + 4 + PAGE_SIZE as u64).unwrap();

        let mut data = t.data();
        let stats = wal.replay(&mut data).unwrap();
        assert_eq!(stats.batches_replayed, 2);
        assert_eq!(stats.pages_applied, 3);
        assert_eq!(stats.uncommitted_pages_dropped, 1);
        assert!(!stats.torn_tail, "complete page record, missing commit");

        let mut back = PageBuf::default();
        data.read_page(0, &mut back).unwrap();
        assert_eq!(Leaf::cells(&back).unwrap().len(), 3, "second image wins");
        data.read_page(1, &mut back).unwrap();
        assert_eq!(Leaf::cells(&back).unwrap().len(), 1, "uncommitted dropped");
    }

    #[test]
    fn a_tail_torn_mid_record_stops_the_scan() {
        let t = TempWal::new("torn");
        let mut wal = Wal::open(&t.wal_path).unwrap();
        wal.append_batch(&[(0, &leaf_with(&[1]))], 1).unwrap();
        let committed = wal.len().unwrap();
        wal.append_batch(&[(1, &leaf_with(&[2]))], 2).unwrap();
        wal.truncate_to(committed + 3).unwrap(); // mid page record

        let mut data = t.data();
        let stats = wal.replay(&mut data).unwrap();
        assert_eq!(stats.batches_replayed, 1);
        assert!(stats.torn_tail);

        let mut back = PageBuf::default();
        data.read_page(0, &mut back).unwrap();
        assert_eq!(Leaf::cells(&back).unwrap().len(), 1);
    }

    #[test]
    fn injected_write_faults_leave_committed_prefix_intact() {
        let t = TempWal::new("envfault");
        let mut wal = Wal::open(&t.wal_path).unwrap();
        wal.set_env_faults(EnvFaultPolicy::seeded(11, 40));
        let mut committed = 0usize;
        let mut seq = 0u64;
        while committed < 5 {
            seq += 1;
            let page = leaf_with(&[seq]);
            match wal.append_batch(&[(0, &page)], seq) {
                Ok(()) => match wal.sync() {
                    Ok(()) => committed += 1,
                    // Data written but durability failed: a real store would
                    // retry the sync; the batch is still complete on disk.
                    Err(_) => {
                        wal.sync().unwrap();
                        committed += 1;
                    }
                },
                // Short write: the torn tail must be discarded before the
                // next append, as the commit protocol does after an IO error.
                Err(_) => {
                    let len = wal.len().unwrap();
                    // Recovery-style scan to find the committed prefix, then
                    // drop the torn bytes.
                    let mut data = t.data();
                    let stats = wal.replay(&mut data).unwrap();
                    assert!(stats.torn_tail || stats.uncommitted_pages_dropped > 0 || len == 0);
                    let keep = (stats.batches_replayed * (1 + 4 + PAGE_SIZE + 1 + 8)) as u64;
                    wal.truncate_to(keep).unwrap();
                }
            }
        }
        let mut data = t.data();
        let stats = wal.replay(&mut data).unwrap();
        assert_eq!(stats.batches_replayed, 5, "every committed batch survives");
        assert!(!stats.torn_tail, "torn tails were repaired");
    }

    #[test]
    fn reset_empties_the_log() {
        let t = TempWal::new("reset");
        let mut wal = Wal::open(&t.wal_path).unwrap();
        wal.append_batch(&[(0, &leaf_with(&[1]))], 1).unwrap();
        assert!(!wal.is_empty().unwrap());
        wal.reset().unwrap();
        assert!(wal.is_empty().unwrap());
        let mut data = t.data();
        assert_eq!(wal.replay(&mut data).unwrap(), RecoveryStats::default());
    }
}
