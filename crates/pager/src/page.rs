//! Fixed-size pages and the on-page codecs.
//!
//! Every file in a store is an array of [`PAGE_SIZE`]-byte pages. Three page
//! kinds exist:
//!
//! * **leaf** — B+tree leaf holding `(rowid, payload)` cells in ascending
//!   rowid order plus a next-leaf pointer (the scan chain);
//! * **internal** — B+tree inner node holding `(first_rowid, child)` entries;
//! * **directory** — page 0, the table directory: one entry per table (name,
//!   root page, rowid counter, last commit-batch window) plus the allocated
//!   page count.
//!
//! All integers are little-endian. Codecs are deliberately strict: a page
//! whose kind byte or offsets are inconsistent decodes to an error, never to
//! garbage rows — a torn page must be *visible* to the layers above.

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Page index inside the data file (page 0 is the table directory).
pub type PageId = u32;

pub const KIND_LEAF: u8 = 1;
pub const KIND_INTERNAL: u8 = 2;
pub const KIND_DIRECTORY: u8 = 3;

/// Leaf flag: this leaf overflowed and handed its high end to a new sibling
/// — the metadata the seeded "split loses the high key" fault keys on.
pub const FLAG_SPLIT_ORIGIN: u8 = 0b0000_0001;

const LEAF_HEADER: usize = 12; // kind, flags, count u16, next u32, free u32
const INTERNAL_HEADER: usize = 8; // kind, flags, count u16, padding u32
const INTERNAL_ENTRY: usize = 12; // first_rowid u64 + child u32

/// Cap on cells per leaf (besides the byte-fit check) so realistic table
/// sizes still exercise splits, multi-leaf scans and buffer-pool traffic.
pub const MAX_LEAF_CELLS: usize = 32;

/// One fixed-size page image.
#[derive(Clone, PartialEq, Eq)]
pub struct PageBuf(pub Box<[u8; PAGE_SIZE]>);

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageBuf(kind={})", self.0[0])
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        PageBuf(Box::new([0u8; PAGE_SIZE]))
    }
}

impl PageBuf {
    pub fn kind(&self) -> u8 {
        self.0[0]
    }

    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.0
    }

    pub fn as_bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.0
    }
}

fn read_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(buf)
}

fn write_u16(b: &mut [u8], at: usize, v: u16) {
    b[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn write_u32(b: &mut [u8], at: usize, v: u32) {
    b[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn write_u64(b: &mut [u8], at: usize, v: u64) {
    b[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Decoding error: the page image does not parse as its claimed kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageCorrupt(pub String);

impl std::fmt::Display for PageCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt page: {}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Leaf pages
// ---------------------------------------------------------------------------

/// Typed view over a leaf page.
pub struct Leaf;

impl Leaf {
    /// Format `page` as a fresh, empty leaf.
    pub fn init(page: &mut PageBuf) {
        let b = page.as_bytes_mut();
        b.fill(0);
        b[0] = KIND_LEAF;
        write_u32(b, 8, LEAF_HEADER as u32);
    }

    pub fn cell_count(page: &PageBuf) -> usize {
        read_u16(page.as_bytes(), 2) as usize
    }

    pub fn next_leaf(page: &PageBuf) -> Option<PageId> {
        match read_u32(page.as_bytes(), 4) {
            0 => None, // page 0 is the directory, so 0 is a safe sentinel
            id => Some(id),
        }
    }

    pub fn set_next_leaf(page: &mut PageBuf, next: PageId) {
        write_u32(page.as_bytes_mut(), 4, next);
    }

    pub fn split_origin(page: &PageBuf) -> bool {
        page.as_bytes()[1] & FLAG_SPLIT_ORIGIN != 0
    }

    pub fn mark_split_origin(page: &mut PageBuf) {
        page.as_bytes_mut()[1] |= FLAG_SPLIT_ORIGIN;
    }

    fn free_offset(page: &PageBuf) -> usize {
        read_u32(page.as_bytes(), 8) as usize
    }

    /// Does a payload of `len` bytes still fit?
    pub fn fits(page: &PageBuf, len: usize) -> bool {
        Self::cell_count(page) < MAX_LEAF_CELLS
            && Self::free_offset(page) + 8 + 4 + len <= PAGE_SIZE
    }

    /// Append one `(rowid, payload)` cell. Caller must have checked
    /// [`fits`](Self::fits); rowids must arrive in ascending order.
    pub fn push_cell(page: &mut PageBuf, rowid: u64, payload: &[u8]) {
        let at = Self::free_offset(page);
        let count = Self::cell_count(page);
        let b = page.as_bytes_mut();
        write_u64(b, at, rowid);
        write_u32(b, at + 8, payload.len() as u32);
        b[at + 12..at + 12 + payload.len()].copy_from_slice(payload);
        write_u16(b, 2, (count + 1) as u16);
        write_u32(b, 8, (at + 12 + payload.len()) as u32);
    }

    /// All `(rowid, payload)` cells, in on-page (ascending rowid) order.
    pub fn cells(page: &PageBuf) -> Result<Vec<(u64, Vec<u8>)>, PageCorrupt> {
        let b = page.as_bytes();
        if b[0] != KIND_LEAF {
            return Err(PageCorrupt(format!("expected leaf, kind byte {}", b[0])));
        }
        let count = Self::cell_count(page);
        let free = Self::free_offset(page);
        if !(LEAF_HEADER..=PAGE_SIZE).contains(&free) {
            return Err(PageCorrupt(format!("leaf free offset {free} out of range")));
        }
        let mut cells = Vec::with_capacity(count);
        let mut at = LEAF_HEADER;
        for _ in 0..count {
            if at + 12 > free {
                return Err(PageCorrupt("leaf cell runs past free offset".into()));
            }
            let rowid = read_u64(b, at);
            let len = read_u32(b, at + 8) as usize;
            if at + 12 + len > free {
                return Err(PageCorrupt("leaf payload runs past free offset".into()));
            }
            cells.push((rowid, b[at + 12..at + 12 + len].to_vec()));
            at += 12 + len;
        }
        if at != free {
            return Err(PageCorrupt(
                "leaf has trailing bytes before free offset".into(),
            ));
        }
        Ok(cells)
    }

    /// Binary-search one rowid (cells are ascending).
    pub fn get(page: &PageBuf, rowid: u64) -> Result<Option<Vec<u8>>, PageCorrupt> {
        // Cells are variable-size, so the lookup walks; leaves are small
        // (≤ MAX_LEAF_CELLS) and the walk stops at the first overshoot.
        for (id, payload) in Self::cells(page)? {
            if id == rowid {
                return Ok(Some(payload));
            }
            if id > rowid {
                break;
            }
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// Internal pages
// ---------------------------------------------------------------------------

/// Typed view over a B+tree internal node: `(first_rowid, child)` entries in
/// ascending first_rowid order; `child` covers rowids in
/// `[first_rowid, next_entry.first_rowid)`.
pub struct Internal;

impl Internal {
    pub fn init(page: &mut PageBuf) {
        let b = page.as_bytes_mut();
        b.fill(0);
        b[0] = KIND_INTERNAL;
    }

    pub fn entry_count(page: &PageBuf) -> usize {
        read_u16(page.as_bytes(), 2) as usize
    }

    pub const MAX_ENTRIES: usize = (PAGE_SIZE - INTERNAL_HEADER) / INTERNAL_ENTRY;

    pub fn fits(page: &PageBuf) -> bool {
        Self::entry_count(page) < Self::MAX_ENTRIES
    }

    pub fn push_entry(page: &mut PageBuf, first_rowid: u64, child: PageId) {
        let count = Self::entry_count(page);
        let at = INTERNAL_HEADER + count * INTERNAL_ENTRY;
        let b = page.as_bytes_mut();
        write_u64(b, at, first_rowid);
        write_u32(b, at + 8, child);
        write_u16(b, 2, (count + 1) as u16);
    }

    pub fn entries(page: &PageBuf) -> Result<Vec<(u64, PageId)>, PageCorrupt> {
        let b = page.as_bytes();
        if b[0] != KIND_INTERNAL {
            return Err(PageCorrupt(format!(
                "expected internal node, kind byte {}",
                b[0]
            )));
        }
        let count = Self::entry_count(page);
        if INTERNAL_HEADER + count * INTERNAL_ENTRY > PAGE_SIZE {
            return Err(PageCorrupt(format!(
                "internal entry count {count} overflows"
            )));
        }
        Ok((0..count)
            .map(|i| {
                let at = INTERNAL_HEADER + i * INTERNAL_ENTRY;
                (read_u64(b, at), read_u32(b, at + 8))
            })
            .collect())
    }

    /// The child covering `rowid`: last entry with `first_rowid <= rowid`.
    pub fn child_for(page: &PageBuf, rowid: u64) -> Result<Option<PageId>, PageCorrupt> {
        let entries = Self::entries(page)?;
        Ok(entries
            .iter()
            .take_while(|(first, _)| *first <= rowid)
            .last()
            .or(entries.first())
            .map(|(_, child)| *child))
    }

    /// The first (leftmost) child — the entry of the scan chain.
    pub fn first_child(page: &PageBuf) -> Result<Option<PageId>, PageCorrupt> {
        Ok(Self::entries(page)?.first().map(|(_, c)| *c))
    }

    /// The last (rightmost) child — the insert path of an append-only tree.
    pub fn last_child(page: &PageBuf) -> Result<Option<PageId>, PageCorrupt> {
        Ok(Self::entries(page)?.last().map(|(_, c)| *c))
    }
}

// ---------------------------------------------------------------------------
// The directory page
// ---------------------------------------------------------------------------

/// One table's directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    pub name: String,
    /// Root page of the table's B+tree (a leaf until the first split).
    pub root: PageId,
    /// Next rowid to assign (rowids start at 1 and only grow).
    pub next_rowid: u64,
    /// First rowid of the most recent commit batch (0 = no batch yet) — the
    /// window the WAL-loss and double-replay faults key on.
    pub last_batch_start: u64,
    /// Rows in the most recent commit batch.
    pub last_batch_rows: u32,
}

/// Typed view over page 0.
pub struct Directory;

impl Directory {
    pub fn init(page: &mut PageBuf) {
        let b = page.as_bytes_mut();
        b.fill(0);
        b[0] = KIND_DIRECTORY;
        write_u32(b, 4, 1); // pages allocated so far (the directory itself)
    }

    /// Total pages allocated in the data file (committed state).
    pub fn page_count(page: &PageBuf) -> u32 {
        read_u32(page.as_bytes(), 4)
    }

    pub fn encode(page: &mut PageBuf, page_count: u32, tables: &[TableMeta]) {
        Self::init(page);
        let b = page.as_bytes_mut();
        write_u32(b, 4, page_count);
        write_u16(b, 2, tables.len() as u16);
        let mut at = 8;
        for t in tables {
            let name = t.name.as_bytes();
            assert!(name.len() <= u8::MAX as usize, "table name too long");
            assert!(
                at + 1 + name.len() + 4 + 8 + 8 + 4 <= PAGE_SIZE,
                "table directory overflows page 0"
            );
            b[at] = name.len() as u8;
            b[at + 1..at + 1 + name.len()].copy_from_slice(name);
            at += 1 + name.len();
            write_u32(b, at, t.root);
            write_u64(b, at + 4, t.next_rowid);
            write_u64(b, at + 12, t.last_batch_start);
            write_u32(b, at + 20, t.last_batch_rows);
            at += 24;
        }
    }

    pub fn decode(page: &PageBuf) -> Result<(u32, Vec<TableMeta>), PageCorrupt> {
        let b = page.as_bytes();
        if b[0] != KIND_DIRECTORY {
            return Err(PageCorrupt(format!(
                "expected directory, kind byte {}",
                b[0]
            )));
        }
        let count = read_u16(b, 2) as usize;
        let page_count = read_u32(b, 4);
        let mut tables = Vec::with_capacity(count);
        let mut at = 8;
        for _ in 0..count {
            if at + 1 > PAGE_SIZE {
                return Err(PageCorrupt("directory entry overflows".into()));
            }
            let name_len = b[at] as usize;
            if at + 1 + name_len + 24 > PAGE_SIZE {
                return Err(PageCorrupt("directory entry overflows".into()));
            }
            let name = std::str::from_utf8(&b[at + 1..at + 1 + name_len])
                .map_err(|_| PageCorrupt("directory name is not UTF-8".into()))?
                .to_string();
            at += 1 + name_len;
            tables.push(TableMeta {
                name,
                root: read_u32(b, at),
                next_rowid: read_u64(b, at + 4),
                last_batch_start: read_u64(b, at + 12),
                last_batch_rows: read_u32(b, at + 20),
            });
            at += 24;
        }
        Ok((page_count, tables))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_cells_round_trip_in_order() {
        let mut page = PageBuf::default();
        Leaf::init(&mut page);
        assert_eq!(Leaf::cell_count(&page), 0);
        assert!(Leaf::next_leaf(&page).is_none());
        for rowid in 1..=5u64 {
            assert!(Leaf::fits(&page, 10));
            Leaf::push_cell(&mut page, rowid, &[rowid as u8; 10]);
        }
        let cells = Leaf::cells(&page).unwrap();
        assert_eq!(cells.len(), 5);
        assert_eq!(cells[2], (3, vec![3u8; 10]));
        assert_eq!(Leaf::get(&page, 4).unwrap(), Some(vec![4u8; 10]));
        assert_eq!(Leaf::get(&page, 9).unwrap(), None);
        Leaf::set_next_leaf(&mut page, 7);
        assert_eq!(Leaf::next_leaf(&page), Some(7));
        assert!(!Leaf::split_origin(&page));
        Leaf::mark_split_origin(&mut page);
        assert!(Leaf::split_origin(&page));
    }

    #[test]
    fn leaf_respects_the_cell_cap_and_byte_fit() {
        let mut page = PageBuf::default();
        Leaf::init(&mut page);
        for rowid in 0..MAX_LEAF_CELLS as u64 {
            assert!(Leaf::fits(&page, 1));
            Leaf::push_cell(&mut page, rowid, &[0]);
        }
        assert!(!Leaf::fits(&page, 1), "cell cap must close the leaf");
        let mut page = PageBuf::default();
        Leaf::init(&mut page);
        assert!(!Leaf::fits(&page, PAGE_SIZE), "oversize payload rejected");
    }

    #[test]
    fn torn_leaf_decodes_to_an_error_not_garbage() {
        let mut page = PageBuf::default();
        Leaf::init(&mut page);
        Leaf::push_cell(&mut page, 1, &[9; 100]);
        Leaf::push_cell(&mut page, 2, &[8; 100]);
        // Tear the tail half: the free offset now points past zeroed bytes.
        page.as_bytes_mut()[PAGE_SIZE / 2..].fill(0);
        // Free offset itself survived (it is in the header), but the second
        // cell's bytes did not — corrupt, not silently one cell.
        assert!(Leaf::cells(&page).is_ok(), "header region intact");
        // Tear the header half instead: count says 2, data is gone.
        let mut page2 = PageBuf::default();
        Leaf::init(&mut page2);
        Leaf::push_cell(&mut page2, 1, &[9; 100]);
        page2.as_bytes_mut()[8..12].copy_from_slice(&(PAGE_SIZE as u32 + 9).to_le_bytes());
        assert!(Leaf::cells(&page2).is_err());
    }

    #[test]
    fn internal_entries_and_child_selection() {
        let mut page = PageBuf::default();
        Internal::init(&mut page);
        Internal::push_entry(&mut page, 1, 10);
        Internal::push_entry(&mut page, 50, 11);
        Internal::push_entry(&mut page, 90, 12);
        assert_eq!(Internal::entry_count(&page), 3);
        assert_eq!(Internal::child_for(&page, 1).unwrap(), Some(10));
        assert_eq!(Internal::child_for(&page, 49).unwrap(), Some(10));
        assert_eq!(Internal::child_for(&page, 50).unwrap(), Some(11));
        assert_eq!(Internal::child_for(&page, 1000).unwrap(), Some(12));
        assert_eq!(Internal::first_child(&page).unwrap(), Some(10));
        assert_eq!(Internal::last_child(&page).unwrap(), Some(12));
    }

    #[test]
    fn directory_round_trips() {
        let mut page = PageBuf::default();
        let tables = vec![
            TableMeta {
                name: "T1".into(),
                root: 3,
                next_rowid: 151,
                last_batch_start: 129,
                last_batch_rows: 22,
            },
            TableMeta {
                name: "GoodsDim".into(),
                root: 9,
                next_rowid: 8,
                last_batch_start: 1,
                last_batch_rows: 7,
            },
        ];
        Directory::encode(&mut page, 12, &tables);
        let (pages, back) = Directory::decode(&page).unwrap();
        assert_eq!(pages, 12);
        assert_eq!(back, tables);
    }
}
