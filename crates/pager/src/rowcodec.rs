//! Binary row payloads: a `Vec<Value>` as the byte payload of one leaf cell.
//!
//! One tag byte per value, fixed-width little-endian numeric payloads,
//! length-prefixed strings — injective and strict, so a decoded row is
//! exactly the row that was stored or an error (never a near-miss). The
//! disk-vs-row answer-identity property rests on this round trip.

use tqs_sql::value::{Decimal, Value};

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_UINT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_DOUBLE: u8 = 5;
const TAG_DECIMAL: u8 = 6;
const TAG_VARCHAR: u8 = 7;
const TAG_TEXT: u8 = 8;
const TAG_DATE: u8 = 9;

/// Decoding failure (truncated payload, unknown tag, bad UTF-8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowCodecError(pub String);

impl std::fmt::Display for RowCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "row codec: {}", self.0)
    }
}

/// Append the encoding of `row` to `out`.
pub fn encode_row(row: &[Value], out: &mut Vec<u8>) {
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(u8::from(*b));
            }
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::UInt(u) => {
                out.push(TAG_UINT);
                out.extend_from_slice(&u.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Double(d) => {
                out.push(TAG_DOUBLE);
                out.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            Value::Decimal(d) => {
                out.push(TAG_DECIMAL);
                out.extend_from_slice(&d.mantissa.to_le_bytes());
                out.push(d.scale);
            }
            Value::Varchar(s) => {
                out.push(TAG_VARCHAR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Text(s) => {
                out.push(TAG_TEXT);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                out.push(TAG_DATE);
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RowCodecError> {
        if self.at + n > self.bytes.len() {
            return Err(RowCodecError(format!(
                "payload truncated at byte {} (wanted {n} more of {})",
                self.at,
                self.bytes.len()
            )));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, RowCodecError> {
        Ok(self.take(1)?[0])
    }
}

fn array<const N: usize>(s: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    a.copy_from_slice(s);
    a
}

/// Decode one row payload produced by [`encode_row`].
pub fn decode_row(bytes: &[u8]) -> Result<Vec<Value>, RowCodecError> {
    let mut cur = Cursor { bytes, at: 0 };
    let n = u16::from_le_bytes(array(cur.take(2)?)) as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = cur.byte()?;
        row.push(match tag {
            TAG_NULL => Value::Null,
            TAG_BOOL => Value::Bool(cur.byte()? != 0),
            TAG_INT => Value::Int(i64::from_le_bytes(array(cur.take(8)?))),
            TAG_UINT => Value::UInt(u64::from_le_bytes(array(cur.take(8)?))),
            TAG_FLOAT => Value::Float(f32::from_bits(u32::from_le_bytes(array(cur.take(4)?)))),
            TAG_DOUBLE => Value::Double(f64::from_bits(u64::from_le_bytes(array(cur.take(8)?)))),
            TAG_DECIMAL => {
                let mantissa = i128::from_le_bytes(array(cur.take(16)?));
                Value::Decimal(Decimal::new(mantissa, cur.byte()?))
            }
            TAG_VARCHAR | TAG_TEXT => {
                let len = u32::from_le_bytes(array(cur.take(4)?)) as usize;
                let s = std::str::from_utf8(cur.take(len)?)
                    .map_err(|_| RowCodecError("string payload is not UTF-8".into()))?
                    .to_string();
                if tag == TAG_VARCHAR {
                    Value::Varchar(s)
                } else {
                    Value::Text(s)
                }
            }
            TAG_DATE => Value::Date(i32::from_le_bytes(array(cur.take(4)?))),
            other => return Err(RowCodecError(format!("unknown value tag {other}"))),
        });
    }
    if cur.at != bytes.len() {
        return Err(RowCodecError(format!(
            "{} trailing bytes after the last value",
            bytes.len() - cur.at
        )));
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Float(1.5e-3),
            Value::Double(std::f64::consts::PI),
            Value::Decimal(Decimal::new(-12345, 3)),
            Value::Varchar("a\"b\nc — ünïcode".into()),
            Value::Text(String::new()),
            Value::Date(19876),
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        let row = sample_row();
        let mut bytes = Vec::new();
        encode_row(&row, &mut bytes);
        assert_eq!(decode_row(&bytes).unwrap(), row);
        // empty row too
        let mut empty = Vec::new();
        encode_row(&[], &mut empty);
        assert_eq!(decode_row(&empty).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn truncation_is_an_error_at_every_length() {
        let row = sample_row();
        let mut bytes = Vec::new();
        encode_row(&row, &mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                decode_row(&bytes[..cut]).is_err(),
                "decode accepted a {cut}-byte prefix"
            );
        }
        // ...and trailing garbage is too.
        bytes.push(0);
        assert!(decode_row(&bytes).is_err());
    }

    #[test]
    fn float_bit_patterns_survive() {
        for v in [
            Value::Double(f64::NAN),
            Value::Double(-0.0),
            Value::Float(f32::INFINITY),
        ] {
            let mut bytes = Vec::new();
            encode_row(std::slice::from_ref(&v), &mut bytes);
            let back = decode_row(&bytes).unwrap();
            match (&v, &back[0]) {
                (Value::Double(a), Value::Double(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => panic!("variant changed"),
            }
        }
    }
}
