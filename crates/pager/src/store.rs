//! The disk store: table heaps as append-only B+trees over a buffer pool,
//! committed through the WAL, with crash-point injection.
//!
//! A store is a directory holding two files:
//!
//! * `data.tqs` — the page file. Page 0 is the table directory; every other
//!   page is a B+tree leaf or internal node.
//! * `wal.tqs` — the write-ahead log. Emptied by a checkpoint at the end of
//!   every successful commit and on recovery, so it carries at most the one
//!   in-flight batch.
//!
//! Commit protocol (steal/no-force → no-steal/force-at-checkpoint hybrid):
//!
//! 1. re-encode the table directory into page 0 (always part of the batch);
//! 2. append every dirty page image plus a commit record to the WAL;
//! 3. `fsync` the WAL — **this is the commit point**;
//! 4. flush the dirty pages to the data file and `fsync` it;
//! 5. truncate the WAL (checkpoint).
//!
//! [`CrashPoint`] names the five places a simulated process kill can land in
//! that protocol. A crash poisons the store — every later operation fails —
//! until [`DiskStore::open`] re-runs redo recovery over the files. Batches
//! whose commit record was fsynced (3) survive a crash at any later point;
//! batches that never reached (3) vanish entirely.

use crate::page::{
    Directory, Internal, Leaf, PageBuf, PageCorrupt, PageId, TableMeta, KIND_INTERNAL, KIND_LEAF,
};
use crate::pool::{BufferPool, DataFile, PoolStats};
use crate::rowcodec::{decode_row, encode_row};
use crate::wal::{RecoveryStats, Wal};
use std::fs::OpenOptions;
use std::io;
use std::path::{Path, PathBuf};
use tqs_sql::value::Value;

/// Default buffer-pool capacity, in frames. Small on purpose: realistic
/// table loads must overflow it so eviction and re-reads actually happen.
pub const DEFAULT_POOL_FRAMES: usize = 24;

/// Where a simulated process kill lands inside the commit protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Before anything is written: the batch vanishes without a trace.
    BeforeWalAppend,
    /// After the WAL append but before its `fsync`: the OS page cache loses
    /// the record, so the batch vanishes despite the `write()` returning.
    WalAppended,
    /// After the WAL `fsync` but before any data page lands: the batch is
    /// committed and recovery must redo every page from the log.
    WalSynced,
    /// Partway through the data-file flush, leaving the last page torn in
    /// half: recovery must repair it from its full WAL image.
    MidHeapFlush,
    /// After data pages are flushed and synced but before the WAL
    /// checkpoint truncation: recovery replays the batch over identical
    /// bytes — redo must be idempotent.
    AfterFlush,
}

impl CrashPoint {
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::BeforeWalAppend,
        CrashPoint::WalAppended,
        CrashPoint::WalSynced,
        CrashPoint::MidHeapFlush,
        CrashPoint::AfterFlush,
    ];

    pub fn label(self) -> &'static str {
        match self {
            CrashPoint::BeforeWalAppend => "before-wal-append",
            CrashPoint::WalAppended => "wal-appended-unsynced",
            CrashPoint::WalSynced => "wal-synced",
            CrashPoint::MidHeapFlush => "mid-heap-flush",
            CrashPoint::AfterFlush => "after-flush-before-checkpoint",
        }
    }

    /// Is the in-flight batch past the commit point when the kill lands —
    /// i.e. must it survive recovery?
    pub fn batch_is_committed(self) -> bool {
        matches!(
            self,
            CrashPoint::WalSynced | CrashPoint::MidHeapFlush | CrashPoint::AfterFlush
        )
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One leaf's worth of a table scan, with the storage metadata the seeded
/// disk faults key on.
#[derive(Debug, Clone)]
pub struct LeafScan {
    pub page: PageId,
    /// This leaf overflowed into a right sibling at some point.
    pub split_origin: bool,
    /// Cell count at this page's first flush, when it has been flushed — the
    /// version a stale evicted frame would serve.
    pub first_flush_cells: Option<usize>,
    pub rows: Vec<(u64, Vec<Value>)>,
}

/// A full table scan in rowid order, leaf by leaf.
#[derive(Debug, Clone)]
pub struct TableScan {
    pub leaves: Vec<LeafScan>,
    /// First rowid of the most recent commit batch (0 = none).
    pub last_batch_start: u64,
    /// Rows in the most recent commit batch.
    pub last_batch_rows: u32,
}

impl TableScan {
    pub fn row_count(&self) -> usize {
        self.leaves.iter().map(|l| l.rows.len()).sum()
    }

    pub fn into_rows(self) -> Vec<(u64, Vec<Value>)> {
        self.leaves.into_iter().flat_map(|l| l.rows).collect()
    }
}

fn invalid(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

fn corrupt(e: PageCorrupt) -> io::Error {
    invalid(e)
}

/// A disk-backed store rooted at one directory.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    data: DataFile,
    wal: Wal,
    pool: BufferPool,
    tables: Vec<TableMeta>,
    page_count: u32,
    batch_seq: u64,
    crash_at: Option<CrashPoint>,
    poisoned: bool,
}

impl DiskStore {
    /// Create a fresh store at `dir`, wiping anything already there.
    pub fn create(dir: &Path, pool_frames: usize) -> io::Result<DiskStore> {
        if dir.exists() {
            std::fs::remove_dir_all(dir)?;
        }
        std::fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(dir.join("data.tqs"))?;
        let mut data = DataFile::new(file);
        let mut page0 = PageBuf::default();
        Directory::init(&mut page0);
        data.write_page(0, &page0)?;
        data.sync()?;
        let mut wal = Wal::open(&dir.join("wal.tqs"))?;
        wal.reset()?;
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            data,
            wal,
            pool: BufferPool::new(pool_frames),
            tables: Vec::new(),
            page_count: 1,
            batch_seq: 0,
            crash_at: None,
            poisoned: false,
        })
    }

    /// Open an existing store, running redo recovery over its WAL first.
    pub fn open(dir: &Path, pool_frames: usize) -> io::Result<(DiskStore, RecoveryStats)> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join("data.tqs"))?;
        let mut data = DataFile::new(file);
        let mut wal = Wal::open(&dir.join("wal.tqs"))?;
        let stats = wal.replay(&mut data)?;
        data.sync()?;
        wal.reset()?;
        let mut page0 = PageBuf::default();
        data.read_page(0, &mut page0)?;
        let (page_count, tables) = Directory::decode(&page0).map_err(corrupt)?;
        Ok((
            DiskStore {
                dir: dir.to_path_buf(),
                data,
                wal,
                pool: BufferPool::new(pool_frames),
                tables,
                page_count,
                batch_seq: 0,
                crash_at: None,
                poisoned: false,
            },
            stats,
        ))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn tables(&self) -> &[TableMeta] {
        &self.tables
    }

    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Arm (or disarm) a one-shot crash at the next commit.
    pub fn set_crash_point(&mut self, point: Option<CrashPoint>) {
        self.crash_at = point;
    }

    /// Did an injected crash fire? A poisoned store refuses every operation
    /// until reopened through [`DiskStore::open`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Rows ever assigned to `table` by this store lineage (committed plus
    /// in-flight): rowids are contiguous from 1.
    pub fn rows_inserted(&self, table: &str) -> io::Result<u64> {
        Ok(self.tables[self.table_index(table)?].next_rowid - 1)
    }

    fn check_poisoned(&self) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "store is poisoned by an injected crash; reopen it to recover",
            ));
        }
        Ok(())
    }

    fn table_index(&self, table: &str) -> io::Result<usize> {
        self.tables
            .iter()
            .position(|t| t.name == table)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("no table named {table}"))
            })
    }

    fn alloc_page(&mut self) -> PageId {
        let id = self.page_count;
        self.page_count += 1;
        self.pool.install_fresh(id);
        id
    }

    /// Register a table with an empty root leaf. Durable at the next commit.
    pub fn create_table(&mut self, name: &str) -> io::Result<()> {
        self.check_poisoned()?;
        if self.tables.iter().any(|t| t.name == name) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("table {name} already exists"),
            ));
        }
        let root = self.alloc_page();
        let idx = self.pool.fetch(&mut self.data, root)?;
        Leaf::init(self.pool.page_mut(idx));
        self.tables.push(TableMeta {
            name: name.to_string(),
            root,
            next_rowid: 1,
            last_batch_start: 0,
            last_batch_rows: 0,
        });
        Ok(())
    }

    /// Insert `rows` as one commit batch: assign rowids, grow the B+tree,
    /// then run the full commit protocol (including any armed crash).
    pub fn insert_batch(&mut self, table: &str, rows: &[Vec<Value>]) -> io::Result<()> {
        self.check_poisoned()?;
        let ti = self.table_index(table)?;
        let first = self.tables[ti].next_rowid;
        let mut payload = Vec::new();
        for row in rows {
            let rowid = self.tables[ti].next_rowid;
            self.tables[ti].next_rowid += 1;
            payload.clear();
            encode_row(row, &mut payload);
            let buf = payload.clone();
            self.tree_insert(ti, rowid, &buf)?;
        }
        if !rows.is_empty() {
            self.tables[ti].last_batch_start = first;
            self.tables[ti].last_batch_rows = rows.len() as u32;
        }
        self.commit()
    }

    fn tree_insert(&mut self, ti: usize, rowid: u64, payload: &[u8]) -> io::Result<()> {
        // Descend the right edge, remembering the internal path.
        let mut path: Vec<PageId> = Vec::new();
        let mut cur = self.tables[ti].root;
        loop {
            let idx = self.pool.fetch(&mut self.data, cur)?;
            match self.pool.page(idx).kind() {
                KIND_LEAF => break,
                KIND_INTERNAL => {
                    path.push(cur);
                    cur = Internal::last_child(self.pool.page(idx))
                        .map_err(corrupt)?
                        .ok_or_else(|| invalid("internal node with no children"))?;
                }
                k => return Err(invalid(format!("unexpected page kind {k} on insert path"))),
            }
        }
        let idx = self.pool.fetch(&mut self.data, cur)?;
        if Leaf::fits(self.pool.page(idx), payload.len()) {
            Leaf::push_cell(self.pool.page_mut(idx), rowid, payload);
            return Ok(());
        }
        // Right-edge split: the full leaf keeps its cells and gains the
        // split-origin mark; the new row opens a fresh right sibling.
        let new_leaf = self.alloc_page();
        let idx = self.pool.fetch(&mut self.data, cur)?;
        Leaf::mark_split_origin(self.pool.page_mut(idx));
        Leaf::set_next_leaf(self.pool.page_mut(idx), new_leaf);
        let idx = self.pool.fetch(&mut self.data, new_leaf)?;
        Leaf::init(self.pool.page_mut(idx));
        Leaf::push_cell(self.pool.page_mut(idx), rowid, payload);
        // Thread the new child up the path, splitting full internals.
        let mut carry = new_leaf;
        loop {
            match path.pop() {
                Some(parent) => {
                    let idx = self.pool.fetch(&mut self.data, parent)?;
                    if Internal::fits(self.pool.page(idx)) {
                        Internal::push_entry(self.pool.page_mut(idx), rowid, carry);
                        return Ok(());
                    }
                    let sibling = self.alloc_page();
                    let idx = self.pool.fetch(&mut self.data, sibling)?;
                    Internal::init(self.pool.page_mut(idx));
                    Internal::push_entry(self.pool.page_mut(idx), rowid, carry);
                    carry = sibling;
                }
                None => {
                    // The tree grew past its root.
                    let old_root = self.tables[ti].root;
                    let new_root = self.alloc_page();
                    let idx = self.pool.fetch(&mut self.data, new_root)?;
                    Internal::init(self.pool.page_mut(idx));
                    Internal::push_entry(self.pool.page_mut(idx), 0, old_root);
                    Internal::push_entry(self.pool.page_mut(idx), rowid, carry);
                    self.tables[ti].root = new_root;
                    return Ok(());
                }
            }
        }
    }

    /// Run the commit protocol over every dirty page (see the module docs).
    pub fn commit(&mut self) -> io::Result<()> {
        self.check_poisoned()?;
        let crash = self.crash_at.take();
        // The directory rides in every batch so table metadata is always
        // WAL-protected.
        let idx = self.pool.fetch(&mut self.data, 0)?;
        Directory::encode(self.pool.page_mut(idx), self.page_count, &self.tables);
        let dirty = self.pool.dirty_page_ids();
        self.batch_seq += 1;

        if crash == Some(CrashPoint::BeforeWalAppend) {
            return self.crash(CrashPoint::BeforeWalAppend);
        }
        let wal_len = self.wal.len()?;
        {
            let images: Vec<(PageId, &PageBuf)> = dirty
                .iter()
                .map(|&id| (id, self.pool.image_of(id).expect("dirty page is framed")))
                .collect();
            self.wal.append_batch(&images, self.batch_seq)?;
        }
        if crash == Some(CrashPoint::WalAppended) {
            // The record only ever reached the OS cache; the kill drops it.
            self.wal.truncate_to(wal_len)?;
            return self.crash(CrashPoint::WalAppended);
        }
        self.wal.sync()?; // ← the commit point
        if crash == Some(CrashPoint::WalSynced) {
            return self.crash(CrashPoint::WalSynced);
        }
        if crash == Some(CrashPoint::MidHeapFlush) {
            // Every page but the last lands whole; the last is torn in half.
            if let Some((&last, rest)) = dirty.split_last() {
                for &id in rest {
                    let page = self.pool.image_of(id).expect("framed").clone();
                    self.data.write_page(id, &page)?;
                }
                let page = self.pool.image_of(last).expect("framed").clone();
                self.data.write_torn(last, &page)?;
            }
            self.data.sync()?;
            return self.crash(CrashPoint::MidHeapFlush);
        }
        self.pool.flush_dirty(&mut self.data)?;
        self.data.sync()?;
        if crash == Some(CrashPoint::AfterFlush) {
            // Durable, but the WAL checkpoint never happens: recovery will
            // replay this batch over identical bytes.
            return self.crash(CrashPoint::AfterFlush);
        }
        self.wal.reset()?;
        Ok(())
    }

    fn crash(&mut self, point: CrashPoint) -> io::Result<()> {
        self.poisoned = true;
        Err(io::Error::other(format!(
            "injected crash at {} during commit",
            point.label()
        )))
    }

    /// Scan `table` leaf-by-leaf in rowid order.
    pub fn scan(&mut self, table: &str) -> io::Result<TableScan> {
        self.check_poisoned()?;
        let ti = self.table_index(table)?;
        let meta = self.tables[ti].clone();
        // Descend to the leftmost leaf…
        let mut cur = meta.root;
        loop {
            let idx = self.pool.fetch(&mut self.data, cur)?;
            match self.pool.page(idx).kind() {
                KIND_LEAF => break,
                KIND_INTERNAL => {
                    cur = Internal::first_child(self.pool.page(idx))
                        .map_err(corrupt)?
                        .ok_or_else(|| invalid("internal node with no children"))?;
                }
                k => return Err(invalid(format!("unexpected page kind {k} on scan path"))),
            }
        }
        // …then follow the next-leaf chain.
        let mut leaves = Vec::new();
        let mut next = Some(cur);
        while let Some(id) = next {
            let idx = self.pool.fetch(&mut self.data, id)?;
            let page = self.pool.page(idx);
            let cells = Leaf::cells(page).map_err(corrupt)?;
            let split_origin = Leaf::split_origin(page);
            next = Leaf::next_leaf(page);
            let mut rows = Vec::with_capacity(cells.len());
            for (rowid, payload) in cells {
                rows.push((rowid, decode_row(&payload).map_err(invalid)?));
            }
            leaves.push(LeafScan {
                page: id,
                split_origin,
                first_flush_cells: self.pool.first_flush_cells(id),
                rows,
            });
        }
        Ok(TableScan {
            leaves,
            last_batch_start: meta.last_batch_start,
            last_batch_rows: meta.last_batch_rows,
        })
    }

    /// Point lookup by rowid, descending the tree (no chain walk).
    pub fn get(&mut self, table: &str, rowid: u64) -> io::Result<Option<Vec<Value>>> {
        self.check_poisoned()?;
        let ti = self.table_index(table)?;
        let mut cur = self.tables[ti].root;
        loop {
            let idx = self.pool.fetch(&mut self.data, cur)?;
            match self.pool.page(idx).kind() {
                KIND_LEAF => {
                    return Leaf::get(self.pool.page(idx), rowid)
                        .map_err(corrupt)?
                        .map(|payload| decode_row(&payload).map_err(invalid))
                        .transpose();
                }
                KIND_INTERNAL => {
                    match Internal::child_for(self.pool.page(idx), rowid).map_err(corrupt)? {
                        Some(child) => cur = child,
                        None => return Ok(None),
                    }
                }
                k => return Err(invalid(format!("unexpected page kind {k} on lookup path"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            TempDir(std::env::temp_dir().join(format!("tqs-store-{}-{tag}", std::process::id())))
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn row(i: u64) -> Vec<Value> {
        vec![
            Value::Int(i as i64),
            Value::Varchar(format!("row-{i}")),
            if i % 7 == 0 {
                Value::Null
            } else {
                Value::UInt(i * 3)
            },
        ]
    }

    fn all_rowids(store: &mut DiskStore, table: &str) -> Vec<u64> {
        store
            .scan(table)
            .unwrap()
            .into_rows()
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    #[test]
    fn inserts_split_scan_and_survive_reopen() {
        let t = TempDir::new("roundtrip");
        let mut store = DiskStore::create(&t.0, 4).unwrap();
        store.create_table("T1").unwrap();
        store.create_table("T2").unwrap();
        // 150 rows in batches of 40 → several leaves (cap 32) and splits,
        // through a pool of only 4 frames.
        let rows: Vec<Vec<Value>> = (1..=150).map(row).collect();
        for chunk in rows.chunks(40) {
            store.insert_batch("T1", chunk).unwrap();
        }
        store.insert_batch("T2", &rows[..5]).unwrap();

        let scan = store.scan("T1").unwrap();
        assert!(scan.leaves.len() > 3, "expected multiple leaves");
        assert!(scan.leaves[0].split_origin, "first leaf must have split");
        assert!(!scan.leaves.last().unwrap().split_origin);
        assert_eq!(scan.last_batch_start, 121);
        assert_eq!(scan.last_batch_rows, 30);
        let got = scan.into_rows();
        assert_eq!(got.len(), 150);
        for (i, (rowid, r)) in got.iter().enumerate() {
            assert_eq!(*rowid, i as u64 + 1, "rowids contiguous in order");
            assert_eq!(r, &row(i as u64 + 1));
        }
        assert_eq!(store.get("T1", 97).unwrap(), Some(row(97)));
        assert_eq!(store.get("T1", 151).unwrap(), None);
        assert_eq!(store.rows_inserted("T1").unwrap(), 150);
        let evictions = store.pool_stats().evictions;
        assert!(evictions > 0, "a 4-frame pool over 150 rows must evict");

        drop(store);
        let (mut back, stats) = DiskStore::open(&t.0, 4).unwrap();
        assert_eq!(stats.batches_replayed, 0, "clean close leaves no WAL");
        assert_eq!(back.scan("T1").unwrap().into_rows(), got);
        assert_eq!(back.get("T2", 3).unwrap(), Some(row(3)));
    }

    #[test]
    fn crash_at_every_point_keeps_committed_rows_and_only_those() {
        for point in CrashPoint::ALL {
            let t = TempDir::new(&format!("crash-{point}"));
            let mut store = DiskStore::create(&t.0, 8).unwrap();
            store.create_table("T").unwrap();
            let rows: Vec<Vec<Value>> = (1..=120).map(row).collect();
            store.insert_batch("T", &rows[..40]).unwrap();
            store.insert_batch("T", &rows[40..80]).unwrap();
            let committed: Vec<u64> = (1..=80).collect();

            store.set_crash_point(Some(point));
            let err = store.insert_batch("T", &rows[80..]).unwrap_err();
            assert!(err.to_string().contains(point.label()), "{err}");
            assert!(store.is_poisoned());
            assert!(store.scan("T").is_err(), "poisoned store must refuse");

            drop(store);
            let (mut back, stats) = DiskStore::open(&t.0, 8).unwrap();
            let expect: Vec<u64> = if point.batch_is_committed() {
                assert!(stats.batches_replayed >= 1, "{point}: redo must run");
                (1..=120).collect()
            } else {
                assert_eq!(stats.batches_replayed, 0, "{point}: nothing to redo");
                committed.clone()
            };
            assert_eq!(all_rowids(&mut back, "T"), expect, "after {point}");
            // the store works again post-recovery
            back.insert_batch("T", &rows[..3]).unwrap();
            assert_eq!(back.rows_inserted("T").unwrap(), expect.len() as u64 + 3);
        }
    }

    #[test]
    fn empty_tables_and_empty_batches_are_durable() {
        let t = TempDir::new("empty");
        let mut store = DiskStore::create(&t.0, 8).unwrap();
        store.create_table("Empty").unwrap();
        store.insert_batch("Empty", &[]).unwrap();
        drop(store);
        let (mut back, _) = DiskStore::open(&t.0, 8).unwrap();
        assert_eq!(back.scan("Empty").unwrap().row_count(), 0);
        assert_eq!(back.tables().len(), 1);
    }

    #[test]
    fn first_flush_cells_tracks_the_stale_version_of_a_regrown_leaf() {
        let t = TempDir::new("staleframe");
        let mut store = DiskStore::create(&t.0, 8).unwrap();
        store.create_table("T").unwrap();
        // first batch part-fills the tail leaf, second batch grows it
        let rows: Vec<Vec<Value>> = (1..=40).map(row).collect();
        store.insert_batch("T", &rows[..10]).unwrap();
        store.insert_batch("T", &rows[10..]).unwrap();
        let scan = store.scan("T").unwrap();
        let first = &scan.leaves[0];
        assert_eq!(first.first_flush_cells, Some(10), "flushed at 10 cells");
        assert!(first.rows.len() > 10, "grew past its first flushed image");
    }
}
