//! # tqs-pager — the disk-backed page store
//!
//! A small but honest storage engine: fixed-size pages, a buffer pool with
//! pin counts and LRU eviction, a write-ahead log with redo recovery, and
//! append-only B+trees keyed by rowid holding each table's heap. It backs
//! the third simulated engine (`EngineConnector::disk`) so every oracle,
//! campaign fleet, and reverification pass can hunt storage-layer logic bugs
//! with the exact same drivers they use against the row and columnar engines.
//!
//! Layering, bottom to top:
//!
//! * [`page`] — page images and the on-page codecs (leaf / internal /
//!   directory), all strict: a torn page decodes to an error, not garbage.
//! * [`rowcodec`] — `Vec<Value>` ⇄ leaf-cell payload bytes, injective and
//!   strict, so disk answers can be compared bit-for-bit against row answers.
//! * [`pool`] — the buffer pool (no-steal: dirty pages never hit the data
//!   file outside a commit).
//! * [`wal`] — the write-ahead log and redo recovery.
//! * [`store`] — [`DiskStore`]: tables, commit protocol, crash injection.
//!
//! Crash-fault injection is first-class: [`CrashPoint`] names five places a
//! process kill can land inside the commit protocol, and
//! [`DiskStore::set_crash_point`] arms a one-shot kill there. A crashed
//! store is poisoned until [`DiskStore::open`] re-runs recovery. The
//! invariant the crash-recovery suite pins: a batch whose commit record was
//! fsynced survives recovery byte-for-byte; a batch that never reached the
//! fsync vanishes entirely.

pub mod envfault;
pub mod page;
pub mod pool;
pub mod rowcodec;
pub mod store;
pub mod wal;

pub use envfault::{EnvFaultOp, EnvFaultPolicy};
pub use page::{PageBuf, PageCorrupt, PageId, TableMeta, MAX_LEAF_CELLS, PAGE_SIZE};
pub use pool::{BufferPool, DataFile, PoolStats};
pub use rowcodec::{decode_row, encode_row, RowCodecError};
pub use store::{CrashPoint, DiskStore, LeafScan, TableScan, DEFAULT_POOL_FRAMES};
pub use wal::{RecoveryStats, Wal};
