//! The buffer pool: a fixed set of in-memory frames over the data file, with
//! pin counts and LRU eviction.
//!
//! Policy is **no-steal**: only clean, unpinned frames are evicted, so a
//! dirty page never reaches the data file outside a commit's WAL-first
//! protocol. If every frame is dirty or pinned the pool temporarily exceeds
//! its capacity rather than break that invariant (the store's commit batches
//! touch a bounded handful of pages, so the overshoot is small and
//! self-healing at the next flush).

use crate::page::{PageBuf, PageId, KIND_LEAF, PAGE_SIZE};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};

/// The data file as an array of pages.
#[derive(Debug)]
pub struct DataFile {
    file: File,
}

impl DataFile {
    pub fn new(file: File) -> DataFile {
        DataFile { file }
    }

    pub fn read_page(&mut self, id: PageId, into: &mut PageBuf) -> io::Result<()> {
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(into.as_bytes_mut().as_mut_slice())
    }

    pub fn write_page(&mut self, id: PageId, page: &PageBuf) -> io::Result<()> {
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(page.as_bytes().as_slice())
    }

    /// Write only the first half of the page — the torn write a mid-flush
    /// crash leaves behind. Recovery must repair this from the WAL image.
    pub fn write_torn(&mut self, id: PageId, page: &PageBuf) -> io::Result<()> {
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(&page.as_bytes()[..PAGE_SIZE / 2])
    }

    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Pages currently backed by the file (rounded down; a torn trailing
    /// write leaves a partial page that does not count).
    pub fn page_capacity(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len() / PAGE_SIZE as u64)
    }
}

#[derive(Debug)]
struct Frame {
    page_id: PageId,
    page: PageBuf,
    dirty: bool,
    pins: u32,
    last_used: u64,
}

/// Cumulative pool counters (surfaced by `EXPLAIN` on the disk engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: usize,
    pub misses: usize,
    pub evictions: usize,
}

/// Frame index inside the pool (invalidated by the next fetch/evict).
pub type FrameIdx = usize;

#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, FrameIdx>,
    tick: u64,
    stats: PoolStats,
    /// Leaf cell count at each page's *first* flush to the data file — the
    /// "version an evicted-then-stale frame would serve" the seeded
    /// stale-read fault keys on. `None` for non-leaf pages.
    first_flush_cells: HashMap<PageId, Option<usize>>,
}

impl BufferPool {
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            capacity: capacity.max(4),
            frames: Vec::new(),
            map: HashMap::new(),
            tick: 0,
            stats: PoolStats::default(),
            first_flush_cells: HashMap::new(),
        }
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn touch(&mut self, idx: FrameIdx) {
        self.tick += 1;
        self.frames[idx].last_used = self.tick;
    }

    /// Make room for one more frame if at capacity: evict the
    /// least-recently-used clean, unpinned frame. No candidate → overshoot.
    fn make_room(&mut self) {
        if self.frames.len() < self.capacity {
            return;
        }
        let victim = self
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.dirty && f.pins == 0)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i);
        if let Some(idx) = victim {
            let evicted = self.frames.swap_remove(idx);
            self.map.remove(&evicted.page_id);
            if idx < self.frames.len() {
                // swap_remove moved the tail frame into `idx`
                self.map.insert(self.frames[idx].page_id, idx);
            }
            self.stats.evictions += 1;
            tqs_telemetry::counter!("pager.pool.evictions").incr();
        }
    }

    /// Fetch `id` into a frame, reading from `file` on a miss.
    pub fn fetch(&mut self, file: &mut DataFile, id: PageId) -> io::Result<FrameIdx> {
        if let Some(&idx) = self.map.get(&id) {
            self.stats.hits += 1;
            tqs_telemetry::counter!("pager.pool.hits").incr();
            self.touch(idx);
            return Ok(idx);
        }
        self.stats.misses += 1;
        tqs_telemetry::counter!("pager.pool.misses").incr();
        self.make_room();
        let mut page = PageBuf::default();
        file.read_page(id, &mut page)?;
        let idx = self.frames.len();
        self.frames.push(Frame {
            page_id: id,
            page,
            dirty: false,
            pins: 0,
            last_used: 0,
        });
        self.map.insert(id, idx);
        self.touch(idx);
        Ok(idx)
    }

    /// Install a frame for a freshly allocated page (no backing bytes yet).
    pub fn install_fresh(&mut self, id: PageId) -> FrameIdx {
        debug_assert!(!self.map.contains_key(&id), "page {id} already framed");
        self.make_room();
        let idx = self.frames.len();
        self.frames.push(Frame {
            page_id: id,
            page: PageBuf::default(),
            dirty: true,
            pins: 0,
            last_used: 0,
        });
        self.map.insert(id, idx);
        self.touch(idx);
        idx
    }

    pub fn page(&self, idx: FrameIdx) -> &PageBuf {
        &self.frames[idx].page
    }

    /// Mutable access marks the frame dirty.
    pub fn page_mut(&mut self, idx: FrameIdx) -> &mut PageBuf {
        self.frames[idx].dirty = true;
        &mut self.frames[idx].page
    }

    pub fn pin(&mut self, idx: FrameIdx) {
        self.frames[idx].pins += 1;
    }

    pub fn unpin(&mut self, idx: FrameIdx) {
        debug_assert!(self.frames[idx].pins > 0, "unpin of an unpinned frame");
        self.frames[idx].pins = self.frames[idx].pins.saturating_sub(1);
    }

    /// Dirty page ids, ascending — the commit batch's WAL image set.
    pub fn dirty_page_ids(&self) -> Vec<PageId> {
        let mut ids: Vec<PageId> = self
            .frames
            .iter()
            .filter(|f| f.dirty)
            .map(|f| f.page_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The current in-pool image of `id`, if framed.
    pub fn image_of(&self, id: PageId) -> Option<&PageBuf> {
        self.map.get(&id).map(|&idx| &self.frames[idx].page)
    }

    /// Flush every dirty frame to the data file and clear its dirty bit,
    /// recording each page's first-flushed leaf cell count.
    pub fn flush_dirty(&mut self, file: &mut DataFile) -> io::Result<()> {
        let mut idxs: Vec<FrameIdx> = (0..self.frames.len())
            .filter(|&i| self.frames[i].dirty)
            .collect();
        idxs.sort_by_key(|&i| self.frames[i].page_id);
        for idx in idxs {
            let (id, cells) = {
                let f = &self.frames[idx];
                let cells =
                    (f.page.kind() == KIND_LEAF).then(|| crate::page::Leaf::cell_count(&f.page));
                (f.page_id, cells)
            };
            file.write_page(id, &self.frames[idx].page)?;
            self.frames[idx].dirty = false;
            self.first_flush_cells.entry(id).or_insert(cells);
        }
        Ok(())
    }

    /// The leaf cell count `id` had when it was first flushed, if it was a
    /// leaf and has been flushed at least once.
    pub fn first_flush_cells(&self, id: PageId) -> Option<usize> {
        self.first_flush_cells.get(&id).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Leaf;

    fn temp_data_file(tag: &str) -> (std::path::PathBuf, DataFile) {
        let path = std::env::temp_dir().join(format!("tqs-pool-{}-{tag}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        (path, DataFile::new(file))
    }

    #[test]
    fn lru_evicts_the_coldest_clean_frame_only() {
        let (path, mut file) = temp_data_file("lru");
        // back 8 pages
        for id in 0..8u32 {
            let mut p = PageBuf::default();
            Leaf::init(&mut p);
            Leaf::push_cell(&mut p, id as u64 + 1, &[id as u8]);
            file.write_page(id, &p).unwrap();
        }
        let mut pool = BufferPool::new(4);
        for id in 0..4u32 {
            pool.fetch(&mut file, id).unwrap();
        }
        // dirty page 0, pin page 1; re-touch page 3 so page 2 is coldest
        let idx0 = pool.fetch(&mut file, 0).unwrap();
        pool.page_mut(idx0);
        let idx1 = pool.fetch(&mut file, 1).unwrap();
        pool.pin(idx1);
        pool.fetch(&mut file, 3).unwrap();
        // a miss must evict page 2 (clean, unpinned, coldest)
        pool.fetch(&mut file, 7).unwrap();
        assert!(pool.image_of(0).is_some(), "dirty frame survives");
        assert!(pool.image_of(1).is_some(), "pinned frame survives");
        assert!(pool.image_of(2).is_none(), "cold clean frame evicted");
        assert!(pool.image_of(3).is_some());
        assert_eq!(pool.stats().evictions, 1);
        // dirty + pinned everywhere → pool overshoots instead of stealing
        let idx3 = pool.fetch(&mut file, 3).unwrap();
        pool.page_mut(idx3);
        let idx7 = pool.fetch(&mut file, 7).unwrap();
        pool.page_mut(idx7);
        pool.fetch(&mut file, 4).unwrap();
        let idx4 = pool.fetch(&mut file, 4).unwrap();
        pool.page_mut(idx4);
        pool.fetch(&mut file, 5).unwrap();
        assert!(pool.image_of(0).is_some() && pool.image_of(3).is_some());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn flush_clears_dirty_bits_and_records_first_images() {
        let (path, mut file) = temp_data_file("flush");
        let mut pool = BufferPool::new(4);
        let idx = pool.install_fresh(0);
        Leaf::init(pool.page_mut(idx));
        Leaf::push_cell(pool.page_mut(idx), 1, &[1]);
        assert_eq!(pool.dirty_page_ids(), vec![0]);
        pool.flush_dirty(&mut file).unwrap();
        assert!(pool.dirty_page_ids().is_empty());
        assert_eq!(pool.first_flush_cells(0), Some(1));
        // grow the page and flush again: the first-flush count is sticky
        let idx = pool.fetch(&mut file, 0).unwrap();
        Leaf::push_cell(pool.page_mut(idx), 2, &[2]);
        Leaf::push_cell(pool.page_mut(idx), 3, &[3]);
        pool.flush_dirty(&mut file).unwrap();
        assert_eq!(pool.first_flush_cells(0), Some(1));
        // the file carries the latest image
        let mut back = PageBuf::default();
        file.read_page(0, &mut back).unwrap();
        assert_eq!(Leaf::cell_count(&back), 3);
        std::fs::remove_file(path).unwrap();
    }
}
