//! Environmental IO fault injection.
//!
//! The engines get their faults from the TQS catalog; the harness's *own*
//! environment (corpus appends, checkpoint journal writes, WAL batches)
//! gets them from an [`EnvFaultPolicy`]: a seeded, deterministic decision
//! function over an operation counter that injects EIO-style failures into
//! writes, fsyncs and renames. Chaos tests use it to prove the persistence
//! layer degrades gracefully — every append atomic-or-absent, torn tails
//! repaired on resume, bug-class sets identical to a fault-free run.
//!
//! The decision sequence is a pure function of `(seed, ticket, op)`, where
//! the ticket is a process-wide monotonically increasing counter per policy.
//! One liveness rule is built in: the check immediately following an
//! injected failure always passes, so a single retry of a failed operation
//! is guaranteed to make progress (callers still retry more than once —
//! interleaved operations from other threads may consume the free pass).
//!
//! The default policy is inert: `should_fail` is a single `Option`
//! discriminant test, so production paths pay nothing.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The IO operations the policy can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvFaultOp {
    /// `write`/`write_all` — injected as an EIO after a *short write* (the
    /// caller-visible contract: some prefix of the payload may be on disk).
    Write,
    /// `fsync`/`sync_data` — data written but durability not established.
    Sync,
    /// `rename` — atomic-replace step of a compaction/tmp-file protocol.
    Rename,
}

impl EnvFaultOp {
    fn mix(self) -> u64 {
        match self {
            EnvFaultOp::Write => 0x57A1,
            EnvFaultOp::Sync => 0x5CC5,
            EnvFaultOp::Rename => 0xA3E1,
        }
    }

    fn error(self) -> io::Error {
        let msg = match self {
            EnvFaultOp::Write => "injected EIO (short write)",
            EnvFaultOp::Sync => "injected fsync failure",
            EnvFaultOp::Rename => "injected rename failure",
        };
        io::Error::other(msg)
    }
}

#[derive(Debug)]
struct PolicyInner {
    seed: u64,
    rate_pct: u64,
    tickets: AtomicU64,
    injected: AtomicU64,
    last_failed: AtomicBool,
}

/// Seeded, shareable environmental fault policy. Cloning shares the state,
/// so one policy handed to corpus, checkpoint and WAL draws tickets from a
/// single sequence and reports one combined `injected()` count.
#[derive(Debug, Clone, Default)]
pub struct EnvFaultPolicy {
    inner: Option<Arc<PolicyInner>>,
}

impl EnvFaultPolicy {
    /// The inert policy: never fails anything.
    pub fn off() -> Self {
        EnvFaultPolicy { inner: None }
    }

    /// A policy failing roughly `rate_pct`% of checked operations,
    /// deterministically from `seed`.
    pub fn seeded(seed: u64, rate_pct: u8) -> Self {
        EnvFaultPolicy {
            inner: Some(Arc::new(PolicyInner {
                seed,
                rate_pct: u64::from(rate_pct.min(100)),
                tickets: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                last_failed: AtomicBool::new(false),
            })),
        }
    }

    /// True when this policy can inject failures.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Total failures injected so far (0 for the inert policy).
    pub fn injected(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.injected.load(Ordering::Relaxed))
    }

    /// Total operations checked so far (0 for the inert policy).
    pub fn tickets(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.tickets.load(Ordering::Relaxed))
    }

    /// Decide whether the next `op` should fail. Returns the injected error
    /// to surface, or `None` to let the real operation proceed.
    pub fn should_fail(&self, op: EnvFaultOp) -> Option<io::Error> {
        let inner = self.inner.as_ref()?;
        let ticket = inner.tickets.fetch_add(1, Ordering::Relaxed);
        // Liveness: the check right after an injected failure always passes.
        if inner.last_failed.swap(false, Ordering::Relaxed) {
            return None;
        }
        let h = splitmix64(
            inner
                .seed
                .wrapping_add(ticket.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ op.mix(),
        );
        if h % 100 < inner.rate_pct {
            inner.last_failed.store(true, Ordering::Relaxed);
            inner.injected.fetch_add(1, Ordering::Relaxed);
            tqs_telemetry::counter!("pager.envfault.injected").incr();
            Some(op.error())
        } else {
            None
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_policy_never_fails() {
        let p = EnvFaultPolicy::off();
        for _ in 0..1000 {
            assert!(p.should_fail(EnvFaultOp::Write).is_none());
        }
        assert_eq!(p.injected(), 0);
        assert_eq!(p.tickets(), 0);
        assert!(!p.is_active());
    }

    #[test]
    fn seeded_policy_is_deterministic() {
        let collect = |seed: u64| -> Vec<bool> {
            let p = EnvFaultPolicy::seeded(seed, 30);
            (0..200)
                .map(|_| p.should_fail(EnvFaultOp::Write).is_some())
                .collect()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn rate_is_roughly_honored_and_counted() {
        let p = EnvFaultPolicy::seeded(42, 30);
        let mut fails = 0u64;
        for _ in 0..1000 {
            if p.should_fail(EnvFaultOp::Sync).is_some() {
                fails += 1;
            }
        }
        assert_eq!(fails, p.injected());
        assert_eq!(p.tickets(), 1000);
        // 30% nominal, reduced by the no-two-consecutive liveness rule.
        assert!(fails > 100, "only {fails} failures at 30% rate");
        assert!(fails < 400, "{fails} failures at 30% rate");
    }

    #[test]
    fn never_two_consecutive_failures() {
        let p = EnvFaultPolicy::seeded(1, 100);
        let mut prev = false;
        for _ in 0..100 {
            let now = p.should_fail(EnvFaultOp::Rename).is_some();
            assert!(!(prev && now), "two consecutive injected failures");
            prev = now;
        }
        assert!(p.injected() > 0);
    }

    #[test]
    fn ops_carry_distinct_messages() {
        let p = EnvFaultPolicy::seeded(0, 100);
        let e = p.should_fail(EnvFaultOp::Write).unwrap();
        assert!(e.to_string().contains("short write"));
        p.should_fail(EnvFaultOp::Sync); // free pass consumed
        let e = p.should_fail(EnvFaultOp::Sync).unwrap();
        assert!(e.to_string().contains("fsync"));
    }

    #[test]
    fn clones_share_state() {
        let p = EnvFaultPolicy::seeded(5, 50);
        let q = p.clone();
        for _ in 0..50 {
            q.should_fail(EnvFaultOp::Write);
        }
        assert_eq!(p.tickets(), 50);
        assert_eq!(p.injected(), q.injected());
    }
}
