//! # tqs-sql
//!
//! SQL substrate shared by every other crate in the TQS workspace:
//!
//! * [`value`] — the [`value::Value`] model with MySQL-flavoured comparison,
//!   coercion and hashing semantics (the *correct* semantics the ground truth
//!   relies on, and the semantics the fault-injection layer perturbs).
//! * [`types`] — column types, their rendered names and the boundary values
//!   used by noise injection.
//! * [`ast`] — expression and `SELECT` statement AST, covering the paper's
//!   query space (seven join types, IN/EXISTS subqueries, aggregation).
//! * [`hints`] — optimizer hints and `optimizer_switch` session switches used
//!   to force alternative physical plans.
//! * [`render`] / [`parser`] — SQL text round-tripping.
//! * [`eval`] — the reference scalar expression evaluator with SQL
//!   three-valued logic.

pub mod ast;
pub mod eval;
pub mod hints;
pub mod parser;
pub mod render;
pub mod types;
pub mod value;

pub use ast::{
    AggFunc, Assignment, BinOp, ColumnRef, DeleteStmt, DmlStmt, Expr, FromClause, InsertStmt, Join,
    JoinType, OrderBy, SelectItem, SelectStmt, TableRef, UnOp, UpdateStmt,
};
pub use hints::{Hint, HintSet, SemiJoinStrategy, SessionSwitch, SwitchName};
pub use types::{ColumnDef, ColumnType};
pub use value::{Decimal, Value};

#[cfg(test)]
mod proptests {
    use crate::parser::{parse_expr, parse_stmt};
    use crate::render::{render_expr, render_stmt};
    use crate::value::{hash_key, sql_compare, SqlCmp, Value};
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i32>().prop_map(|i| Value::Int(i as i64)),
            any::<bool>().prop_map(Value::Bool),
            (-1000i64..1000).prop_map(|i| Value::Double(i as f64 / 8.0)),
            "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Varchar),
        ]
    }

    proptest! {
        /// Equal values (per sql_compare) must produce equal hash keys —
        /// the invariant every hash join and GROUP BY relies on. Cross-family
        /// string/number pairs are excluded: those are only comparable after
        /// the join operator coerces both sides to a common type, which is the
        /// engine's job (and where several injected faults live).
        #[test]
        fn hash_key_consistent_with_equality(a in arb_value(), b in arb_value()) {
            let same_family = a.as_str().is_some() == b.as_str().is_some();
            if same_family {
                if let SqlCmp::Ordering(std::cmp::Ordering::Equal) = sql_compare(&a, &b) {
                    prop_assert_eq!(hash_key(&a), hash_key(&b));
                }
            }
        }

        /// sql_compare is symmetric (with the ordering reversed).
        #[test]
        fn compare_is_antisymmetric(a in arb_value(), b in arb_value()) {
            match (sql_compare(&a, &b), sql_compare(&b, &a)) {
                (SqlCmp::Unknown, SqlCmp::Unknown) => {}
                (SqlCmp::Ordering(x), SqlCmp::Ordering(y)) => prop_assert_eq!(x, y.reverse()),
                other => prop_assert!(false, "asymmetric {:?}", other),
            }
        }

        /// Rendering then parsing an expression is a fixpoint after one trip.
        #[test]
        fn expr_render_parse_roundtrip(v in arb_value(), col in "[a-z]{1,6}") {
            let e = crate::ast::Expr::eq(
                crate::ast::Expr::col("t1", &col),
                crate::ast::Expr::lit(v),
            );
            let text = render_expr(&e);
            let parsed = parse_expr(&text).unwrap();
            prop_assert_eq!(render_expr(&parsed), text);
        }

        /// Statements built from random small pieces round-trip through text.
        #[test]
        fn stmt_render_parse_roundtrip(
            n_joins in 0usize..3,
            jt_idx in 0usize..7,
            with_where in any::<bool>(),
        ) {
            use crate::ast::*;
            let mut from = FromClause::single("t0");
            for i in 0..n_joins {
                let jt = JoinType::ALL[(jt_idx + i) % 7];
                from.joins.push(Join {
                    join_type: jt,
                    table: TableRef::new(format!("t{}", i + 1)),
                    on: Some(Expr::eq(
                        Expr::col("t0", "c0"),
                        Expr::col(&format!("t{}", i + 1), "c0"),
                    )),
                });
            }
            let mut q = SelectStmt::new(from);
            if with_where {
                q.where_clause = Some(Expr::eq(Expr::col("t0", "c0"), Expr::lit(Value::Int(1))));
            }
            let text = render_stmt(&q);
            let parsed = parse_stmt(&text).unwrap();
            prop_assert_eq!(render_stmt(&parsed), text);
        }
    }
}
