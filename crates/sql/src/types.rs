//! Column type model, type names as rendered in `CREATE TABLE`, and the
//! boundary values used by the noise-injection module (§3.2 of the paper:
//! "for integer value and char(10) type, we replace the value with 65535 and
//! 'ZZZZZZZZZZ'").

use crate::value::{Decimal, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// SQL column types supported by the wide-table generator and the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    TinyInt {
        unsigned: bool,
    },
    SmallInt {
        unsigned: bool,
    },
    MediumInt {
        unsigned: bool,
    },
    Int {
        unsigned: bool,
    },
    BigInt {
        unsigned: bool,
    },
    /// `DECIMAL(precision, scale)`, optionally ZEROFILL (which implies
    /// unsigned display semantics in MySQL).
    Decimal {
        precision: u8,
        scale: u8,
        zerofill: bool,
    },
    Float,
    Double,
    /// `VARCHAR(n)`
    Varchar(u16),
    /// `CHAR(n)` — padded, but we model it as a string type.
    Char(u16),
    Text,
    Date,
    Bool,
}

impl ColumnType {
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            ColumnType::TinyInt { .. }
                | ColumnType::SmallInt { .. }
                | ColumnType::MediumInt { .. }
                | ColumnType::Int { .. }
                | ColumnType::BigInt { .. }
        )
    }

    pub fn is_numeric(&self) -> bool {
        self.is_integer()
            || matches!(
                self,
                ColumnType::Decimal { .. } | ColumnType::Float | ColumnType::Double
            )
    }

    pub fn is_string(&self) -> bool {
        matches!(
            self,
            ColumnType::Varchar(_) | ColumnType::Char(_) | ColumnType::Text
        )
    }

    /// Label used for column vertices of the plan-iterative graph
    /// ("column vertex with label *type*", §4).
    pub fn graph_label(&self) -> &'static str {
        match self {
            ColumnType::TinyInt { .. } => "tinyint",
            ColumnType::SmallInt { .. } => "smallint",
            ColumnType::MediumInt { .. } => "mediumint",
            ColumnType::Int { .. } => "int",
            ColumnType::BigInt { .. } => "bigint",
            ColumnType::Decimal { .. } => "decimal",
            ColumnType::Float => "float",
            ColumnType::Double => "double",
            ColumnType::Varchar(_) => "varchar",
            ColumnType::Char(_) => "char",
            ColumnType::Text => "blob",
            ColumnType::Date => "date",
            ColumnType::Bool => "bool",
        }
    }

    /// The boundary value injected by the noise module for this type.
    pub fn boundary_value(&self) -> Value {
        match self {
            ColumnType::TinyInt { unsigned: true } => Value::UInt(255),
            ColumnType::TinyInt { unsigned: false } => Value::Int(127),
            ColumnType::SmallInt { unsigned: true } => Value::UInt(65_535),
            ColumnType::SmallInt { unsigned: false } => Value::Int(32_767),
            ColumnType::MediumInt { unsigned: true } => Value::UInt(16_777_215),
            ColumnType::MediumInt { unsigned: false } => Value::Int(8_388_607),
            ColumnType::Int { unsigned: true } => Value::UInt(4_294_967_295),
            ColumnType::Int { unsigned: false } => Value::Int(65_535),
            ColumnType::BigInt { unsigned: true } => Value::UInt(u64::MAX),
            ColumnType::BigInt { unsigned: false } => Value::Int(i64::MAX),
            ColumnType::Decimal { scale, .. } => Value::Decimal(Decimal::new(0, *scale)),
            ColumnType::Float => Value::Float(-0.0),
            ColumnType::Double => Value::Double(-0.0),
            ColumnType::Varchar(n) | ColumnType::Char(n) => {
                let len = (*n).clamp(1, 16) as usize;
                Value::Varchar("Z".repeat(len))
            }
            ColumnType::Text => Value::Text("Z".repeat(64)),
            ColumnType::Date => Value::Date(0),
            ColumnType::Bool => Value::Bool(false),
        }
    }

    /// A second, distinct boundary value (noise must stay unique, §3.2).
    pub fn alt_boundary_value(&self, salt: u64) -> Value {
        if self.is_integer() {
            return Value::Int(60_000 + (salt as i64 % 5_000));
        }
        match self {
            ColumnType::Decimal { scale, .. } => {
                Value::Decimal(Decimal::new(-(salt as i128 % 97) - 1, *scale))
            }
            ColumnType::Float => Value::Float(f32::MIN_POSITIVE * (1.0 + salt as f32)),
            ColumnType::Double => Value::Double(-0.0 - (salt as f64) * f64::EPSILON),
            ColumnType::Varchar(n) | ColumnType::Char(n) => {
                let len = (*n).clamp(2, 16) as usize;
                let mut s = "Y".repeat(len - 1);
                s.push(char::from(b'A' + (salt % 26) as u8));
                Value::Varchar(s)
            }
            ColumnType::Text => Value::Text(format!("{}{}", "Y".repeat(32), salt)),
            ColumnType::Date => Value::Date(-(salt as i32 % 10_000) - 1),
            ColumnType::Bool => Value::Bool(true),
            // integers handled by the early return above
            _ => unreachable!("integer types handled above"),
        }
    }

    /// Whether a value is type-compatible with this column (NULL always is).
    pub fn admits(&self, v: &Value) -> bool {
        match v {
            Value::Null => true,
            Value::Bool(_) => matches!(self, ColumnType::Bool) || self.is_integer(),
            Value::Int(_) | Value::UInt(_) => self.is_numeric(),
            Value::Float(_) | Value::Double(_) | Value::Decimal(_) => self.is_numeric(),
            Value::Varchar(_) | Value::Text(_) => self.is_string(),
            Value::Date(_) => matches!(self, ColumnType::Date) || self.is_numeric(),
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn u(unsigned: bool) -> &'static str {
            if unsigned {
                " unsigned"
            } else {
                ""
            }
        }
        match self {
            ColumnType::TinyInt { unsigned } => write!(f, "tinyint(3){}", u(*unsigned)),
            ColumnType::SmallInt { unsigned } => write!(f, "smallint(5){}", u(*unsigned)),
            ColumnType::MediumInt { unsigned } => write!(f, "mediumint(9){}", u(*unsigned)),
            ColumnType::Int { unsigned } => write!(f, "int(16){}", u(*unsigned)),
            ColumnType::BigInt { unsigned } => write!(f, "bigint(64){}", u(*unsigned)),
            ColumnType::Decimal {
                precision,
                scale,
                zerofill,
            } => {
                write!(f, "decimal({precision},{scale})")?;
                if *zerofill {
                    write!(f, " zerofill")?;
                }
                Ok(())
            }
            ColumnType::Float => write!(f, "float"),
            ColumnType::Double => write!(f, "double"),
            ColumnType::Varchar(n) => write!(f, "varchar({n})"),
            ColumnType::Char(n) => write!(f, "char({n})"),
            ColumnType::Text => write!(f, "text"),
            ColumnType::Date => write!(f, "date"),
            ColumnType::Bool => write!(f, "boolean"),
        }
    }
}

/// A named, typed column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_match_mysql_style() {
        assert_eq!(
            ColumnType::BigInt { unsigned: false }.to_string(),
            "bigint(64)"
        );
        assert_eq!(ColumnType::Varchar(511).to_string(), "varchar(511)");
        assert_eq!(
            ColumnType::Decimal {
                precision: 10,
                scale: 0,
                zerofill: true
            }
            .to_string(),
            "decimal(10,0) zerofill"
        );
        assert_eq!(
            ColumnType::TinyInt { unsigned: true }.to_string(),
            "tinyint(3) unsigned"
        );
    }

    #[test]
    fn boundary_values_per_paper() {
        // "for integer value and char(10) type, we replace the value with
        // 65535 and 'ZZZZZZZZZZ'"
        assert_eq!(
            ColumnType::Int { unsigned: false }.boundary_value(),
            Value::Int(65_535)
        );
        match ColumnType::Char(10).boundary_value() {
            Value::Varchar(s) => assert_eq!(s, "ZZZZZZZZZZ"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alt_boundary_values_are_distinct_from_primary() {
        for ty in [
            ColumnType::Int { unsigned: false },
            ColumnType::Varchar(10),
            ColumnType::Double,
            ColumnType::Date,
        ] {
            let a = ty.boundary_value();
            let b = ty.alt_boundary_value(7);
            assert_ne!(format!("{a}"), format!("{b}"), "{ty:?}");
        }
    }

    #[test]
    fn admits_checks_type_families() {
        let int = ColumnType::Int { unsigned: false };
        assert!(int.admits(&Value::Int(3)));
        assert!(int.admits(&Value::Null));
        assert!(!int.admits(&Value::str("x")));
        assert!(ColumnType::Varchar(10).admits(&Value::str("x")));
        assert!(!ColumnType::Varchar(10).admits(&Value::Int(3)));
    }

    #[test]
    fn graph_labels_cover_paper_examples() {
        // Figure 6 uses labels: int, bigint, char, blob.
        assert_eq!(ColumnType::Int { unsigned: false }.graph_label(), "int");
        assert_eq!(
            ColumnType::BigInt { unsigned: true }.graph_label(),
            "bigint"
        );
        assert_eq!(ColumnType::Char(10).graph_label(), "char");
        assert_eq!(ColumnType::Text.graph_label(), "blob");
    }
}
