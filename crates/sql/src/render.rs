//! Rendering of AST nodes back into SQL text.
//!
//! The generated workload is produced as ASTs (Figure 5 of the paper); the
//! renderer turns them into SQL strings so that transformed queries can be
//! logged in bug reports exactly the way the paper's listings show them, and
//! so the parser can round-trip them.

use crate::ast::*;
use crate::value::Value;

/// Render a full statement, including the hint comment right after SELECT.
pub fn render_stmt(stmt: &SelectStmt) -> String {
    let mut s = String::with_capacity(128);
    render_stmt_into(stmt, &mut s);
    s
}

fn render_stmt_into(stmt: &SelectStmt, out: &mut String) {
    out.push_str("SELECT ");
    if !stmt.hints.is_empty() {
        let rendered: Vec<String> = stmt.hints.iter().map(|h| h.to_string()).collect();
        out.push_str("/*+ ");
        out.push_str(&rendered.join(" "));
        out.push_str(" */ ");
    }
    if stmt.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = stmt.items.iter().map(render_item).collect();
    out.push_str(&items.join(", "));
    out.push_str(" FROM ");
    out.push_str(&render_table_ref(&stmt.from.base));
    for j in &stmt.from.joins {
        out.push(' ');
        out.push_str(j.join_type.sql());
        out.push(' ');
        out.push_str(&render_table_ref(&j.table));
        if let Some(on) = &j.on {
            out.push_str(" ON ");
            out.push_str(&render_expr(on));
        }
    }
    if let Some(w) = &stmt.where_clause {
        out.push_str(" WHERE ");
        out.push_str(&render_expr(w));
    }
    if !stmt.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        let g: Vec<String> = stmt.group_by.iter().map(render_expr).collect();
        out.push_str(&g.join(", "));
    }
    if let Some(h) = &stmt.having {
        out.push_str(" HAVING ");
        out.push_str(&render_expr(h));
    }
    if !stmt.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        let o: Vec<String> = stmt
            .order_by
            .iter()
            .map(|ob| {
                format!(
                    "{}{}",
                    render_expr(&ob.expr),
                    if ob.asc { "" } else { " DESC" }
                )
            })
            .collect();
        out.push_str(&o.join(", "));
    }
    if let Some(l) = stmt.limit {
        out.push_str(&format!(" LIMIT {l}"));
    }
}

/// Render a single DML / transaction-control statement.
pub fn render_dml(stmt: &DmlStmt) -> String {
    match stmt {
        DmlStmt::Begin => "BEGIN".to_string(),
        DmlStmt::Commit => "COMMIT".to_string(),
        DmlStmt::Rollback => "ROLLBACK".to_string(),
        DmlStmt::Insert(i) => {
            let rows: Vec<String> = i
                .rows
                .iter()
                .map(|row| {
                    let vals: Vec<String> = row.iter().map(render_expr).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            format!(
                "INSERT INTO {} ({}) VALUES {}",
                i.table,
                i.columns.join(", "),
                rows.join(", ")
            )
        }
        DmlStmt::Update(u) => {
            let sets: Vec<String> = u
                .set
                .iter()
                .map(|a| format!("{} = {}", a.column, render_expr(&a.value)))
                .collect();
            let mut s = format!("UPDATE {} SET {}", u.table, sets.join(", "));
            if let Some(w) = &u.where_clause {
                s.push_str(" WHERE ");
                s.push_str(&render_expr(w));
            }
            s
        }
        DmlStmt::Delete(d) => {
            let mut s = format!("DELETE FROM {}", d.table);
            if let Some(w) = &d.where_clause {
                s.push_str(" WHERE ");
                s.push_str(&render_expr(w));
            }
            s
        }
    }
}

/// Render a DML program — statements joined by `; `, the form bug reports
/// store and [`crate::parser::parse_program`] round-trips.
pub fn render_program(stmts: &[DmlStmt]) -> String {
    let parts: Vec<String> = stmts.iter().map(render_dml).collect();
    parts.join("; ")
}

fn render_item(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => format!("{} AS {a}", render_expr(expr)),
            None => render_expr(expr),
        },
        SelectItem::Aggregate { func, arg, alias } => {
            let inner = match (func, arg) {
                (AggFunc::CountStar, _) => "*".to_string(),
                (_, Some(e)) => render_expr(e),
                (_, None) => "*".to_string(),
            };
            let base = format!("{}({})", func.sql(), inner);
            match alias {
                Some(a) => format!("{base} AS {a}"),
                None => base,
            }
        }
    }
}

fn render_table_ref(t: &TableRef) -> String {
    match &t.alias {
        Some(a) => format!("{} AS {a}", t.table),
        None => t.table.clone(),
    }
}

/// Render an expression with minimal but unambiguous parenthesization.
pub fn render_expr(e: &Expr) -> String {
    render_expr_prec(e, 0)
}

fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq
        | BinOp::NullSafeEq
        | BinOp::Ne
        | BinOp::Lt
        | BinOp::Le
        | BinOp::Gt
        | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
    }
}

fn render_expr_prec(e: &Expr, parent: u8) -> String {
    match e {
        Expr::Column(c) => match &c.table {
            Some(t) => format!("{t}.{}", c.column),
            None => c.column.clone(),
        },
        Expr::Literal(v) => render_value(v),
        Expr::Binary { op, left, right } => {
            let p = prec(*op);
            let s = format!(
                "{} {} {}",
                render_expr_prec(left, p),
                op.sql(),
                render_expr_prec(right, p + 1)
            );
            if p < parent {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Unary { op, expr } => match op {
            UnOp::Not => format!("NOT ({})", render_expr_prec(expr, 0)),
            UnOp::Neg => format!("-({})", render_expr_prec(expr, 0)),
        },
        Expr::IsNull { expr, negated } => wrap_if_nested(
            format!(
                "{} IS{} NULL",
                render_expr_prec(expr, 6),
                if *negated { " NOT" } else { "" }
            ),
            parent,
        ),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => wrap_if_nested(
            format!(
                "{}{} BETWEEN {} AND {}",
                render_expr_prec(expr, 6),
                if *negated { " NOT" } else { "" },
                render_expr_prec(low, 6),
                render_expr_prec(high, 6)
            ),
            parent,
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(|e| render_expr_prec(e, 0)).collect();
            wrap_if_nested(
                format!(
                    "{}{} IN ({})",
                    render_expr_prec(expr, 6),
                    if *negated { " NOT" } else { "" },
                    items.join(", ")
                ),
                parent,
            )
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => wrap_if_nested(
            format!(
                "{}{} IN ({})",
                render_expr_prec(expr, 6),
                if *negated { " NOT" } else { "" },
                render_stmt(subquery)
            ),
            parent,
        ),
        Expr::Exists { subquery, negated } => wrap_if_nested(
            format!(
                "{}EXISTS ({})",
                if *negated { "NOT " } else { "" },
                render_stmt(subquery)
            ),
            parent,
        ),
        Expr::Cast { expr, ty } => format!("CAST({} AS {})", render_expr_prec(expr, 0), ty),
    }
}

/// IN / BETWEEN / IS NULL / EXISTS bind loosely; whenever they appear as an
/// operand of another operator (parent > AND precedence is not enough — any
/// comparison or boolean context), parenthesize so the text re-parses to the
/// same tree.
fn wrap_if_nested(s: String, parent: u8) -> String {
    if parent > 0 {
        format!("({s})")
    } else {
        s
    }
}

fn render_value(v: &Value) -> String {
    match v {
        // DATE literal rendering differs from the Display impl used in logs.
        Value::Date(d) => format!("DATE '{d}'"),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hints::Hint;

    fn shopping_query() -> SelectStmt {
        let mut from = FromClause::single("T3");
        from.joins.push(Join {
            join_type: JoinType::Inner,
            table: TableRef::new("T4"),
            on: Some(Expr::eq(
                Expr::col("T3", "goodsName"),
                Expr::col("T4", "goodsName"),
            )),
        });
        let mut q = SelectStmt::new(from);
        q.items = vec![SelectItem::column("T4", "price")];
        q.where_clause = Some(Expr::eq(
            Expr::col("T3", "goodsName"),
            Expr::lit(Value::str("flower")),
        ));
        q
    }

    #[test]
    fn renders_example_3_5_style_query() {
        let sql = render_stmt(&shopping_query());
        assert_eq!(
            sql,
            "SELECT T4.price FROM T3 INNER JOIN T4 ON T3.goodsName = T4.goodsName \
             WHERE T3.goodsName = 'flower'"
        );
    }

    #[test]
    fn renders_hint_comment_after_select() {
        let mut q = shopping_query();
        q.hints.push(Hint::HashJoin(vec!["T3".into(), "T4".into()]));
        let sql = render_stmt(&q);
        assert!(sql.starts_with("SELECT /*+ HASH_JOIN(T3, T4) */ T4.price"));
    }

    #[test]
    fn renders_in_subquery_and_not_in() {
        let sub = shopping_query();
        let e = Expr::InSubquery {
            expr: Box::new(Expr::col("t0", "c0")),
            subquery: Box::new(sub),
            negated: true,
        };
        let s = render_expr(&e);
        assert!(s.starts_with("t0.c0 NOT IN (SELECT "));
    }

    #[test]
    fn parenthesizes_or_under_and() {
        let e = Expr::and(
            Expr::or(Expr::col("a", "x"), Expr::col("a", "y")),
            Expr::col("a", "z"),
        );
        assert_eq!(render_expr(&e), "(a.x OR a.y) AND a.z");
    }

    #[test]
    fn renders_group_by_order_by_limit() {
        let mut q = shopping_query();
        q.items = vec![SelectItem::Aggregate {
            func: AggFunc::CountStar,
            arg: None,
            alias: Some("cnt".into()),
        }];
        q.group_by = vec![Expr::col("T4", "price")];
        q.order_by = vec![OrderBy {
            expr: Expr::col("T4", "price"),
            asc: false,
        }];
        q.limit = Some(10);
        let sql = render_stmt(&q);
        assert!(sql.contains("COUNT(*) AS cnt"));
        assert!(sql.contains("GROUP BY T4.price"));
        assert!(sql.contains("ORDER BY T4.price DESC"));
        assert!(sql.ends_with("LIMIT 10"));
    }

    #[test]
    fn renders_distinct_and_aliases() {
        let mut q = shopping_query();
        q.distinct = true;
        q.from.base.alias = Some("g".into());
        let sql = render_stmt(&q);
        assert!(sql.contains("SELECT DISTINCT"));
        assert!(sql.contains("FROM T3 AS g"));
    }
}
