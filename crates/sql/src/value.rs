//! SQL value model with MySQL-flavoured comparison and coercion semantics.
//!
//! The ground-truth evaluator and the simulated engine both operate on
//! [`Value`]. The semantics implemented here are the *correct* ones; the
//! engine's fault-injection layer deliberately perturbs them in specific
//! physical operators to model real optimizer bugs (e.g. treating `0` and
//! `-0` as different hash keys, or losing precision by routing a
//! varchar→bigint comparison through `double`).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Fixed-point decimal: `mantissa * 10^(-scale)`.
///
/// MySQL `DECIMAL` columns are exact; several of the paper's bugs hinge on
/// the difference between exact decimal comparison and a lossy conversion to
/// `double`, so we keep an exact representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Decimal {
    pub mantissa: i128,
    pub scale: u8,
}

impl Decimal {
    pub fn new(mantissa: i128, scale: u8) -> Self {
        Decimal { mantissa, scale }
    }

    /// Build from an integer (scale 0).
    pub fn from_int(v: i64) -> Self {
        Decimal {
            mantissa: v as i128,
            scale: 0,
        }
    }

    /// Lossy conversion to double, used by coercion paths.
    pub fn to_f64(self) -> f64 {
        self.mantissa as f64 / 10f64.powi(self.scale as i32)
    }

    /// Rescale both operands to a common scale and compare exactly.
    pub fn cmp_exact(self, other: Decimal) -> Ordering {
        let scale = self.scale.max(other.scale);
        let a = self.mantissa * 10i128.pow((scale - self.scale) as u32);
        let b = other.mantissa * 10i128.pow((scale - other.scale) as u32);
        a.cmp(&b)
    }

    /// Normalize away trailing zeros so `1.50` and `1.5` hash identically.
    pub fn normalized(mut self) -> Self {
        while self.scale > 0 && self.mantissa % 10 == 0 {
            self.mantissa /= 10;
            self.scale -= 1;
        }
        self
    }

    pub fn is_zero(self) -> bool {
        self.mantissa == 0
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let sign = if self.mantissa < 0 { "-" } else { "" };
        let abs = self.mantissa.unsigned_abs();
        let pow = 10u128.pow(self.scale as u32);
        let int = abs / pow;
        let frac = abs % pow;
        write!(f, "{sign}{int}.{frac:0width$}", width = self.scale as usize)
    }
}

/// A single SQL value.
///
/// `Int` covers TINYINT..BIGINT (the column type carries the width);
/// `UInt` covers the unsigned/zerofill variants. Strings are split into
/// `Varchar` and `Text` because several engines treat them differently in
/// join key handling (TEXT keys go through the "long key" path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f32),
    Double(f64),
    Decimal(Decimal),
    Varchar(String),
    Text(String),
    /// Days since 1970-01-01, date-typed.
    Date(i32),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Varchar(s.into())
    }

    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// A short tag used by embeddings / debugging.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Double(_) => "double",
            Value::Decimal(_) => "decimal",
            Value::Varchar(_) => "varchar",
            Value::Text(_) => "text",
            Value::Date(_) => "date",
        }
    }

    /// Numeric interpretation following MySQL's string→number coercion:
    /// a leading numeric prefix parses, anything else is 0.
    pub fn as_f64_lossy(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f as f64),
            Value::Double(d) => Some(*d),
            Value::Decimal(d) => Some(d.to_f64()),
            Value::Varchar(s) | Value::Text(s) => Some(parse_numeric_prefix(s)),
            Value::Date(d) => Some(*d as f64),
        }
    }

    /// Exact integer interpretation when the value is integral.
    pub fn as_i128_exact(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i as i128),
            Value::UInt(u) => Some(*u as i128),
            Value::Bool(b) => Some(*b as i128),
            Value::Date(d) => Some(*d as i128),
            Value::Decimal(d) if d.scale == 0 => Some(d.mantissa),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) | Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Truthiness for `WHERE` predicates: NULL → None (unknown),
    /// numbers → non-zero, strings → numeric prefix non-zero.
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            _ => self.as_f64_lossy().map(|f| f != 0.0),
        }
    }
}

/// Parse a numeric prefix the way MySQL coerces strings in numeric context:
/// `"12abc"` → 12, `"abc"` → 0, `"-3.5x"` → -3.5.
pub fn parse_numeric_prefix(s: &str) -> f64 {
    let t = s.trim_start();
    let mut end = 0usize;
    let bytes = t.as_bytes();
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while end < bytes.len() {
        let c = bytes[end] as char;
        let ok = match c {
            '0'..='9' => {
                seen_digit = true;
                true
            }
            '+' | '-' => end == 0 || matches!(bytes[end - 1] as char, 'e' | 'E'),
            '.' if !seen_dot && !seen_exp => {
                seen_dot = true;
                true
            }
            'e' | 'E' if seen_digit && !seen_exp => {
                seen_exp = true;
                true
            }
            _ => false,
        };
        if !ok {
            break;
        }
        end += 1;
    }
    if !seen_digit {
        return 0.0;
    }
    t[..end].parse::<f64>().unwrap_or(0.0)
}

/// Three-valued SQL comparison result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlCmp {
    Unknown,
    Ordering(Ordering),
}

impl SqlCmp {
    pub fn is_eq(self) -> Option<bool> {
        match self {
            SqlCmp::Unknown => None,
            SqlCmp::Ordering(o) => Some(o == Ordering::Equal),
        }
    }
}

/// Correct SQL comparison with MySQL-style coercion.
///
/// * NULL compared with anything is Unknown.
/// * Numeric vs numeric: exact when both are exact integers/decimals,
///   otherwise via double (so `0.0 == -0.0` and `0 == -0`).
/// * String vs string: binary-ish collation, but trailing-space insensitive
///   (PAD SPACE collations), case-insensitive like the default `_ci`
///   collations.
/// * Mixed string/number: the string is coerced to a number.
pub fn sql_compare(a: &Value, b: &Value) -> SqlCmp {
    use Value::*;
    if a.is_null() || b.is_null() {
        return SqlCmp::Unknown;
    }
    // exact integer fast path
    if let (Some(x), Some(y)) = (a.as_i128_exact(), b.as_i128_exact()) {
        return SqlCmp::Ordering(x.cmp(&y));
    }
    // exact decimal vs integer/decimal
    if let (Decimal(x), Decimal(y)) = (a, b) {
        return SqlCmp::Ordering(x.cmp_exact(*y));
    }
    match (a, b) {
        (Varchar(x), Varchar(y))
        | (Varchar(x), Text(y))
        | (Text(x), Varchar(y))
        | (Text(x), Text(y)) => SqlCmp::Ordering(collate_cmp(x, y)),
        _ => {
            let (x, y) = (a.as_f64_lossy(), b.as_f64_lossy());
            match (x, y) {
                (Some(x), Some(y)) => SqlCmp::Ordering(total_f64(x, y)),
                _ => SqlCmp::Unknown,
            }
        }
    }
}

/// NULL-safe equality (MySQL `<=>`): NULL <=> NULL is true.
pub fn null_safe_eq(a: &Value, b: &Value) -> bool {
    match (a.is_null(), b.is_null()) {
        (true, true) => true,
        (true, false) | (false, true) => false,
        _ => sql_compare(a, b).is_eq().unwrap_or(false),
    }
}

/// Case-insensitive, trailing-space-insensitive string collation
/// (models the default `utf8mb4_0900_ai_ci` behaviour closely enough).
pub fn collate_cmp(a: &str, b: &str) -> Ordering {
    let a = a.trim_end_matches(' ');
    let b = b.trim_end_matches(' ');
    let ai = a.chars().flat_map(|c| c.to_lowercase());
    let bi = b.chars().flat_map(|c| c.to_lowercase());
    ai.cmp(bi)
}

/// Total order over doubles that collapses `-0.0`/`0.0` and sorts NaN last.
/// Correct engines must compare `0` and `-0` as equal; one of the injected
/// faults replaces this with a bit-pattern comparison.
pub fn total_f64(a: f64, b: f64) -> Ordering {
    if a == b {
        return Ordering::Equal; // also collapses 0.0 / -0.0
    }
    match a.partial_cmp(&b) {
        Some(o) => o,
        None => {
            // NaNs sort after everything, equal to each other.
            match (a.is_nan(), b.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => unreachable!(),
            }
        }
    }
}

/// A key usable for hashing/grouping with the same equivalence classes as
/// [`sql_compare`] equality (restricted to same-family types, which is what
/// grouping and hash joins need after coercion).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HashKey {
    Null,
    Int(i128),
    /// Bit pattern of a canonicalized double (−0 collapsed to +0, NaN canon).
    Double(u64),
    Str(String),
}

/// Canonical hash key under *correct* semantics.
pub fn hash_key(v: &Value) -> HashKey {
    match v {
        Value::Null => HashKey::Null,
        Value::Bool(b) => HashKey::Int(*b as i128),
        Value::Int(i) => HashKey::Int(*i as i128),
        Value::UInt(u) => HashKey::Int(*u as i128),
        Value::Date(d) => HashKey::Int(*d as i128),
        Value::Decimal(d) => {
            let n = d.normalized();
            if n.scale == 0 {
                HashKey::Int(n.mantissa)
            } else {
                HashKey::Double(canon_f64_bits(n.to_f64()))
            }
        }
        Value::Float(f) => float_key(*f as f64),
        Value::Double(f) => float_key(*f),
        Value::Varchar(s) | Value::Text(s) => HashKey::Str(
            // Char-wise folding, exactly like `collate_cmp` (and the binary
            // `KeyBuf` encoder): `str::to_lowercase`'s context-sensitive
            // mappings (word-final Greek sigma) would make the hash key
            // disagree with the comparison it must mirror.
            s.trim_end_matches(' ')
                .chars()
                .flat_map(|c| c.to_lowercase())
                .collect(),
        ),
    }
}

fn float_key(f: f64) -> HashKey {
    if f.fract() == 0.0 && f.abs() < i64::MAX as f64 {
        HashKey::Int(f as i128)
    } else {
        HashKey::Double(canon_f64_bits(f))
    }
}

/// Collapse -0.0 into +0.0 and all NaNs into one bit pattern.
pub fn canon_f64_bits(f: f64) -> u64 {
    if f == 0.0 {
        0u64
    } else if f.is_nan() {
        f64::NAN.to_bits()
    } else {
        f.to_bits()
    }
}

/// A compact, reusable binary key buffer for hashing, grouping and
/// deduplication — the allocation-free replacement for the string-concat
/// keys the executors used to build per row.
///
/// A key is a sequence of tagged segments, one per encoded value. Every
/// segment is either fixed-width (ints, doubles) or length-prefixed
/// (strings), so concatenation is injective: two key sequences encode to the
/// same bytes iff they are segment-wise equal. (The old `"S:{s}|"` string
/// encoding could collide when a value contained the separator; the binary
/// form cannot.)
///
/// Two encoding families share the buffer:
///
/// * [`push_canonical`](Self::push_canonical) — the [`hash_key`] equivalence
///   (join keys): `0 == -0`, `1 == 1.0`, strings case-folded and
///   trailing-space-trimmed.
/// * [`push_group`](Self::push_group) — the `(type_tag, Display)`
///   equivalence used by GROUP BY and DISTINCT, where `Int(1)` and
///   `Double(1.0)` stay distinct.
///
/// The executor's fault interception composes its own segments out of the
/// low-level pushers (`push_f64_bits`, `push_str_folded`, `push_str_raw`),
/// so e.g. a NULL key under `HashJoinNullMatchesEmpty` encodes bit-for-bit
/// like the canonical empty string and collides with it — exactly the rows
/// the old `"S:|"` text encoding made collide.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct KeyBuf {
    bytes: Vec<u8>,
}

impl KeyBuf {
    /// Canonical NULL (only used by callers that key NULLs at all).
    pub const TAG_NULL: u8 = b'N';
    /// Canonical integer family (i128 payload).
    pub const TAG_INT: u8 = b'I';
    /// Canonical double (canonicalized bit pattern payload).
    pub const TAG_DOUBLE: u8 = b'F';
    /// Lossy varchar-via-double fault segment.
    pub const TAG_LOSSY_DOUBLE: u8 = b'D';
    /// String (length-prefixed payload).
    pub const TAG_STR: u8 = b'S';

    pub fn new() -> KeyBuf {
        KeyBuf::default()
    }

    pub fn clear(&mut self) {
        self.bytes.clear();
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Canonical NULL segment.
    pub fn push_null(&mut self) {
        self.bytes.push(Self::TAG_NULL);
    }

    /// Canonical integer segment (the encoding [`push_canonical`]
    /// (Self::push_canonical) emits for the integer family).
    pub fn push_int(&mut self, i: i128) {
        self.bytes.push(Self::TAG_INT);
        self.bytes.extend_from_slice(&i.to_le_bytes());
    }

    /// A double segment whose equality matches `Display` equality: distinct
    /// finite doubles have distinct shortest round-trip renderings, `0.0`
    /// and `-0.0` render differently, and every NaN renders `"NaN"` — so the
    /// payload is the bit pattern with all NaNs collapsed to one.
    pub fn push_f64_bits(&mut self, tag: u8, f: f64) {
        self.bytes.push(tag);
        let bits = if f.is_nan() {
            f64::NAN.to_bits()
        } else {
            f.to_bits()
        };
        self.bytes.extend_from_slice(&bits.to_le_bytes());
    }

    /// A raw string segment (no case folding — the dictionary-truncation
    /// fault clips bytes without folding, like the text encoding did).
    pub fn push_str_raw(&mut self, s: &str) {
        self.bytes.push(Self::TAG_STR);
        self.bytes
            .extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(s.as_bytes());
    }

    /// A canonical string segment: trailing spaces trimmed, case folded —
    /// the same equivalence [`hash_key`] applies, without allocating the
    /// intermediate `String`.
    pub fn push_str_folded(&mut self, s: &str) {
        self.bytes.push(Self::TAG_STR);
        let len_at = self.bytes.len();
        self.bytes.extend_from_slice(&[0; 4]);
        for c in s
            .trim_end_matches(' ')
            .chars()
            .flat_map(|c| c.to_lowercase())
        {
            let mut utf8 = [0u8; 4];
            self.bytes
                .extend_from_slice(c.encode_utf8(&mut utf8).as_bytes());
        }
        let n = (self.bytes.len() - len_at - 4) as u32;
        self.bytes[len_at..len_at + 4].copy_from_slice(&n.to_le_bytes());
    }

    /// Canonical segment under *correct* join-key semantics: equality of the
    /// pushed segments is exactly equality of [`hash_key`] values.
    pub fn push_canonical(&mut self, v: &Value) {
        match v {
            Value::Varchar(s) | Value::Text(s) => self.push_str_folded(s),
            other => match hash_key(other) {
                HashKey::Null => self.bytes.push(Self::TAG_NULL),
                HashKey::Int(i) => {
                    self.bytes.push(Self::TAG_INT);
                    self.bytes.extend_from_slice(&i.to_le_bytes());
                }
                HashKey::Double(b) => {
                    self.bytes.push(Self::TAG_DOUBLE);
                    self.bytes.extend_from_slice(&b.to_le_bytes());
                }
                HashKey::Str(_) => unreachable!("strings handled above"),
            },
        }
    }

    /// Grouping/DISTINCT segment: equality of the pushed segments is exactly
    /// equality of the `(type_tag, Display)` pair the executors used to
    /// format per row — `Int(1)`, `Double(1.0)` and `'1'` all stay distinct.
    pub fn push_group(&mut self, v: &Value) {
        // One tag byte per variant keeps different types distinct even when
        // their payload bytes coincide.
        match v {
            Value::Null => self.bytes.push(0x80),
            Value::Bool(b) => self.bytes.extend_from_slice(&[0x81, *b as u8]),
            Value::Int(i) => {
                self.bytes.push(0x82);
                self.bytes.extend_from_slice(&i.to_le_bytes());
            }
            Value::UInt(u) => {
                self.bytes.push(0x83);
                self.bytes.extend_from_slice(&u.to_le_bytes());
            }
            Value::Float(f) => {
                self.bytes.push(0x84);
                let bits = if f.is_nan() {
                    f32::NAN.to_bits()
                } else {
                    f.to_bits()
                };
                self.bytes.extend_from_slice(&bits.to_le_bytes());
            }
            Value::Double(f) => self.push_f64_bits(0x85, *f),
            Value::Decimal(d) => {
                // `(mantissa, scale)` ↔ rendered decimal text is a bijection
                // ("1.5" and "1.50" are different pairs and different texts).
                self.bytes.push(0x86);
                self.bytes.extend_from_slice(&d.mantissa.to_le_bytes());
                self.bytes.push(d.scale);
            }
            Value::Varchar(s) => {
                self.bytes.push(0x87);
                self.bytes
                    .extend_from_slice(&(s.len() as u32).to_le_bytes());
                self.bytes.extend_from_slice(s.as_bytes());
            }
            Value::Text(s) => {
                self.bytes.push(0x88);
                self.bytes
                    .extend_from_slice(&(s.len() as u32).to_le_bytes());
                self.bytes.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                self.bytes.push(0x89);
                self.bytes.extend_from_slice(&d.to_le_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Double(x) => write!(f, "{x}"),
            Value::Decimal(d) => write!(f, "{d}"),
            Value::Varchar(s) | Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Date(d) => write!(f, "DATE({d})"),
        }
    }
}

/// Equality of values as *result-set members* (not predicate equality):
/// NULL equals NULL here, because two result sets containing a NULL cell in
/// the same position are the same result set.
pub fn result_value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Null, _) | (_, Value::Null) => false,
        _ => sql_compare(a, b).is_eq().unwrap_or(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(sql_compare(&Value::Null, &Value::Int(1)), SqlCmp::Unknown);
        assert_eq!(sql_compare(&Value::Int(1), &Value::Null), SqlCmp::Unknown);
        assert_eq!(sql_compare(&Value::Null, &Value::Null), SqlCmp::Unknown);
    }

    #[test]
    fn null_safe_eq_matches_nulls() {
        assert!(null_safe_eq(&Value::Null, &Value::Null));
        assert!(!null_safe_eq(&Value::Null, &Value::Int(0)));
        assert!(null_safe_eq(&Value::Int(3), &Value::Int(3)));
    }

    #[test]
    fn zero_and_negative_zero_are_equal() {
        assert_eq!(
            sql_compare(&Value::Double(0.0), &Value::Double(-0.0)).is_eq(),
            Some(true)
        );
        assert_eq!(
            hash_key(&Value::Double(0.0)),
            hash_key(&Value::Double(-0.0))
        );
        assert_eq!(hash_key(&Value::Int(0)), hash_key(&Value::Double(-0.0)));
    }

    #[test]
    fn string_number_coercion() {
        assert_eq!(parse_numeric_prefix("2000-09-06"), 2000.0);
        assert_eq!(parse_numeric_prefix("abc"), 0.0);
        assert_eq!(parse_numeric_prefix("  -3.5x"), -3.5);
        assert_eq!(
            sql_compare(&Value::str("12abc"), &Value::Int(12)).is_eq(),
            Some(true)
        );
    }

    #[test]
    fn string_collation_is_pad_and_case_insensitive() {
        assert_eq!(collate_cmp("abc  ", "ABC"), Ordering::Equal);
        assert_eq!(collate_cmp("abc", "abd"), Ordering::Less);
        assert_eq!(
            sql_compare(&Value::str("Tom"), &Value::str("tom ")).is_eq(),
            Some(true)
        );
    }

    #[test]
    fn decimal_exact_comparison_and_display() {
        let a = Decimal::new(1500, 2); // 15.00
        let b = Decimal::new(15, 0);
        assert_eq!(a.cmp_exact(b), Ordering::Equal);
        assert_eq!(a.to_string(), "15.00");
        assert_eq!(Decimal::new(-105, 1).to_string(), "-10.5");
        assert_eq!(hash_key(&Value::Decimal(a)), hash_key(&Value::Int(15)));
    }

    #[test]
    fn big_integers_compare_exactly_not_via_double() {
        // Adjacent i64 values that collapse when routed through f64.
        let a = Value::Int(9_007_199_254_740_993);
        let b = Value::Int(9_007_199_254_740_992);
        assert_eq!(sql_compare(&a, &b).is_eq(), Some(false));
    }

    #[test]
    fn uint_vs_int_comparison() {
        assert_eq!(
            sql_compare(&Value::UInt(65535), &Value::Int(65535)).is_eq(),
            Some(true)
        );
        assert_eq!(
            sql_compare(&Value::UInt(1), &Value::Int(-1)).is_eq(),
            Some(false)
        );
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Null.truthiness(), None);
        assert_eq!(Value::Int(0).truthiness(), Some(false));
        assert_eq!(Value::str("1x").truthiness(), Some(true));
        assert_eq!(Value::str("x").truthiness(), Some(false));
    }

    #[test]
    fn result_value_eq_treats_null_as_equal() {
        assert!(result_value_eq(&Value::Null, &Value::Null));
        assert!(!result_value_eq(&Value::Null, &Value::Int(0)));
    }

    #[test]
    fn display_round_trip_escaping() {
        assert_eq!(Value::str("it's").to_string(), "'it''s'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
