//! Reference (correct) scalar expression evaluation with SQL three-valued
//! logic and MySQL-flavoured coercions.
//!
//! Both the ground-truth evaluator (DSG, §3.4) and the simulated engine's
//! filter/projection operators use this module. The engine's *join* operators
//! deliberately do not: they go through fault-interceptable comparators so
//! that injected optimizer bugs only affect specific physical plans.

use crate::ast::{BinOp, ColumnRef, Expr, SelectStmt, UnOp};
use crate::value::{null_safe_eq, sql_compare, SqlCmp, Value};
use std::cmp::Ordering;
use std::fmt;

/// Errors surfaced during expression evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    UnknownColumn(String),
    Unsupported(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            EvalError::Unsupported(m) => write!(f, "unsupported expression: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Resolves column references against the current row scope.
pub trait ColumnResolver {
    fn resolve(&self, col: &ColumnRef) -> Option<Value>;
}

/// Resolver over `(qualifier, column, value)` triples; the usual row scope.
pub struct ScopedRow<'a> {
    entries: &'a [(String, String, Value)],
}

impl<'a> ScopedRow<'a> {
    pub fn new(entries: &'a [(String, String, Value)]) -> Self {
        ScopedRow { entries }
    }
}

impl ColumnResolver for ScopedRow<'_> {
    fn resolve(&self, col: &ColumnRef) -> Option<Value> {
        self.entries
            .iter()
            .find(|(t, c, _)| {
                c.eq_ignore_ascii_case(&col.column)
                    && col
                        .table
                        .as_ref()
                        .map(|q| q.eq_ignore_ascii_case(t))
                        .unwrap_or(true)
            })
            .map(|(_, _, v)| v.clone())
    }
}

/// Allocation-free resolver over one row: borrowed `(qualifier, column)`
/// metadata (shared by every row of a relation) plus a borrowed value slice.
/// Replaces building an owned scope `Vec` per row — only the one matched
/// value is cloned, on resolution.
pub struct SliceRow<'a> {
    cols: &'a [(String, String)],
    values: &'a [Value],
}

impl<'a> SliceRow<'a> {
    pub fn new(cols: &'a [(String, String)], values: &'a [Value]) -> Self {
        debug_assert_eq!(cols.len(), values.len());
        SliceRow { cols, values }
    }
}

impl ColumnResolver for SliceRow<'_> {
    fn resolve(&self, col: &ColumnRef) -> Option<Value> {
        self.cols
            .iter()
            .zip(self.values.iter())
            .find(|((t, c), _)| {
                c.eq_ignore_ascii_case(&col.column)
                    && col
                        .table
                        .as_ref()
                        .map(|q| q.eq_ignore_ascii_case(t))
                        .unwrap_or(true)
            })
            .map(|(_, v)| v.clone())
    }
}

/// Chains an inner scope over an outer scope (correlated subqueries).
pub struct ChainedResolver<'a> {
    pub inner: &'a dyn ColumnResolver,
    pub outer: &'a dyn ColumnResolver,
}

impl ColumnResolver for ChainedResolver<'_> {
    fn resolve(&self, col: &ColumnRef) -> Option<Value> {
        self.inner.resolve(col).or_else(|| self.outer.resolve(col))
    }
}

/// Evaluates subqueries encountered inside expressions.
pub trait SubqueryHandler {
    /// Evaluate `stmt` in the context of `outer` (for correlated references)
    /// and return the values of its single projected column.
    fn eval_subquery(
        &self,
        stmt: &SelectStmt,
        outer: &dyn ColumnResolver,
    ) -> Result<Vec<Value>, EvalError>;
}

/// Per-statement memo for *uncorrelated* subquery results, keyed by the
/// subquery's AST node address (stable for the duration of one statement
/// evaluation — the memo must not outlive the statement it was built for).
/// `IN (SELECT …)` evaluates its subquery once per outer row; when nothing
/// in it references the outer scope the result is row-invariant, and both
/// the engine and the ground-truth evaluator share this one implementation
/// of "evaluate once, replay for every other row" so they cannot drift
/// apart on which subqueries are cached.
#[derive(Default)]
pub struct SubqueryMemo {
    map: std::cell::RefCell<std::collections::HashMap<usize, Vec<Value>>>,
}

impl SubqueryMemo {
    pub fn new() -> SubqueryMemo {
        SubqueryMemo::default()
    }

    /// Return the memoized result for `stmt`, or evaluate and (when
    /// `cacheable` — see [`SelectStmt::is_uncorrelated_single_table`]
    /// (crate::ast::SelectStmt::is_uncorrelated_single_table)) store it.
    pub fn get_or_eval(
        &self,
        stmt: &SelectStmt,
        cacheable: bool,
        eval: impl FnOnce() -> Result<Vec<Value>, EvalError>,
    ) -> Result<Vec<Value>, EvalError> {
        if !cacheable {
            return eval();
        }
        let key = stmt as *const SelectStmt as usize;
        if let Some(cached) = self.map.borrow().get(&key) {
            return Ok(cached.clone());
        }
        let out = eval()?;
        self.map.borrow_mut().insert(key, out.clone());
        Ok(out)
    }
}

/// Handler that rejects every subquery; useful for contexts where the query
/// generator guarantees none exist.
pub struct NoSubqueries;

impl SubqueryHandler for NoSubqueries {
    fn eval_subquery(
        &self,
        _stmt: &SelectStmt,
        _outer: &dyn ColumnResolver,
    ) -> Result<Vec<Value>, EvalError> {
        Err(EvalError::Unsupported("subquery in scalar context".into()))
    }
}

/// Evaluate an expression to a value (predicates evaluate to Bool or Null).
pub fn eval_expr(
    e: &Expr,
    row: &dyn ColumnResolver,
    sub: &dyn SubqueryHandler,
) -> Result<Value, EvalError> {
    match e {
        Expr::Column(c) => row
            .resolve(c)
            .ok_or_else(|| EvalError::UnknownColumn(format!("{:?}.{}", c.table, c.column))),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { op, left, right } => {
            let l = eval_expr(left, row, sub)?;
            let r = eval_expr(right, row, sub)?;
            Ok(eval_binary(*op, &l, &r))
        }
        Expr::Unary { op, expr } => {
            let v = eval_expr(expr, row, sub)?;
            Ok(match op {
                UnOp::Not => match v.truthiness() {
                    None => Value::Null,
                    Some(b) => Value::Bool(!b),
                },
                UnOp::Neg => match v.as_f64_lossy() {
                    None => Value::Null,
                    Some(f) => match v.as_i128_exact() {
                        Some(i) => Value::Int((-i) as i64),
                        None => Value::Double(-f),
                    },
                },
            })
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(expr, row, sub)?;
            let b = v.is_null() != *negated;
            Ok(Value::Bool(b))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(expr, row, sub)?;
            let lo = eval_expr(low, row, sub)?;
            let hi = eval_expr(high, row, sub)?;
            let ge = tv_compare(&v, &lo, |o| o != Ordering::Less);
            let le = tv_compare(&v, &hi, |o| o != Ordering::Greater);
            let both = tv_and(ge, le);
            Ok(tv_to_value(if *negated { tv_not(both) } else { both }))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(expr, row, sub)?;
            let vals: Result<Vec<Value>, _> = list.iter().map(|e| eval_expr(e, row, sub)).collect();
            let tv = in_membership(&v, &vals?);
            Ok(tv_to_value(if *negated { tv_not(tv) } else { tv }))
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            let v = eval_expr(expr, row, sub)?;
            let vals = sub.eval_subquery(subquery, row)?;
            let tv = in_membership(&v, &vals);
            Ok(tv_to_value(if *negated { tv_not(tv) } else { tv }))
        }
        Expr::Exists { subquery, negated } => {
            let vals = sub.eval_subquery(subquery, row)?;
            let b = !vals.is_empty();
            Ok(Value::Bool(b != *negated))
        }
        Expr::Cast { expr, ty } => {
            let v = eval_expr(expr, row, sub)?;
            Ok(cast_value(&v, *ty))
        }
    }
}

/// Evaluate a predicate with three-valued logic: `None` means UNKNOWN.
pub fn eval_predicate(
    e: &Expr,
    row: &dyn ColumnResolver,
    sub: &dyn SubqueryHandler,
) -> Result<Option<bool>, EvalError> {
    Ok(eval_expr(e, row, sub)?.truthiness())
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Value {
    match op {
        BinOp::And => tv_to_value(tv_and(l.truthiness(), r.truthiness())),
        BinOp::Or => tv_to_value(tv_or(l.truthiness(), r.truthiness())),
        BinOp::NullSafeEq => Value::Bool(null_safe_eq(l, r)),
        BinOp::Eq => tv_to_value(tv_compare(l, r, |o| o == Ordering::Equal)),
        BinOp::Ne => tv_to_value(tv_compare(l, r, |o| o != Ordering::Equal)),
        BinOp::Lt => tv_to_value(tv_compare(l, r, |o| o == Ordering::Less)),
        BinOp::Le => tv_to_value(tv_compare(l, r, |o| o != Ordering::Greater)),
        BinOp::Gt => tv_to_value(tv_compare(l, r, |o| o == Ordering::Greater)),
        BinOp::Ge => tv_to_value(tv_compare(l, r, |o| o != Ordering::Less)),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(op, l, r),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    // Exact integer path when both sides are integral and the op is not Div.
    if let (Some(a), Some(b)) = (l.as_i128_exact(), r.as_i128_exact()) {
        match op {
            BinOp::Add => return Value::Int((a + b) as i64),
            BinOp::Sub => return Value::Int((a - b) as i64),
            BinOp::Mul => return Value::Int(a.saturating_mul(b) as i64),
            _ => {}
        }
    }
    let (a, b) = match (l.as_f64_lossy(), r.as_f64_lossy()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Value::Null,
    };
    match op {
        BinOp::Add => Value::Double(a + b),
        BinOp::Sub => Value::Double(a - b),
        BinOp::Mul => Value::Double(a * b),
        BinOp::Div => {
            if b == 0.0 {
                Value::Null // MySQL: division by zero yields NULL
            } else {
                Value::Double(a / b)
            }
        }
        _ => unreachable!(),
    }
}

/// Three-valued comparison helper.
fn tv_compare(l: &Value, r: &Value, pred: impl Fn(Ordering) -> bool) -> Option<bool> {
    match sql_compare(l, r) {
        SqlCmp::Unknown => None,
        SqlCmp::Ordering(o) => Some(pred(o)),
    }
}

pub fn tv_and(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

pub fn tv_or(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

pub fn tv_not(a: Option<bool>) -> Option<bool> {
    a.map(|b| !b)
}

pub fn tv_to_value(tv: Option<bool>) -> Value {
    match tv {
        None => Value::Null,
        Some(b) => Value::Bool(b),
    }
}

/// SQL `IN` membership with correct NULL semantics:
/// TRUE if any member equals, else NULL if probe or any member is NULL,
/// else FALSE.
pub fn in_membership(probe: &Value, members: &[Value]) -> Option<bool> {
    if probe.is_null() {
        return if members.is_empty() {
            Some(false)
        } else {
            None
        };
    }
    let mut saw_null = false;
    for m in members {
        match sql_compare(probe, m) {
            SqlCmp::Unknown => saw_null = true,
            SqlCmp::Ordering(Ordering::Equal) => return Some(true),
            _ => {}
        }
    }
    if saw_null {
        None
    } else {
        Some(false)
    }
}

/// Correct CAST semantics (the faulty engine paths implement their own).
pub fn cast_value(v: &Value, ty: crate::types::ColumnType) -> Value {
    use crate::types::ColumnType as T;
    if v.is_null() {
        return Value::Null;
    }
    if ty.is_integer() {
        return match v.as_f64_lossy() {
            Some(f) => Value::Int(f.round() as i64),
            None => Value::Null,
        };
    }
    match ty {
        T::Float => Value::Float(v.as_f64_lossy().unwrap_or(0.0) as f32),
        T::Double | T::Decimal { .. } => Value::Double(v.as_f64_lossy().unwrap_or(0.0)),
        T::Varchar(_) | T::Char(_) | T::Text => Value::Varchar(match v {
            Value::Varchar(s) | Value::Text(s) => s.clone(),
            other => other.to_string(),
        }),
        T::Date => Value::Date(v.as_f64_lossy().unwrap_or(0.0) as i32),
        T::Bool => tv_to_value(v.truthiness()),
        _ => unreachable!("integer types handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;

    fn row() -> Vec<(String, String, Value)> {
        vec![
            ("t1".into(), "a".into(), Value::Int(3)),
            ("t1".into(), "b".into(), Value::Null),
            ("t1".into(), "name".into(), Value::str("Tom")),
        ]
    }

    #[test]
    fn column_resolution_qualified_and_bare() {
        let r = row();
        let scope = ScopedRow::new(&r);
        let v = eval_expr(&Expr::col("t1", "a"), &scope, &NoSubqueries).unwrap();
        assert_eq!(v.as_i128_exact(), Some(3));
        let v = eval_expr(
            &Expr::Column(ColumnRef::bare("name")),
            &scope,
            &NoSubqueries,
        )
        .unwrap();
        assert_eq!(v.as_str(), Some("Tom"));
        assert!(eval_expr(&Expr::col("t9", "a"), &scope, &NoSubqueries).is_err());
    }

    #[test]
    fn three_valued_logic_null_propagation() {
        let r = row();
        let scope = ScopedRow::new(&r);
        // b = 1  → NULL
        let e = Expr::eq(Expr::col("t1", "b"), Expr::lit(Value::Int(1)));
        assert_eq!(eval_predicate(&e, &scope, &NoSubqueries).unwrap(), None);
        // (b = 1) OR (a = 3) → TRUE despite the NULL
        let e2 = Expr::or(
            e.clone(),
            Expr::eq(Expr::col("t1", "a"), Expr::lit(Value::Int(3))),
        );
        assert_eq!(
            eval_predicate(&e2, &scope, &NoSubqueries).unwrap(),
            Some(true)
        );
        // (b = 1) AND (a = 3) → NULL
        let e3 = Expr::and(e, Expr::eq(Expr::col("t1", "a"), Expr::lit(Value::Int(3))));
        assert_eq!(eval_predicate(&e3, &scope, &NoSubqueries).unwrap(), None);
    }

    #[test]
    fn in_list_null_semantics() {
        assert_eq!(
            in_membership(&Value::Int(1), &[Value::Int(2), Value::Null]),
            None
        );
        assert_eq!(
            in_membership(&Value::Int(1), &[Value::Int(1), Value::Null]),
            Some(true)
        );
        assert_eq!(
            in_membership(&Value::Int(1), &[Value::Int(2), Value::Int(3)]),
            Some(false)
        );
        assert_eq!(in_membership(&Value::Null, &[Value::Int(1)]), None);
        assert_eq!(in_membership(&Value::Null, &[]), Some(false));
    }

    #[test]
    fn not_in_with_null_member_filters_everything() {
        // The classic trap exploited by the paper's Listing 1-style queries.
        let r = row();
        let scope = ScopedRow::new(&r);
        let e = Expr::InList {
            expr: Box::new(Expr::col("t1", "a")),
            list: vec![Expr::lit(Value::Int(9)), Expr::lit(Value::Null)],
            negated: true,
        };
        assert_eq!(eval_predicate(&e, &scope, &NoSubqueries).unwrap(), None);
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let r = row();
        let scope = ScopedRow::new(&r);
        let e = Expr::binary(BinOp::Add, Expr::col("t1", "a"), Expr::lit(Value::Int(4)));
        assert_eq!(
            eval_expr(&e, &scope, &NoSubqueries)
                .unwrap()
                .as_i128_exact(),
            Some(7)
        );
        let div0 = Expr::binary(
            BinOp::Div,
            Expr::lit(Value::Int(1)),
            Expr::lit(Value::Int(0)),
        );
        assert!(eval_expr(&div0, &scope, &NoSubqueries).unwrap().is_null());
    }

    #[test]
    fn null_safe_eq_and_is_null() {
        let r = row();
        let scope = ScopedRow::new(&r);
        let e = Expr::binary(
            BinOp::NullSafeEq,
            Expr::col("t1", "b"),
            Expr::lit(Value::Null),
        );
        assert_eq!(
            eval_predicate(&e, &scope, &NoSubqueries).unwrap(),
            Some(true)
        );
        let e = Expr::is_null(Expr::col("t1", "b"));
        assert_eq!(
            eval_predicate(&e, &scope, &NoSubqueries).unwrap(),
            Some(true)
        );
    }

    #[test]
    fn between_and_cast() {
        let r = row();
        let scope = ScopedRow::new(&r);
        let e = Expr::Between {
            expr: Box::new(Expr::col("t1", "a")),
            low: Box::new(Expr::lit(Value::Int(1))),
            high: Box::new(Expr::lit(Value::Int(5))),
            negated: false,
        };
        assert_eq!(
            eval_predicate(&e, &scope, &NoSubqueries).unwrap(),
            Some(true)
        );
        let c = Expr::Cast {
            expr: Box::new(Expr::lit(Value::str("12abc"))),
            ty: crate::types::ColumnType::Int { unsigned: false },
        };
        assert_eq!(
            eval_expr(&c, &scope, &NoSubqueries)
                .unwrap()
                .as_i128_exact(),
            Some(12)
        );
    }

    #[test]
    fn string_number_equality_in_predicates() {
        // The varchar-vs-bigint comparisons from Figure 1(b).
        let r = vec![("t".into(), "v".into(), Value::str("1985"))];
        let scope = ScopedRow::new(&r);
        let e = Expr::eq(Expr::col("t", "v"), Expr::lit(Value::Int(1985)));
        assert_eq!(
            eval_predicate(&e, &scope, &NoSubqueries).unwrap(),
            Some(true)
        );
    }
}
