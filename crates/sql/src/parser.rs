//! A recursive-descent parser for the SQL dialect emitted by [`crate::render`].
//!
//! Transformed queries are shipped around as SQL text (bug reports, the
//! reducer, the engine's text entry point), so the parser must round-trip
//! everything the renderer can produce: SELECT with hint comments, the seven
//! join types, IN / NOT IN / EXISTS subqueries, GROUP BY / HAVING / ORDER BY /
//! LIMIT, CAST, BETWEEN and the literal forms of every [`Value`] variant.

use crate::ast::*;
use crate::hints::{Hint, SemiJoinStrategy};
use crate::types::ColumnType;
use crate::value::{Decimal, Value};
use std::fmt;

/// Parser errors, with byte offset of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    Str(String),
    Symbol(String),
    HintComment(String),
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            let start = self.pos;
            let b = self.src.as_bytes();
            if self.pos >= b.len() {
                out.push((Tok::Eof, start));
                return Ok(out);
            }
            let c = b[self.pos] as char;
            let tok = if c == '/' && self.src[self.pos..].starts_with("/*+") {
                let end = self.src[self.pos..]
                    .find("*/")
                    .map(|i| self.pos + i + 2)
                    .ok_or_else(|| ParseError {
                        message: "unterminated hint comment".into(),
                        offset: start,
                    })?;
                let inner = self.src[self.pos + 3..end - 2].trim().to_string();
                self.pos = end;
                Tok::HintComment(inner)
            } else if c == '\'' {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    if self.pos >= b.len() {
                        return Err(ParseError {
                            message: "unterminated string literal".into(),
                            offset: start,
                        });
                    }
                    let ch = b[self.pos] as char;
                    if ch == '\'' {
                        if self.pos + 1 < b.len() && b[self.pos + 1] as char == '\'' {
                            s.push('\'');
                            self.pos += 2;
                        } else {
                            self.pos += 1;
                            break;
                        }
                    } else {
                        s.push(ch);
                        self.pos += 1;
                    }
                }
                Tok::Str(s)
            } else if c.is_ascii_digit()
                || (c == '.' && self.peek_digit(1))
                || (c == '-' && self.peek_digit(1) && self.numeric_context(&out))
            {
                let mut end = self.pos + 1;
                while end < b.len() {
                    let ch = b[end] as char;
                    let exponent_sign =
                        (ch == '-' || ch == '+') && matches!(b[end - 1] as char, 'e' | 'E');
                    if ch.is_ascii_digit() || ch == '.' || ch == 'e' || ch == 'E' || exponent_sign {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let s = self.src[self.pos..end].to_string();
                self.pos = end;
                Tok::Number(s)
            } else if c.is_ascii_alphabetic() || c == '_' {
                let mut end = self.pos + 1;
                while end < b.len() {
                    let ch = b[end] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let s = self.src[self.pos..end].to_string();
                self.pos = end;
                Tok::Ident(s)
            } else {
                // multi-char operators first
                let rest = &self.src[self.pos..];
                let sym = ["<=>", "<>", "<=", ">=", "!="]
                    .iter()
                    .find(|s| rest.starts_with(**s))
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| c.to_string());
                self.pos += sym.len();
                Tok::Symbol(sym)
            };
            out.push((tok, start));
        }
    }

    fn peek_digit(&self, ahead: usize) -> bool {
        self.src
            .as_bytes()
            .get(self.pos + ahead)
            .map(|b| (*b as char).is_ascii_digit())
            .unwrap_or(false)
    }

    /// A leading '-' is part of a number only when the previous token cannot
    /// end an operand (so `a - 1` lexes as minus but `(-1)` as a literal).
    fn numeric_context(&self, out: &[(Tok, usize)]) -> bool {
        match out.last() {
            None => true,
            Some((Tok::Symbol(s), _)) => s != ")" && s != "*",
            Some((Tok::Ident(id), _)) => {
                let k = id.to_ascii_uppercase();
                matches!(
                    k.as_str(),
                    "SELECT" | "WHERE" | "AND" | "OR" | "NOT" | "ON" | "IN" | "BETWEEN" | "THEN"
                )
            }
            _ => false,
        }
    }

    fn skip_ws(&mut self) {
        let b = self.src.as_bytes();
        while self.pos < b.len() && (b[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
    }
}

/// Parse a complete SELECT statement.
pub fn parse_stmt(sql: &str) -> Result<SelectStmt, ParseError> {
    let toks = Lexer::new(sql).tokens()?;
    let mut p = Parser { toks, idx: 0 };
    let stmt = p.parse_select()?;
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a single DML or transaction-control statement (trailing `;` ok).
pub fn parse_dml(sql: &str) -> Result<DmlStmt, ParseError> {
    let toks = Lexer::new(sql).tokens()?;
    let mut p = Parser { toks, idx: 0 };
    let stmt = p.parse_dml_stmt()?;
    while p.eat_symbol(";") {}
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated sequence of DML / transaction statements — the unit
/// mutation workloads are logged and replayed as. The split happens at the
/// token level, so `;` inside string literals is handled correctly.
pub fn parse_program(sql: &str) -> Result<Vec<DmlStmt>, ParseError> {
    let toks = Lexer::new(sql).tokens()?;
    let mut p = Parser { toks, idx: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(";") {}
        if matches!(p.peek(), Tok::Eof) {
            break;
        }
        out.push(p.parse_dml_stmt()?);
        if !matches!(p.peek(), Tok::Eof) {
            p.expect_symbol(";")?;
        }
    }
    Ok(out)
}

/// Parse a standalone expression (used by tests and the reducer).
pub fn parse_expr(sql: &str) -> Result<Expr, ParseError> {
    let toks = Lexer::new(sql).tokens()?;
    let mut p = Parser { toks, idx: 0 };
    let e = p.parse_or()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.idx].0
    }
    fn offset(&self) -> usize {
        self.toks[self.idx].1
    }
    fn bump(&mut self) -> Tok {
        let t = self.toks[self.idx].0.clone();
        if self.idx + 1 < self.toks.len() {
            self.idx += 1;
        }
        t
    }
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            offset: self.offset(),
        })
    }
    fn expect_eof(&self) -> Result<(), ParseError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            self.err(format!("trailing input: {:?}", self.peek()))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}, found {:?}", self.peek()))
        }
    }
    fn at_symbol(&self, s: &str) -> bool {
        matches!(self.peek(), Tok::Symbol(x) if x == s)
    }
    fn eat_symbol(&mut self, s: &str) -> bool {
        if self.at_symbol(s) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect_symbol(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            self.err(format!("expected `{s}`, found {:?}", self.peek()))
        }
    }
    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn parse_dml_stmt(&mut self) -> Result<DmlStmt, ParseError> {
        if self.eat_keyword("BEGIN") {
            return Ok(DmlStmt::Begin);
        }
        if self.eat_keyword("COMMIT") {
            return Ok(DmlStmt::Commit);
        }
        if self.eat_keyword("ROLLBACK") {
            return Ok(DmlStmt::Rollback);
        }
        if self.eat_keyword("INSERT") {
            return self.parse_insert();
        }
        if self.eat_keyword("UPDATE") {
            return self.parse_update();
        }
        if self.eat_keyword("DELETE") {
            return self.parse_delete();
        }
        self.err(format!("expected DML statement, found {:?}", self.peek()))
    }

    fn parse_insert(&mut self) -> Result<DmlStmt, ParseError> {
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        self.expect_symbol("(")?;
        let mut columns = vec![self.ident()?];
        while self.eat_symbol(",") {
            columns.push(self.ident()?);
        }
        self.expect_symbol(")")?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = vec![self.parse_or()?];
            while self.eat_symbol(",") {
                row.push(self.parse_or()?);
            }
            self.expect_symbol(")")?;
            if row.len() != columns.len() {
                return self.err(format!(
                    "INSERT row has {} values for {} columns",
                    row.len(),
                    columns.len()
                ));
            }
            rows.push(row);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(DmlStmt::Insert(InsertStmt {
            table,
            columns,
            rows,
        }))
    }

    fn parse_update(&mut self) -> Result<DmlStmt, ParseError> {
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut set = Vec::new();
        loop {
            let column = self.ident()?;
            self.expect_symbol("=")?;
            let value = self.parse_or()?;
            set.push(Assignment { column, value });
            if !self.eat_symbol(",") {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_or()?)
        } else {
            None
        };
        Ok(DmlStmt::Update(UpdateStmt {
            table,
            set,
            where_clause,
        }))
    }

    fn parse_delete(&mut self) -> Result<DmlStmt, ParseError> {
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_or()?)
        } else {
            None
        };
        Ok(DmlStmt::Delete(DeleteStmt {
            table,
            where_clause,
        }))
    }

    fn parse_select(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_keyword("SELECT")?;
        let mut hints = Vec::new();
        if let Tok::HintComment(h) = self.peek().clone() {
            self.bump();
            hints = parse_hints(&h).map_err(|m| ParseError {
                message: m,
                offset: self.offset(),
            })?;
        }
        let distinct = self.eat_keyword("DISTINCT");
        // `SELECT ALL` is a no-op modifier used in one of the paper's listings.
        let _ = self.eat_keyword("ALL");
        let mut items = vec![self.parse_select_item()?];
        while self.eat_symbol(",") {
            items.push(self.parse_select_item()?);
        }
        self.expect_keyword("FROM")?;
        let base = self.parse_table_ref()?;
        let mut joins = Vec::new();
        while let Some(jt) = self.peek_join_type() {
            self.consume_join_type(jt)?;
            let table = self.parse_table_ref()?;
            let on = if self.eat_keyword("ON") {
                Some(self.parse_or()?)
            } else {
                None
            };
            joins.push(Join {
                join_type: jt,
                table,
                on,
            });
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_or()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_or()?);
            while self.eat_symbol(",") {
                group_by.push(self.parse_or()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.parse_or()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_or()?;
                let asc = if self.eat_keyword("DESC") {
                    false
                } else {
                    let _ = self.eat_keyword("ASC");
                    true
                };
                order_by.push(OrderBy { expr, asc });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.bump() {
                Tok::Number(n) => Some(n.parse::<u64>().map_err(|_| ParseError {
                    message: format!("bad LIMIT value {n}"),
                    offset: self.offset(),
                })?),
                other => return self.err(format!("expected LIMIT count, found {other:?}")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from: FromClause { base, joins },
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            hints,
        })
    }

    fn peek_join_type(&self) -> Option<JoinType> {
        let kw = match self.peek() {
            Tok::Ident(s) => s.to_ascii_uppercase(),
            _ => return None,
        };
        match kw.as_str() {
            "INNER" | "JOIN" => Some(JoinType::Inner),
            "LEFT" => Some(JoinType::LeftOuter),
            "RIGHT" => Some(JoinType::RightOuter),
            "FULL" => Some(JoinType::FullOuter),
            "CROSS" => Some(JoinType::Cross),
            "SEMI" => Some(JoinType::Semi),
            "ANTI" => Some(JoinType::Anti),
            _ => None,
        }
    }

    fn consume_join_type(&mut self, jt: JoinType) -> Result<(), ParseError> {
        match jt {
            JoinType::Inner => {
                let _ = self.eat_keyword("INNER");
                self.expect_keyword("JOIN")
            }
            JoinType::LeftOuter | JoinType::RightOuter | JoinType::FullOuter => {
                self.bump(); // LEFT/RIGHT/FULL
                let _ = self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")
            }
            JoinType::Cross | JoinType::Semi | JoinType::Anti => {
                self.bump(); // CROSS/SEMI/ANTI
                self.expect_keyword("JOIN")
            }
        }
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.ident()?;
        let alias =
            if self.eat_keyword("AS") || matches!(self.peek(), Tok::Ident(s) if !is_reserved(s)) {
                Some(self.ident()?)
            } else {
                None
            };
        Ok(TableRef { table, alias })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.at_symbol("*") {
            self.bump();
            return Ok(SelectItem::Wildcard);
        }
        // aggregate?
        if let Tok::Ident(name) = self.peek().clone() {
            let up = name.to_ascii_uppercase();
            let agg = match up.as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                "AVG" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = agg {
                if matches!(&self.toks.get(self.idx + 1), Some((Tok::Symbol(s), _)) if s == "(") {
                    self.bump(); // name
                    self.bump(); // (
                    let (func, arg) = if self.at_symbol("*") {
                        self.bump();
                        (AggFunc::CountStar, None)
                    } else {
                        (func, Some(self.parse_or()?))
                    };
                    self.expect_symbol(")")?;
                    let alias = if self.eat_keyword("AS") {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    return Ok(SelectItem::Aggregate { func, arg, alias });
                }
            }
        }
        let expr = self.parse_or()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // Expression grammar: OR > AND > NOT > comparison/IN/BETWEEN/IS > add > mul > unary > primary
    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.at_keyword("NOT") && !self.next_is_in_chain() {
            self.bump();
            let e = self.parse_not()?;
            return Ok(Expr::not(e));
        }
        self.parse_comparison()
    }

    /// `NOT EXISTS` is handled by the primary parser; `NOT IN`/`NOT BETWEEN`
    /// belong to the comparison suffix, so plain NOT should not eat them.
    fn next_is_in_chain(&self) -> bool {
        matches!(&self.toks.get(self.idx + 1), Some((Tok::Ident(s), _))
            if s.eq_ignore_ascii_case("EXISTS"))
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / BETWEEN
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_symbol("(")?;
            if self.at_keyword("SELECT") {
                let sub = self.parse_select()?;
                self.expect_symbol(")")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.parse_or()?];
            while self.eat_symbol(",") {
                list.push(self.parse_or()?);
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return self.err("expected IN or BETWEEN after NOT");
        }
        // binary comparison operator
        let op = match self.peek() {
            Tok::Symbol(s) => match s.as_str() {
                "=" => Some(BinOp::Eq),
                "<=>" => Some(BinOp::NullSafeEq),
                "<>" | "!=" => Some(BinOp::Ne),
                "<" => Some(BinOp::Lt),
                "<=" => Some(BinOp::Le),
                ">" => Some(BinOp::Gt),
                ">=" => Some(BinOp::Ge),
                _ => None,
            },
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.at_symbol("+") {
                BinOp::Add
            } else if self.at_symbol("-") {
                BinOp::Sub
            } else {
                break;
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.at_symbol("*") {
                BinOp::Mul
            } else if self.at_symbol("/") {
                BinOp::Div
            } else {
                break;
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.at_symbol("-") {
            self.bump();
            let e = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Symbol(s) if s == "(" => {
                self.bump();
                if self.at_keyword("SELECT") {
                    // scalar/EXISTS-less subquery in parentheses — treat as
                    // an EXISTS-style membership is not valid here; we only
                    // allow it behind IN/EXISTS which are handled elsewhere.
                    return self.err("bare subquery not supported in scalar position");
                }
                let e = self.parse_or()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Tok::Number(n) => {
                self.bump();
                Ok(Expr::Literal(parse_number_literal(&n)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Varchar(s)))
            }
            Tok::Ident(id) => {
                let up = id.to_ascii_uppercase();
                match up.as_str() {
                    "NULL" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Null))
                    }
                    "TRUE" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Bool(true)))
                    }
                    "FALSE" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Bool(false)))
                    }
                    "DATE" => {
                        self.bump();
                        match self.bump() {
                            Tok::Str(s) => {
                                let days = s.trim().parse::<i32>().unwrap_or(0);
                                Ok(Expr::Literal(Value::Date(days)))
                            }
                            other => self.err(format!("expected DATE literal, found {other:?}")),
                        }
                    }
                    "NOT" => {
                        self.bump();
                        if self.eat_keyword("EXISTS") {
                            self.expect_symbol("(")?;
                            let sub = self.parse_select()?;
                            self.expect_symbol(")")?;
                            Ok(Expr::Exists {
                                subquery: Box::new(sub),
                                negated: true,
                            })
                        } else {
                            let e = self.parse_not()?;
                            Ok(Expr::not(e))
                        }
                    }
                    "EXISTS" => {
                        self.bump();
                        self.expect_symbol("(")?;
                        let sub = self.parse_select()?;
                        self.expect_symbol(")")?;
                        Ok(Expr::Exists {
                            subquery: Box::new(sub),
                            negated: false,
                        })
                    }
                    "CAST" => {
                        self.bump();
                        self.expect_symbol("(")?;
                        let e = self.parse_or()?;
                        self.expect_keyword("AS")?;
                        let ty = self.parse_type()?;
                        self.expect_symbol(")")?;
                        Ok(Expr::Cast {
                            expr: Box::new(e),
                            ty,
                        })
                    }
                    _ => {
                        self.bump();
                        if self.eat_symbol(".") {
                            let col = self.ident()?;
                            Ok(Expr::Column(ColumnRef::new(id, col)))
                        } else {
                            Ok(Expr::Column(ColumnRef::bare(id)))
                        }
                    }
                }
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }

    fn parse_type(&mut self) -> Result<ColumnType, ParseError> {
        let name = self.ident()?.to_ascii_lowercase();
        // swallow optional (n[,m]) and trailing keywords
        let mut args: Vec<i64> = Vec::new();
        if self.eat_symbol("(") {
            loop {
                match self.bump() {
                    Tok::Number(n) => args.push(n.parse().unwrap_or(0)),
                    other => return self.err(format!("expected type length, got {other:?}")),
                }
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
        }
        let unsigned = self.eat_keyword("UNSIGNED");
        let zerofill = self.eat_keyword("ZEROFILL");
        Ok(match name.as_str() {
            "tinyint" => ColumnType::TinyInt { unsigned },
            "smallint" => ColumnType::SmallInt { unsigned },
            "mediumint" => ColumnType::MediumInt { unsigned },
            "int" | "integer" => ColumnType::Int { unsigned },
            "bigint" => ColumnType::BigInt { unsigned },
            "decimal" | "numeric" => ColumnType::Decimal {
                precision: *args.first().unwrap_or(&10) as u8,
                scale: *args.get(1).unwrap_or(&0) as u8,
                zerofill,
            },
            "float" => ColumnType::Float,
            "double" => ColumnType::Double,
            "varchar" => ColumnType::Varchar(*args.first().unwrap_or(&255) as u16),
            "char" => ColumnType::Char(*args.first().unwrap_or(&1) as u16),
            "text" | "blob" => ColumnType::Text,
            "date" => ColumnType::Date,
            "bool" | "boolean" => ColumnType::Bool,
            other => {
                return self.err(format!("unknown type `{other}`"));
            }
        })
    }
}

fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "LEFT",
        "RIGHT", "FULL", "CROSS", "SEMI", "ANTI", "ON", "AND", "OR", "NOT", "IN", "IS", "NULL",
        "AS", "BY", "EXISTS", "BETWEEN", "DISTINCT", "ALL", "OUTER", "DESC", "ASC", "CAST",
        "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "BEGIN", "COMMIT", "ROLLBACK",
    ];
    RESERVED.iter().any(|r| r.eq_ignore_ascii_case(word))
}

fn parse_number_literal(n: &str) -> Value {
    if let Ok(i) = n.parse::<i64>() {
        return Value::Int(i);
    }
    if !n.contains(['e', 'E']) {
        if let Some(dot) = n.find('.') {
            let scale = (n.len() - dot - 1) as u8;
            let digits: String = n.chars().filter(|c| *c != '.').collect();
            if let Ok(m) = digits.parse::<i128>() {
                return Value::Decimal(Decimal::new(m, scale));
            }
        }
    }
    Value::Double(n.parse::<f64>().unwrap_or(0.0))
}

/// Parse the body of a `/*+ ... */` comment into structured hints.
pub fn parse_hints(body: &str) -> Result<Vec<Hint>, String> {
    let mut hints = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let open = match rest.find('(') {
            Some(i) => i,
            None => return Err(format!("malformed hint near `{rest}`")),
        };
        let close = rest[open..]
            .find(')')
            .map(|i| open + i)
            .ok_or_else(|| format!("unclosed hint near `{rest}`"))?;
        let name = rest[..open].trim().to_ascii_uppercase();
        let args: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let hint = match name.as_str() {
            "JOIN_ORDER" => Hint::JoinOrder(args),
            "HASH_JOIN" => Hint::HashJoin(args),
            "NO_HASH_JOIN" => Hint::NoHashJoin(args),
            "MERGE_JOIN" => Hint::MergeJoin(args),
            "NL_JOIN" => Hint::NlJoin(args),
            "INDEX_JOIN" => Hint::IndexJoin(args),
            "SEMIJOIN" => {
                let strat = args.first().map(|a| match a.to_ascii_uppercase().as_str() {
                    "MATERIALIZATION" => Ok(SemiJoinStrategy::Materialization),
                    "DUPSWEEDOUT" => Ok(SemiJoinStrategy::DuplicateWeedout),
                    "FIRSTMATCH" => Ok(SemiJoinStrategy::FirstMatch),
                    "LOOSESCAN" => Ok(SemiJoinStrategy::LooseScan),
                    other => Err(format!("unknown semijoin strategy {other}")),
                });
                match strat {
                    None => Hint::SemiJoin(None),
                    Some(Ok(s)) => Hint::SemiJoin(Some(s)),
                    Some(Err(e)) => return Err(e),
                }
            }
            "NO_SEMIJOIN" => Hint::NoSemiJoin,
            "SUBQUERY_TO_DERIVED" => Hint::SubqueryToDerived,
            "MATERIALIZATION" => Hint::Materialization(true),
            "NO_MATERIALIZATION" => Hint::Materialization(false),
            "SIMPLIFY_OUTER_JOIN" => Hint::SimplifyOuterJoin,
            other => return Err(format!("unknown hint `{other}`")),
        };
        hints.push(hint);
        rest = rest[close + 1..].trim();
    }
    Ok(hints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{render_expr, render_stmt};

    #[test]
    fn parses_simple_join_query() {
        let sql = "SELECT T4.price FROM T3 INNER JOIN T4 ON T3.goodsName = T4.goodsName \
                   WHERE T3.goodsName = 'flower'";
        let stmt = parse_stmt(sql).unwrap();
        assert_eq!(stmt.table_count(), 2);
        assert_eq!(stmt.join_types(), vec![JoinType::Inner]);
        assert_eq!(render_stmt(&stmt), sql);
    }

    #[test]
    fn parses_all_join_keywords() {
        for (kw, jt) in [
            ("JOIN", JoinType::Inner),
            ("INNER JOIN", JoinType::Inner),
            ("LEFT JOIN", JoinType::LeftOuter),
            ("LEFT OUTER JOIN", JoinType::LeftOuter),
            ("RIGHT OUTER JOIN", JoinType::RightOuter),
            ("FULL OUTER JOIN", JoinType::FullOuter),
            ("CROSS JOIN", JoinType::Cross),
            ("SEMI JOIN", JoinType::Semi),
            ("ANTI JOIN", JoinType::Anti),
        ] {
            let sql = format!("SELECT * FROM a {kw} b ON a.x = b.x");
            let stmt = parse_stmt(&sql).unwrap();
            assert_eq!(stmt.join_types(), vec![jt], "{kw}");
        }
    }

    #[test]
    fn parses_hint_comment() {
        let sql = "SELECT /*+ MERGE_JOIN(t1, t2, t3) NO_SEMIJOIN() */ t3.col1 FROM t1 \
                   LEFT OUTER JOIN t2 ON t1.col1 = t2.col1";
        let stmt = parse_stmt(sql).unwrap();
        assert_eq!(stmt.hints.len(), 2);
        assert_eq!(
            stmt.hints[0],
            Hint::MergeJoin(vec!["t1".into(), "t2".into(), "t3".into()])
        );
        assert_eq!(stmt.hints[1], Hint::NoSemiJoin);
    }

    #[test]
    fn parses_nested_not_in_subqueries_like_listing_1() {
        let sql = "SELECT t0.c0 FROM t0 WHERE t0.c0 IN (SELECT t0.c0 FROM t0 WHERE \
                   (t0.c0 NOT IN (SELECT t0.c0 FROM t0 WHERE t0.c0)) = t0.c0)";
        let stmt = parse_stmt(sql).unwrap();
        assert!(stmt.has_subquery());
        // round-trip is stable
        let rendered = render_stmt(&stmt);
        let reparsed = parse_stmt(&rendered).unwrap();
        assert_eq!(render_stmt(&reparsed), rendered);
    }

    #[test]
    fn parses_literals_numbers_strings_null() {
        let e = parse_expr("a.x = -3.50").unwrap();
        match e {
            Expr::Binary { right, .. } => match *right {
                Expr::Literal(Value::Decimal(d)) => {
                    assert_eq!(d.mantissa, -350);
                    assert_eq!(d.scale, 2);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_expr("x IS NOT NULL").unwrap().size(), 2);
        let e = parse_expr("name = 'it''s'").unwrap();
        assert!(render_expr(&e).contains("'it''s'"));
    }

    #[test]
    fn parses_exists_and_not_exists() {
        let sql = "SELECT * FROM t1 WHERE EXISTS (SELECT * FROM t2 WHERE t2.a = t1.a)";
        assert!(parse_stmt(sql).unwrap().has_subquery());
        let sql = "SELECT * FROM t1 WHERE NOT EXISTS (SELECT * FROM t2)";
        let stmt = parse_stmt(sql).unwrap();
        match stmt.where_clause.unwrap() {
            Expr::Exists { negated, .. } => assert!(negated),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_cast_and_between() {
        let e = parse_expr("CAST(t1.c1 AS bigint(64)) BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { .. }));
        let e = parse_expr("CAST(x AS varchar(20)) = 'a'").unwrap();
        assert!(render_expr(&e).starts_with("CAST(x AS varchar(20))"));
    }

    #[test]
    fn parses_group_by_having_order_limit() {
        let sql = "SELECT COUNT(*) AS cnt FROM t1 JOIN t2 ON t1.a = t2.a \
                   GROUP BY t1.a HAVING COUNT(*) > 1 ORDER BY t1.a DESC LIMIT 5";
        // HAVING with aggregates isn't expressible in our Expr, so HAVING here
        // uses a plain comparison; rewrite to a supported form:
        let sql = sql.replace("HAVING COUNT(*) > 1 ", "");
        let stmt = parse_stmt(&sql).unwrap();
        assert_eq!(stmt.group_by.len(), 1);
        assert_eq!(stmt.limit, Some(5));
        assert!(!stmt.order_by[0].asc);
        assert!(stmt.items[0].is_aggregate());
    }

    #[test]
    fn round_trips_renderer_output() {
        let sqls = [
            "SELECT DISTINCT t1.a FROM t1 ANTI JOIN t2 ON t1.a = t2.a WHERE t1.b <> 3",
            "SELECT * FROM t1 AS x JOIN t2 AS y ON x.a = y.a WHERE x.b IN (1, 2, NULL)",
            "SELECT t1.a FROM t1 WHERE t1.a <=> NULL OR t1.b >= 2.5",
        ];
        for sql in sqls {
            let stmt = parse_stmt(sql).unwrap();
            let rendered = render_stmt(&stmt);
            let reparsed = parse_stmt(&rendered).unwrap();
            assert_eq!(render_stmt(&reparsed), rendered, "{sql}");
        }
    }

    #[test]
    fn parses_dml_statements_and_round_trips() {
        use crate::render::{render_dml, render_program};
        let sqls = [
            "INSERT INTO t1 (a, b, c) VALUES (1, 'x; y', NULL), (2, 'it''s', 3.5)",
            "UPDATE t1 SET a = 2, b = 'z' WHERE t1.a = 1 AND (b IS NOT NULL)",
            "DELETE FROM t1 WHERE a IN (1, 2, 3)",
            "DELETE FROM t1",
            "BEGIN",
            "COMMIT",
            "ROLLBACK",
        ];
        for sql in sqls {
            let stmt = parse_dml(sql).unwrap();
            assert_eq!(render_dml(&stmt), sql, "{sql}");
        }
        // a full program round-trips through text, `;` in strings included
        let program = sqls.join("; ");
        let stmts = parse_program(&program).unwrap();
        assert_eq!(stmts.len(), sqls.len());
        assert_eq!(render_program(&stmts), program);
        // empty statements / trailing separators are tolerated
        assert_eq!(parse_program("BEGIN;; COMMIT;").unwrap().len(), 2);
        assert!(parse_program("").unwrap().is_empty());
    }

    #[test]
    fn dml_parse_errors() {
        assert!(parse_dml("INSERT INTO t1 (a, b) VALUES (1)").is_err());
        assert!(parse_dml("UPDATE t1 WHERE a = 1").is_err());
        assert!(parse_dml("DELETE t1").is_err());
        assert!(parse_dml("SELECT * FROM t1").is_err());
        assert!(parse_program("BEGIN; SELECT 1").is_err());
    }

    #[test]
    fn error_reporting_has_offsets() {
        let err = parse_stmt("SELECT FROM").unwrap_err();
        assert!(err.offset > 0);
        assert!(parse_stmt("SELECT * FROM t WHERE").is_err());
        assert!(parse_hints("BOGUS_HINT(t1)").is_err());
    }
}
