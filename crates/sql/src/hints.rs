//! Optimizer hints and session switches.
//!
//! TQS transforms each generated query with several *hint sets* so that the
//! target DBMS executes different physical plans for the same logical query
//! (Algorithm 1, line 11). We model both MySQL/TiDB-style `/*+ ... */` hint
//! comments and MariaDB-style `SET optimizer_switch='...'` session switches,
//! because the paper's reproduction cases use both.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A `/*+ ... */` optimizer hint attached to a SELECT.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Hint {
    /// Force the listed join order (X-DB / TiDB `JOIN_ORDER(t3, t1, t2)`).
    JoinOrder(Vec<String>),
    /// Force hash join for the listed tables (`HASH_JOIN(t1, t2)`).
    HashJoin(Vec<String>),
    /// Forbid hash join.
    NoHashJoin(Vec<String>),
    /// Force sort-merge join (`MERGE_JOIN(t1, t2)`).
    MergeJoin(Vec<String>),
    /// Force (block) nested-loop join.
    NlJoin(Vec<String>),
    /// Force index (lookup) join.
    IndexJoin(Vec<String>),
    /// Enable semi-join transformation of IN subqueries (`SEMIJOIN()`),
    /// optionally pinning the strategy.
    SemiJoin(Option<SemiJoinStrategy>),
    /// Disable semi-join transformation (`NO_SEMIJOIN()`).
    NoSemiJoin,
    /// Rewrite subqueries to derived tables (`SUBQUERY_TO_DERIVED`).
    SubqueryToDerived,
    /// Force / forbid subquery materialization.
    Materialization(bool),
    /// Ask the optimizer to merge a left outer join into an inner join when
    /// a null-rejecting predicate allows it.
    SimplifyOuterJoin,
}

/// Semi-join execution strategies (mirrors MySQL's set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SemiJoinStrategy {
    Materialization,
    DuplicateWeedout,
    FirstMatch,
    LooseScan,
}

impl SemiJoinStrategy {
    pub fn name(self) -> &'static str {
        match self {
            SemiJoinStrategy::Materialization => "MATERIALIZATION",
            SemiJoinStrategy::DuplicateWeedout => "DUPSWEEDOUT",
            SemiJoinStrategy::FirstMatch => "FIRSTMATCH",
            SemiJoinStrategy::LooseScan => "LOOSESCAN",
        }
    }
}

fn list(tables: &[String]) -> String {
    tables.join(", ")
}

impl fmt::Display for Hint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hint::JoinOrder(t) => write!(f, "JOIN_ORDER({})", list(t)),
            Hint::HashJoin(t) => write!(f, "HASH_JOIN({})", list(t)),
            Hint::NoHashJoin(t) => write!(f, "NO_HASH_JOIN({})", list(t)),
            Hint::MergeJoin(t) => write!(f, "MERGE_JOIN({})", list(t)),
            Hint::NlJoin(t) => write!(f, "NL_JOIN({})", list(t)),
            Hint::IndexJoin(t) => write!(f, "INDEX_JOIN({})", list(t)),
            Hint::SemiJoin(None) => write!(f, "SEMIJOIN()"),
            Hint::SemiJoin(Some(s)) => write!(f, "SEMIJOIN({})", s.name()),
            Hint::NoSemiJoin => write!(f, "NO_SEMIJOIN()"),
            Hint::SubqueryToDerived => write!(f, "SUBQUERY_TO_DERIVED()"),
            Hint::Materialization(true) => write!(f, "MATERIALIZATION()"),
            Hint::Materialization(false) => write!(f, "NO_MATERIALIZATION()"),
            Hint::SimplifyOuterJoin => write!(f, "SIMPLIFY_OUTER_JOIN()"),
        }
    }
}

/// A MariaDB-style optimizer switch toggled via
/// `SET optimizer_switch='name=on|off'` before the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchName {
    /// `join_cache_hashed` — allow BNLH / BKAH (hashed join buffers).
    JoinCacheHashed,
    /// `join_cache_bka` — allow batched key access joins.
    JoinCacheBka,
    /// `join_cache_incremental` — incremental join buffers.
    JoinCacheIncremental,
    /// `outer_join_with_cache` — join buffer for outer joins.
    OuterJoinWithCache,
    /// `semijoin_with_cache` — join buffer for semi joins.
    SemijoinWithCache,
    /// `materialization` — subquery materialization.
    Materialization,
    /// `block_nested_loop` — block nested loop join.
    BlockNestedLoop,
    /// `batched_key_access` — BKA join.
    BatchedKeyAccess,
    /// `hash_join` (MySQL ≥8.0.18 always-on, still a switch in forks).
    HashJoin,
}

impl SwitchName {
    pub const ALL: [SwitchName; 9] = [
        SwitchName::JoinCacheHashed,
        SwitchName::JoinCacheBka,
        SwitchName::JoinCacheIncremental,
        SwitchName::OuterJoinWithCache,
        SwitchName::SemijoinWithCache,
        SwitchName::Materialization,
        SwitchName::BlockNestedLoop,
        SwitchName::BatchedKeyAccess,
        SwitchName::HashJoin,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SwitchName::JoinCacheHashed => "join_cache_hashed",
            SwitchName::JoinCacheBka => "join_cache_bka",
            SwitchName::JoinCacheIncremental => "join_cache_incremental",
            SwitchName::OuterJoinWithCache => "outer_join_with_cache",
            SwitchName::SemijoinWithCache => "semijoin_with_cache",
            SwitchName::Materialization => "materialization",
            SwitchName::BlockNestedLoop => "block_nested_loop",
            SwitchName::BatchedKeyAccess => "batched_key_access",
            SwitchName::HashJoin => "hash_join",
        }
    }

    pub fn from_name(s: &str) -> Option<SwitchName> {
        SwitchName::ALL.iter().copied().find(|n| n.name() == s)
    }
}

/// One `optimizer_switch` assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionSwitch {
    pub name: SwitchName,
    pub on: bool,
}

impl SessionSwitch {
    pub fn off(name: SwitchName) -> Self {
        SessionSwitch { name, on: false }
    }
    pub fn on(name: SwitchName) -> Self {
        SessionSwitch { name, on: true }
    }
}

impl fmt::Display for SessionSwitch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SET optimizer_switch='{}={}';",
            self.name.name(),
            if self.on { "on" } else { "off" }
        )
    }
}

/// A *hint set*: the complete steering applied to one transformed query —
/// session switches executed first, then hints spliced into the SELECT.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HintSet {
    pub label: String,
    pub switches: Vec<SessionSwitch>,
    pub hints: Vec<Hint>,
}

impl HintSet {
    pub fn new(label: impl Into<String>) -> Self {
        HintSet {
            label: label.into(),
            switches: Vec::new(),
            hints: Vec::new(),
        }
    }
    pub fn with_hint(mut self, h: Hint) -> Self {
        self.hints.push(h);
        self
    }
    pub fn with_switch(mut self, s: SessionSwitch) -> Self {
        self.switches.push(s);
        self
    }
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty() && self.hints.is_empty()
    }
}

impl fmt::Display for HintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.switches {
            writeln!(f, "{s}")?;
        }
        if !self.hints.is_empty() {
            let rendered: Vec<String> = self.hints.iter().map(|h| h.to_string()).collect();
            write!(f, "/*+ {} */", rendered.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_rendering_matches_paper_style() {
        assert_eq!(
            Hint::JoinOrder(vec!["t3".into(), "t1".into(), "t2".into()]).to_string(),
            "JOIN_ORDER(t3, t1, t2)"
        );
        assert_eq!(
            Hint::MergeJoin(vec!["t1".into(), "t2".into(), "t3".into()]).to_string(),
            "MERGE_JOIN(t1, t2, t3)"
        );
        assert_eq!(Hint::SemiJoin(None).to_string(), "SEMIJOIN()");
        assert_eq!(Hint::NoSemiJoin.to_string(), "NO_SEMIJOIN()");
    }

    #[test]
    fn switch_rendering_matches_mariadb_style() {
        assert_eq!(
            SessionSwitch::off(SwitchName::JoinCacheHashed).to_string(),
            "SET optimizer_switch='join_cache_hashed=off';"
        );
        assert_eq!(
            SessionSwitch::off(SwitchName::Materialization).to_string(),
            "SET optimizer_switch='materialization=off';"
        );
    }

    #[test]
    fn switch_names_round_trip() {
        for s in SwitchName::ALL {
            assert_eq!(SwitchName::from_name(s.name()), Some(s));
        }
        assert_eq!(SwitchName::from_name("nonsense"), None);
    }

    #[test]
    fn hint_set_display_combines_switches_and_hints() {
        let hs = HintSet::new("bnl-only")
            .with_switch(SessionSwitch::off(SwitchName::JoinCacheBka))
            .with_hint(Hint::NlJoin(vec!["t1".into()]));
        let s = hs.to_string();
        assert!(s.contains("join_cache_bka=off"));
        assert!(s.contains("/*+ NL_JOIN(t1) */"));
        assert!(!HintSet::new("x").with_hint(Hint::NoSemiJoin).is_empty());
        assert!(HintSet::new("empty").is_empty());
    }
}
