//! Cost-based plan enumeration — the optimizer subsystem that turns every
//! statement into a hunted *plan space*.
//!
//! The source paper measures coverage in plans, not statements: the same
//! logical query steered onto different physical plans is what exposes join
//! optimization bugs. Until now each statement here yielded essentially one
//! plan per engine (plus a handful of fixed hint sets). This crate adds a
//! real optimizer layer in four passes:
//!
//! 1. **Logical IR** ([`ir::LogicalPlan`]) — a left-deep operator chain
//!    (base scan → join steps → filter) lowered from a [`SelectStmt`] and
//!    re-synthesized exactly by [`ir::LogicalPlan::to_stmt`], so every
//!    rewrite stays executable on the unmodified engines.
//! 2. **Rule-based rewrites** ([`rewrite`]) — predicate pushdown into
//!    inner-join ON clauses and transitive join-condition inference, both
//!    semantics-preserving and idempotent. Uncorrelated-subquery
//!    decorrelation is hint-level: eligible statements gain subquery-strategy
//!    plan variants (semi-join transform, derived-table rewrite).
//! 3. **Cost model + join enumeration** ([`cost`], [`enumerate`]) —
//!    cardinality estimation from catalog row counts and predicate
//!    selectivities, Held–Karp subset DP over valid left-deep join orders
//!    (DFS/greedy fallback above [`enumerate::DP_MAX_JOINS`] relations).
//! 4. **Hint-forced physical selection** — each enumerated plan is pinned
//!    with `JOIN_ORDER` plus a join-algorithm hint, replicating the engine's
//!    own hint-validity rules, so the plan is deterministically executable on
//!    the row, columnar and disk engines.
//!
//! The enumerator carries its own seeded fault complement
//! ([`tqs_engine::FaultKind::OPTIMIZER`], ids 30–34): inverted cost
//! comparison, dropped rewrite precondition, pushdown past an outer-join
//! boundary, stale cardinality after pruning, and a hint-set memo collision.
//! Each fault is injected *here*, never into an engine build, so the
//! optimizer complement stays pairwise disjoint from all three engines' and
//! the `PlanSpaceOracle` in `tqs-core` can expose them through result
//! divergence, cost-sanity and hint-conformance checks.
//!
//! Everything is a pure function of `(statement, catalog, fault set)`:
//! enumeration seeds derive from the statement text, so a hunt, its witness
//! replay and a later re-verification all enumerate the identical space.

pub mod cost;
pub mod enumerate;
pub mod ir;
pub mod rewrite;

pub use cost::CostModel;
pub use enumerate::{EnumeratedPlan, PlanAlgo, PlanSpace, DP_MAX_JOINS, SAMPLE_PLANS, TOP_K};
pub use ir::LogicalPlan;

use tqs_sql::ast::SelectStmt;

/// Stable FNV-1a over a byte string — the same construction the plan-graph
/// fingerprints use, deliberately not `DefaultHasher` (whose output may
/// change across Rust releases; plan fingerprints are persisted in corpora).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1_0000_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The enumeration seed of a statement: derived from the statement alone
/// (never from a campaign seed), so every consumer — hunt, witness replay,
/// re-verification — samples the identical plan subset.
pub fn statement_seed(stmt: &SelectStmt) -> u64 {
    fnv1a(tqs_sql::render::render_stmt(stmt).as_bytes()) ^ 0x9E37_79B9_7F4A_7C15
}
