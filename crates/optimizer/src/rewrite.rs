//! Rule-based logical rewrites: predicate pushdown and transitive
//! join-condition inference.
//!
//! Both rules are **semantics-preserving** and **idempotent** — applying
//! `rewrite` twice yields the same plan as applying it once. Idempotence is
//! load-bearing: the `PlanSpaceOracle` reports the *rewritten* statement as
//! the witness SQL, so re-verification lowers and rewrites that witness again
//! and must land on the identical statement.
//!
//! The rewrites also host two seeded optimizer faults:
//!
//! * [`FaultKind::OptDroppedRewritePrecondition`] (31) drops the "target join
//!   must be INNER" precondition of pushdown, so a conjunct can land in a
//!   LEFT OUTER / SEMI / ANTI join's ON clause, where filtering happens
//!   before null-padding or existence checks instead of after the join.
//! * [`FaultKind::OptPushdownPastOuterJoin`] (32) pushes a conjunct that
//!   references only the *right* (null-padded) side of a LEFT OUTER join
//!   into that join's own ON clause: rows failing the predicate come back
//!   null-padded instead of being filtered out.
//!
//! The returned fired list contains exactly the faults that *changed the
//! rewritten statement* relative to pristine — an enabled fault whose
//! trigger shape never occurs stays silent, mirroring how the engine fault
//! complements report firings.

use std::collections::{HashMap, HashSet};

use tqs_engine::faults::{FaultKind, FaultSet};
use tqs_sql::ast::{ColumnRef, Expr, JoinType};

use crate::ir::{as_column_equality, qualifiers, split_conjuncts, LogicalPlan};

/// Backstop on the fixpoint loop. Each pass either changes the plan or ends
/// the loop, and every change moves a conjunct out of WHERE or materializes
/// a missing entailed equality — both finite — so the loop terminates on its
/// own; the cap only bounds the damage of a future non-converging rule.
const MAX_REWRITE_PASSES: u64 = 8;

/// Apply all rewrite rules to the plan, rerunning the rule set until a full
/// pass changes nothing (a fixpoint — which is what actually guarantees the
/// idempotence contract above: re-rewriting a rewritten statement finds no
/// rule that still wants to act). Pristine inputs converge on the second
/// pass; the loop structure keeps the contract if a future rule's output
/// enables another rule. Returns the seeded faults that altered the outcome.
pub fn rewrite(plan: &mut LogicalPlan, faults: &FaultSet) -> Vec<FaultKind> {
    let mut fired = Vec::new();
    let mut passes = 0u64;
    loop {
        passes += 1;
        let mut changed = push_down_predicates(plan, faults, &mut fired);
        changed |= infer_join_conditions(plan);
        if !changed || passes >= MAX_REWRITE_PASSES {
            break;
        }
    }
    tqs_telemetry::counter!("optimizer.rewrite.statements").incr();
    tqs_telemetry::counter!("optimizer.rewrite.fixpoint_iterations").add(passes);
    fired
}

/// Where a conjunct may be placed.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Placement {
    /// Stays in the WHERE clause.
    Keep,
    /// AND-ed onto the ON clause of join step `i`.
    On(usize),
}

/// Predicate pushdown: move single-binding WHERE conjuncts into the earliest
/// INNER join ON clause where their binding is available.
///
/// A conjunct is eligible only if it has no subquery, references exactly one
/// known binding, and every reference is qualified. Multi-binding conjuncts
/// stay in WHERE deliberately: placing them into an ON clause would add an
/// ordering dependency under the engine's `JOIN_ORDER` availability rule and
/// shrink the enumerable order space for zero semantic gain (WHERE evaluates
/// after every join either way). The target must be an INNER join that
/// already carries an ON clause (we never turn a CROSS join into a
/// conditional one — the engines plan those differently) at or after the
/// conjunct's availability frontier. Filtering at that point commutes with
/// every later join: INNER and SEMI joins filter the same rows anyway, and
/// LEFT OUTER / ANTI joins never change columns the conjunct can see
/// (null-padding only touches the newly introduced binding).
fn push_down_predicates(
    plan: &mut LogicalPlan,
    faults: &FaultSet,
    fired: &mut Vec<FaultKind>,
) -> bool {
    let Some(filter) = plan.filter.take() else {
        return false;
    };
    let bindings: Vec<String> = plan.bindings().iter().map(|b| b.to_lowercase()).collect();

    let mut kept: Vec<Expr> = Vec::new();
    let mut pushed: Vec<(usize, Expr)> = Vec::new();
    for conjunct in split_conjuncts(&filter) {
        match place_conjunct(&conjunct, plan, &bindings, faults, fired) {
            Placement::Keep => kept.push(conjunct),
            Placement::On(i) => pushed.push((i, conjunct)),
        }
    }

    let changed = !pushed.is_empty();
    for (i, conjunct) in pushed {
        let on = plan.joins[i].on.take();
        plan.joins[i].on = Some(match on {
            Some(existing) => Expr::and(existing, conjunct),
            None => conjunct,
        });
    }
    plan.filter = Expr::conjunction(kept);
    changed
}

fn place_conjunct(
    conjunct: &Expr,
    plan: &LogicalPlan,
    bindings: &[String],
    faults: &FaultSet,
    fired: &mut Vec<FaultKind>,
) -> Placement {
    if conjunct.has_subquery() {
        return Placement::Keep;
    }
    let Some(quals) = qualifiers(conjunct) else {
        return Placement::Keep; // unqualified reference — cannot place safely
    };
    if quals.len() != 1 || quals.iter().any(|q| !bindings.contains(q)) {
        return Placement::Keep;
    }
    // Availability frontier: the first join index at which the referenced
    // binding exists (base is position 0, join i introduces position i + 1).
    let frontier = bindings
        .iter()
        .position(|b| b == &quals[0])
        .unwrap()
        .saturating_sub(1);

    // Seeded fault 32: a conjunct over only the null-padded side of a LEFT
    // OUTER join gets pushed *into that join's ON clause*, so rows failing
    // it survive as padded rows instead of being filtered.
    if let [qual] = quals.as_slice() {
        if let Some(k) = plan.joins.iter().position(|j| {
            j.join_type == JoinType::LeftOuter && j.binding().eq_ignore_ascii_case(qual)
        }) {
            if faults.contains(FaultKind::OptPushdownPastOuterJoin) {
                record(fired, FaultKind::OptPushdownPastOuterJoin);
                return Placement::On(k);
            }
            // Pristine: below-the-outer-join placement is unsafe; a later
            // INNER target (found below) is still fine.
        }
    }

    let inner_target = (frontier..plan.joins.len())
        .find(|&i| plan.joins[i].join_type == JoinType::Inner && plan.joins[i].on.is_some());

    // Seeded fault 31: the "target must be INNER" precondition is dropped —
    // the earliest ON-bearing join of *any* type wins. Only an actually
    // non-INNER target differs from pristine, so only that fires.
    if faults.contains(FaultKind::OptDroppedRewritePrecondition) {
        let any_target = (frontier..plan.joins.len()).find(|&i| plan.joins[i].on.is_some());
        if let Some(i) = any_target {
            if plan.joins[i].join_type != JoinType::Inner {
                record(fired, FaultKind::OptDroppedRewritePrecondition);
                return Placement::On(i);
            }
        }
    }

    match inner_target {
        Some(i) => Placement::On(i),
        None => Placement::Keep,
    }
}

fn record(fired: &mut Vec<FaultKind>, kind: FaultKind) {
    if !fired.contains(&kind) {
        fired.push(kind);
    }
}

/// A column key in the equivalence machinery: `(chain position, lowercase
/// column name)`. The position (base = 0, join i = i + 1) orders the
/// availability check and keeps keys distinct across self-joined bindings.
type ColKey = (usize, String);

/// Transitive join-condition inference: run INNER-join ON equalities through
/// a union–find over `(binding, column)` keys and append every
/// entailed-but-absent equality to the WHERE filter.
///
/// Every added equality is implied by the INNER-join ON conditions each
/// surviving row has already passed (a row that reaches the filter satisfied
/// every INNER ON with non-NULL operands — padded rows from a LEFT OUTER
/// join cannot pass a later INNER equality on their padded columns), so the
/// rewrite is a no-op on results. The equalities land in WHERE, *not* in an
/// ON clause: an ON placement would add an ordering dependency under the
/// engine's `JOIN_ORDER` availability rule and collapse the enumerable order
/// space (a star join would degenerate to the identity order). Because the
/// *full* closure is materialized and `present` is seeded from both ON and
/// WHERE equalities, a second pass finds nothing absent, keeping the rewrite
/// idempotent.
fn infer_join_conditions(plan: &mut LogicalPlan) -> bool {
    let bindings: Vec<String> = plan.bindings().iter().map(|b| b.to_lowercase()).collect();
    // Equalities already spelled out in some ON clause or the WHERE filter,
    // as ordered pairs.
    let mut present: HashSet<(ColKey, ColKey)> = HashSet::new();
    let spelled = plan
        .joins
        .iter()
        .filter_map(|j| j.on.as_ref())
        .chain(plan.filter.iter())
        .flat_map(split_conjuncts);
    for conjunct in spelled {
        if let Some((a, b)) = as_column_equality(&conjunct) {
            if let (Some(ka), Some(kb)) = (col_key(a, &bindings), col_key(b, &bindings)) {
                present.insert(pair(ka, kb));
            }
        }
    }

    // The entailment basis: equalities from INNER-join ON clauses only.
    let mut dsu = Dsu::default();
    for join in &plan.joins {
        if join.join_type != JoinType::Inner {
            continue;
        }
        let Some(on) = &join.on else { continue };
        for conjunct in split_conjuncts(on) {
            if let Some((a, b)) = as_column_equality(&conjunct) {
                if let (Some(ka), Some(kb)) = (col_key(a, &bindings), col_key(b, &bindings)) {
                    dsu.union(ka, kb);
                }
            }
        }
    }

    let keys = dsu.keys();
    let mut changed = false;
    for x in 0..keys.len() {
        for y in (x + 1)..keys.len() {
            let (ka, kb) = (&keys[x], &keys[y]);
            let entailed = dsu.find(ka.clone()) == dsu.find(kb.clone());
            if !entailed || present.contains(&pair(ka.clone(), kb.clone())) {
                continue;
            }
            present.insert(pair(ka.clone(), kb.clone()));
            changed = true;
            let eq = Expr::eq(
                Expr::Column(key_ref(ka, &bindings)),
                Expr::Column(key_ref(kb, &bindings)),
            );
            plan.filter = Some(match plan.filter.take() {
                Some(f) => Expr::and(f, eq),
                None => eq,
            });
        }
    }
    changed
}

fn pair(a: ColKey, b: ColKey) -> (ColKey, ColKey) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[derive(Default)]
struct Dsu {
    parents: HashMap<ColKey, ColKey>,
}

impl Dsu {
    fn find(&mut self, k: ColKey) -> ColKey {
        let p = self
            .parents
            .entry(k.clone())
            .or_insert_with(|| k.clone())
            .clone();
        if p == k {
            return k;
        }
        let root = self.find(p);
        self.parents.insert(k, root.clone());
        root
    }

    fn union(&mut self, a: ColKey, b: ColKey) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra <= rb { (ra, rb) } else { (rb, ra) };
            self.parents.insert(hi, lo);
        }
    }

    fn keys(&self) -> Vec<ColKey> {
        let mut v: Vec<ColKey> = self.parents.keys().cloned().collect();
        v.sort_unstable();
        v
    }
}

fn col_key(c: &ColumnRef, bindings: &[String]) -> Option<ColKey> {
    let qual = c.table.as_ref()?.to_lowercase();
    let pos = bindings.iter().position(|b| *b == qual)?;
    Some((pos, c.column.to_lowercase()))
}

fn key_ref(k: &ColKey, bindings: &[String]) -> ColumnRef {
    ColumnRef {
        table: Some(bindings[k.0].clone()),
        column: k.1.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_sql::parser::parse_stmt;
    use tqs_sql::render::render_stmt;

    fn rewritten(sql: &str, faults: &FaultSet) -> (String, Vec<FaultKind>) {
        let stmt = parse_stmt(sql).unwrap();
        let mut plan = LogicalPlan::lower(&stmt);
        let fired = rewrite(&mut plan, faults);
        (render_stmt(&plan.to_stmt()), fired)
    }

    #[test]
    fn pushdown_targets_earliest_available_inner_join() {
        let (sql, fired) = rewritten(
            "SELECT t1.a FROM t1 JOIN t2 ON t1.k = t2.k JOIN t3 ON t2.k = t3.k \
             WHERE t1.a > 3 AND t3.c = 1",
            &FaultSet::none(),
        );
        assert!(fired.is_empty());
        // t1.a > 3 is available at join 0; t3.c = 1 only at join 1.
        let lower = sql.to_lowercase();
        assert!(
            lower.contains("on t1.k = t2.k and t1.a > 3"),
            "t1 conjunct should move into the first ON: {sql}"
        );
        // Pushdown empties the WHERE; inference then repopulates it with the
        // entailed transitive equality (and nothing else).
        assert!(
            lower.contains("where t1.k = t3.k") && lower.matches("t1.a > 3").count() == 1,
            "WHERE should hold only the inferred equality: {sql}"
        );
        assert!(
            lower.contains("on t2.k = t3.k and t3.c = 1"),
            "t3 conjunct should move into the second ON: {sql}"
        );
    }

    #[test]
    fn pushdown_never_crosses_into_outer_join_on_pristine_builds() {
        let (sql, fired) = rewritten(
            "SELECT t1.a FROM t1 LEFT OUTER JOIN t2 ON t1.k = t2.k WHERE t2.b = 1",
            &FaultSet::none(),
        );
        assert!(fired.is_empty());
        let lower = sql.to_lowercase();
        assert!(
            lower.contains("where t2.b = 1"),
            "padded-side conjunct must stay in WHERE: {sql}"
        );
    }

    #[test]
    fn fault_32_pushes_into_the_outer_join_on_clause() {
        let (sql, fired) = rewritten(
            "SELECT t1.a FROM t1 LEFT OUTER JOIN t2 ON t1.k = t2.k WHERE t2.b = 1",
            &FaultSet::of(&[FaultKind::OptPushdownPastOuterJoin]),
        );
        assert_eq!(fired, vec![FaultKind::OptPushdownPastOuterJoin]);
        let lower = sql.to_lowercase();
        assert!(
            lower.contains("on t1.k = t2.k and t2.b = 1") && !lower.contains("where"),
            "conjunct should land in the LEFT OUTER ON: {sql}"
        );
    }

    #[test]
    fn fault_31_fires_only_for_non_inner_targets() {
        // Base-side conjunct, only join is LEFT OUTER: pristine keeps it in
        // WHERE, fault 31 drops the INNER precondition and pushes it.
        let (sql, fired) = rewritten(
            "SELECT t1.a FROM t1 LEFT OUTER JOIN t2 ON t1.k = t2.k WHERE t1.a > 3",
            &FaultSet::of(&[FaultKind::OptDroppedRewritePrecondition]),
        );
        assert_eq!(fired, vec![FaultKind::OptDroppedRewritePrecondition]);
        assert!(sql.to_lowercase().contains("on t1.k = t2.k and t1.a > 3"));

        // All-inner chain: the faulty path agrees with pristine, so the
        // fault must stay silent.
        let (_, fired) = rewritten(
            "SELECT t1.a FROM t1 JOIN t2 ON t1.k = t2.k WHERE t1.a > 3",
            &FaultSet::of(&[FaultKind::OptDroppedRewritePrecondition]),
        );
        assert!(fired.is_empty());
    }

    #[test]
    fn join_condition_inference_closes_equality_chains() {
        let (sql, _) = rewritten(
            "SELECT t1.a FROM t1 JOIN t2 ON t1.k = t2.k JOIN t3 ON t2.k = t3.k",
            &FaultSet::none(),
        );
        assert!(
            sql.to_lowercase().contains("where t1.k = t3.k"),
            "transitive equality should be materialized in WHERE (an ON \
             placement would constrain join reordering): {sql}"
        );
    }

    #[test]
    fn rewrite_is_idempotent() {
        for sql in [
            "SELECT t1.a FROM t1 JOIN t2 ON t1.k = t2.k JOIN t3 ON t2.k = t3.k \
             WHERE t1.a > 3 AND t3.c = 1 AND t2.b = t3.c",
            "SELECT t1.a FROM t1 LEFT OUTER JOIN t2 ON t1.k = t2.k WHERE t2.b = 1 AND t1.a > 3",
        ] {
            for faults in [
                FaultSet::none(),
                FaultSet::of(&[
                    FaultKind::OptDroppedRewritePrecondition,
                    FaultKind::OptPushdownPastOuterJoin,
                ]),
            ] {
                let stmt = parse_stmt(sql).unwrap();
                let mut plan = LogicalPlan::lower(&stmt);
                rewrite(&mut plan, &faults);
                let once = render_stmt(&plan.to_stmt());
                let mut plan2 = LogicalPlan::lower(&plan.to_stmt());
                rewrite(&mut plan2, &faults);
                let twice = render_stmt(&plan2.to_stmt());
                assert_eq!(once, twice, "rewrite must be idempotent for {sql}");
            }
        }
    }
}
