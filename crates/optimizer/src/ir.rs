//! The logical plan IR: a left-deep operator chain lowered from a
//! [`SelectStmt`] and re-synthesized exactly.
//!
//! The IR deliberately mirrors the statement's own shape — base scan, a
//! chain of join steps, a post-join filter, and a projection "carcass"
//! (SELECT items, GROUP BY, HAVING, ORDER BY, LIMIT) that rewrites never
//! touch. That makes [`LogicalPlan::to_stmt`] an exact inverse of
//! [`LogicalPlan::lower`] modulo the rewrites applied in between, so every
//! rewritten plan stays a plain `SelectStmt` the engines execute unchanged:
//! the optimizer can only *reorganize* a query, never invent an operator the
//! executors lack.

use tqs_sql::ast::{BinOp, ColumnRef, Expr, Join, JoinType, SelectStmt, TableRef};

/// One join step of the left-deep chain. The ON condition is part of the
/// logical operator (rewrites push predicates into it), the join type is
/// preserved verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStep {
    pub join_type: JoinType,
    pub table: TableRef,
    pub on: Option<Expr>,
}

impl JoinStep {
    pub fn binding(&self) -> &str {
        self.table.binding()
    }
}

/// The logical plan of one statement: `scan(base) → join* → filter(σ)`,
/// plus the untouched projection carcass.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    /// The base scan of the left-deep chain.
    pub base: TableRef,
    /// Join steps in statement order (rewrites edit ON clauses in place;
    /// *reordering* happens at enumeration time via JOIN_ORDER hints, so the
    /// simplification decisions the engine makes on the AST stay identical
    /// for every enumerated plan of one statement).
    pub joins: Vec<JoinStep>,
    /// The post-join filter (WHERE). Pushdown moves conjuncts out of here.
    pub filter: Option<Expr>,
    /// Projection / aggregation / ordering carcass: the original statement
    /// with FROM and WHERE cleared out at lowering time. Rewrites never edit
    /// it, so re-synthesis preserves every non-join clause byte for byte.
    carcass: SelectStmt,
}

impl LogicalPlan {
    /// Lower a statement into the IR.
    pub fn lower(stmt: &SelectStmt) -> LogicalPlan {
        let mut carcass = stmt.clone();
        let filter = carcass.where_clause.take();
        let joins = carcass
            .from
            .joins
            .drain(..)
            .map(|j: Join| JoinStep {
                join_type: j.join_type,
                table: j.table,
                on: j.on,
            })
            .collect();
        LogicalPlan {
            base: carcass.from.base.clone(),
            joins,
            filter,
            carcass,
        }
    }

    /// Re-synthesize the (possibly rewritten) statement.
    pub fn to_stmt(&self) -> SelectStmt {
        let mut stmt = self.carcass.clone();
        stmt.from.base = self.base.clone();
        stmt.from.joins = self
            .joins
            .iter()
            .map(|j| Join {
                join_type: j.join_type,
                table: j.table.clone(),
                on: j.on.clone(),
            })
            .collect();
        stmt.where_clause = self.filter.clone();
        stmt
    }

    /// All bindings of the chain, base first, in statement order.
    pub fn bindings(&self) -> Vec<String> {
        let mut v = vec![self.base.binding().to_string()];
        v.extend(self.joins.iter().map(|j| j.binding().to_string()));
        v
    }
}

/// Split an expression into its top-level AND conjuncts.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    collect_conjuncts(expr, &mut out);
    out
}

fn collect_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// The distinct lowercase qualifiers of an expression's column references.
/// `None` if any reference is unqualified — an unqualified column cannot be
/// placed safely, so rewrites leave such conjuncts alone.
pub fn qualifiers(expr: &Expr) -> Option<Vec<String>> {
    let mut out: Vec<String> = Vec::new();
    for c in expr.column_refs() {
        let t = c.table.as_ref()?.to_lowercase();
        if !out.contains(&t) {
            out.push(t);
        }
    }
    Some(out)
}

/// Is this expression a plain `column = column` equality? Returns the two
/// references if so.
pub fn as_column_equality(expr: &Expr) -> Option<(&ColumnRef, &ColumnRef)> {
    if let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = expr
    {
        if let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) {
            return Some((a, b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_sql::parser::parse_stmt;
    use tqs_sql::render::render_stmt;

    fn stmt() -> SelectStmt {
        parse_stmt(
            "SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.k = t2.k \
             LEFT OUTER JOIN t3 ON t2.k = t3.k WHERE t1.a > 3 AND t2.b = t3.c",
        )
        .unwrap()
    }

    #[test]
    fn lower_then_to_stmt_round_trips() {
        let s = stmt();
        let plan = LogicalPlan::lower(&s);
        assert_eq!(plan.bindings(), vec!["t1", "t2", "t3"]);
        assert_eq!(plan.joins.len(), 2);
        assert_eq!(plan.joins[1].join_type, JoinType::LeftOuter);
        assert_eq!(render_stmt(&plan.to_stmt()), render_stmt(&s));
    }

    #[test]
    fn conjunct_split_is_top_level_only() {
        let s = stmt();
        let conjuncts = split_conjuncts(s.where_clause.as_ref().unwrap());
        assert_eq!(conjuncts.len(), 2);
        assert_eq!(qualifiers(&conjuncts[0]), Some(vec!["t1".to_string()]));
        assert_eq!(
            qualifiers(&conjuncts[1]),
            Some(vec!["t2".to_string(), "t3".to_string()])
        );
    }

    #[test]
    fn column_equality_recognizer() {
        let s = stmt();
        let on = s.from.joins[0].on.as_ref().unwrap();
        let (a, b) = as_column_equality(on).expect("t1.k = t2.k");
        assert_eq!(a.table.as_deref(), Some("t1"));
        assert_eq!(b.table.as_deref(), Some("t2"));
        let not_eq = &split_conjuncts(s.where_clause.as_ref().unwrap())[0];
        assert!(as_column_equality(not_eq).is_none());
    }
}
