//! The cardinality/cost model behind join enumeration.
//!
//! Deliberately textbook-simple — catalog row counts, independence-assumption
//! selectivities — because the point is not estimation quality but a *total,
//! deterministic order* on plans that the DP enumerator can optimize and the
//! `PlanSpaceOracle` can sanity-check. Two requirements shape it:
//!
//! 1. **Subset-closed cardinalities.** `card(S)` of a joined relation set is
//!    a pure function of the set (row-count product × one selectivity factor
//!    per predicate edge inside the set), never of the join order that built
//!    it. That is exactly the property Held–Karp subset DP needs for optimal
//!    substructure.
//! 2. **Two row-count tables.** The *stale* table holds raw catalog row
//!    counts; the *fresh* table discounts them by the single-binding
//!    predicates the rewrite phase collected (halving per conjunct, floored
//!    at one row). Pristine enumeration ranks and reports with fresh counts;
//!    the [`FaultKind::OptStaleCardinalityAfterPruning`] seed ranks with the
//!    stale table while still reporting fresh costs — the classic
//!    forgot-to-invalidate-statistics optimizer bug, observable as a
//!    cost-sanity violation without executing a single plan.

use tqs_sql::ast::{BinOp, Expr, JoinType};
use tqs_storage::Catalog;

use crate::ir::{as_column_equality, qualifiers, split_conjuncts, LogicalPlan};

/// Row-count discount per single-binding predicate conjunct.
const PRUNE_FACTOR: f64 = 0.5;
/// Selectivity of a non-equi comparison edge between two relations.
const NONEQUI_SEL: f64 = 0.5;
/// Fallback row count for a binding whose table is missing from the catalog.
const UNKNOWN_ROWS: f64 = 100.0;

/// Which row-count table a cost evaluation reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowCounts {
    /// Raw catalog row counts, ignoring predicate pruning.
    Stale,
    /// Catalog counts discounted by single-binding predicates.
    Fresh,
}

/// The per-statement cost model: one slot per chain position (base = 0,
/// join i = i + 1), plus the predicate edges between positions.
#[derive(Debug, Clone)]
pub struct CostModel {
    stale: Vec<f64>,
    fresh: Vec<f64>,
    /// Equality edges between two distinct positions (from ON clauses).
    equi: Vec<(usize, usize)>,
    /// Non-equality comparison edges between two distinct positions.
    nonequi: Vec<(usize, usize)>,
}

impl CostModel {
    /// Build the model for a (rewritten) logical plan against the catalog.
    pub fn new(plan: &LogicalPlan, catalog: &Catalog) -> CostModel {
        let bindings: Vec<String> = plan.bindings().iter().map(|b| b.to_lowercase()).collect();
        let position = |qual: &str| bindings.iter().position(|b| b == qual);

        let mut stale = Vec::with_capacity(bindings.len());
        let tables =
            std::iter::once(&plan.base.table).chain(plan.joins.iter().map(|j| &j.table.table));
        for table in tables {
            stale.push(
                catalog
                    .table(table)
                    .map(|t| t.row_count() as f64)
                    .unwrap_or(UNKNOWN_ROWS)
                    .max(1.0),
            );
        }

        // Collect predicate conjuncts from WHERE and every ON clause.
        let mut single_binding = vec![0u32; bindings.len()];
        let mut equi = Vec::new();
        let mut nonequi = Vec::new();
        let conjuncts = plan
            .filter
            .iter()
            .chain(plan.joins.iter().filter_map(|j| j.on.as_ref()))
            .flat_map(split_conjuncts);
        for conjunct in conjuncts {
            let Some(quals) = qualifiers(&conjunct) else {
                continue;
            };
            let positions: Vec<usize> = quals.iter().filter_map(|q| position(q)).collect();
            if positions.len() != quals.len() {
                continue; // references an unknown binding — no estimate
            }
            match positions.as_slice() {
                [p] => single_binding[*p] += 1,
                [a, b] => {
                    let edge = (*a.min(b), *a.max(b));
                    if as_column_equality(&conjunct).is_some() {
                        equi.push(edge);
                    } else if let Expr::Binary { op, .. } = &conjunct {
                        if op.is_comparison() && *op != BinOp::Eq {
                            nonequi.push(edge);
                        }
                    }
                }
                _ => {}
            }
        }

        let fresh = stale
            .iter()
            .zip(&single_binding)
            .map(|(rows, preds)| (rows * PRUNE_FACTOR.powi(*preds as i32)).max(1.0))
            .collect();
        CostModel {
            stale,
            fresh,
            equi,
            nonequi,
        }
    }

    /// Number of chain positions (base + joins).
    pub fn positions(&self) -> usize {
        self.stale.len()
    }

    fn rows(&self, pos: usize, counts: RowCounts) -> f64 {
        match counts {
            RowCounts::Stale => self.stale[pos],
            RowCounts::Fresh => self.fresh[pos],
        }
    }

    /// Selectivity contribution of joining `next` to the already-joined
    /// position set: one factor per predicate edge between `next` and the
    /// set. Equality edges use 1/max(|R|, |S|) (textbook key-join estimate);
    /// comparison edges use a flat [`NONEQUI_SEL`]. Because every edge
    /// contributes exactly once — when its *second* endpoint joins — the
    /// resulting `card` is a pure function of the joined set.
    fn step_selectivity(&self, next: usize, joined: &[usize], counts: RowCounts) -> f64 {
        let mut sel = 1.0;
        for &(a, b) in &self.equi {
            let other = match (a == next, b == next) {
                (true, _) => b,
                (_, true) => a,
                _ => continue,
            };
            if joined.contains(&other) {
                sel /= self.rows(next, counts).max(self.rows(other, counts));
            }
        }
        for &(a, b) in &self.nonequi {
            let other = match (a == next, b == next) {
                (true, _) => b,
                (_, true) => a,
                _ => continue,
            };
            if joined.contains(&other) {
                sel *= NONEQUI_SEL;
            }
        }
        sel
    }

    /// The cost of one left-deep join order: the sum of intermediate-result
    /// cardinalities after every join step (the base scan is free — it is the
    /// same in every order). `order` lists join indices (position = index+1);
    /// the base is always first, as the engine's `JOIN_ORDER` requires.
    pub fn order_cost(&self, order: &[usize], counts: RowCounts) -> f64 {
        let mut joined = vec![0usize];
        let mut card = self.rows(0, counts);
        let mut total = 0.0;
        for &j in order {
            let pos = j + 1;
            card *= self.rows(pos, counts) * self.step_selectivity(pos, &joined, counts);
            card = card.max(1.0);
            total += card;
            joined.push(pos);
        }
        total
    }

    /// The cardinality of a joined subset (base + the given join indices) —
    /// order-independent by construction; used by the DP enumerator.
    pub fn subset_card(&self, joins: &[usize], counts: RowCounts) -> f64 {
        let mut joined = vec![0usize];
        let mut card = self.rows(0, counts);
        for &j in joins {
            let pos = j + 1;
            card *= self.rows(pos, counts) * self.step_selectivity(pos, &joined, counts);
            card = card.max(1.0);
            joined.push(pos);
        }
        card
    }
}

/// Is every join of the plan one the engine's `JOIN_ORDER` machinery accepts
/// (the same gate as `reorder_joins`: INNER / CROSS / LEFT OUTER only)?
pub fn reorderable(plan: &LogicalPlan) -> bool {
    plan.joins.iter().all(|j| {
        matches!(
            j.join_type,
            JoinType::Inner | JoinType::Cross | JoinType::LeftOuter
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_sql::parser::parse_stmt;
    use tqs_sql::types::{ColumnDef, ColumnType};
    use tqs_sql::value::Value;
    use tqs_storage::{Row, Table};

    fn table(name: &str, rows: usize) -> Table {
        let mut t = Table::new(
            name,
            vec![
                ColumnDef::new("k", ColumnType::Int { unsigned: false }),
                ColumnDef::new("v", ColumnType::Int { unsigned: false }),
            ],
        );
        for i in 0..rows {
            t.push_row(Row::new(vec![
                Value::Int(i as i64),
                Value::Int((i * 7) as i64),
            ]))
            .unwrap();
        }
        t
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(table("t1", 64));
        c.add_table(table("t2", 16));
        c.add_table(table("t3", 4));
        c
    }

    fn model(sql: &str) -> CostModel {
        CostModel::new(&LogicalPlan::lower(&parse_stmt(sql).unwrap()), &catalog())
    }

    #[test]
    fn fresh_counts_discount_single_binding_predicates() {
        let cm = model(
            "SELECT t1.k FROM t1 JOIN t2 ON t1.k = t2.k WHERE t1.v > 3 AND t1.k < 9 AND t2.v = 1",
        );
        assert_eq!(cm.rows(0, RowCounts::Stale), 64.0);
        assert_eq!(cm.rows(0, RowCounts::Fresh), 16.0); // two conjuncts → ×0.25
        assert_eq!(cm.rows(1, RowCounts::Fresh), 8.0); // one conjunct → ×0.5
    }

    #[test]
    fn subset_cardinality_is_order_independent() {
        let cm = model(
            "SELECT t1.k FROM t1 JOIN t2 ON t1.k = t2.k JOIN t3 ON t2.k = t3.k AND t1.v < t3.v",
        );
        let a = cm.subset_card(&[0, 1], RowCounts::Fresh);
        let b = cm.subset_card(&[1, 0], RowCounts::Fresh);
        assert!(
            (a - b).abs() < 1e-9,
            "card must not depend on order: {a} vs {b}"
        );
    }

    #[test]
    fn order_cost_prefers_the_small_relation_first() {
        // Star join: both joins hang off t1, so either order is valid; the
        // tiny t3 (4 rows) first gives smaller intermediate results.
        let cm = model("SELECT t1.k FROM t1 JOIN t2 ON t1.k = t2.k JOIN t3 ON t1.k = t3.k");
        let small_first = cm.order_cost(&[1, 0], RowCounts::Fresh);
        let big_first = cm.order_cost(&[0, 1], RowCounts::Fresh);
        assert!(
            small_first < big_first,
            "small-first {small_first} should beat big-first {big_first}"
        );
    }

    #[test]
    fn stale_and_fresh_rankings_can_disagree() {
        // Pruning flips the ranking: t2 is bigger than t3 raw, but a WHERE
        // conjunct prunes t2 below t3's size.
        let cm = model(
            "SELECT t1.k FROM t1 JOIN t2 ON t1.k = t2.k JOIN t3 ON t1.k = t3.k \
             WHERE t2.v > 1 AND t2.v < 5 AND t2.k > 0",
        );
        let fresh_t2_first = cm.order_cost(&[0, 1], RowCounts::Fresh);
        let fresh_t3_first = cm.order_cost(&[1, 0], RowCounts::Fresh);
        let stale_t2_first = cm.order_cost(&[0, 1], RowCounts::Stale);
        let stale_t3_first = cm.order_cost(&[1, 0], RowCounts::Stale);
        assert!(fresh_t2_first < fresh_t3_first);
        assert!(stale_t3_first < stale_t2_first);
    }

    #[test]
    fn reorderable_matches_the_engine_gate() {
        let ok = LogicalPlan::lower(
            &parse_stmt("SELECT t1.k FROM t1 LEFT OUTER JOIN t2 ON t1.k = t2.k").unwrap(),
        );
        assert!(reorderable(&ok));
    }
}
