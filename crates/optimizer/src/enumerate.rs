//! Join-order enumeration, plan selection and hint-forced physical plans.
//!
//! For one statement the enumerator produces a bounded **plan space**: every
//! member is a concrete, deterministically executable physical plan, pinned
//! onto the engines through their own hint machinery (`JOIN_ORDER` plus
//! per-join algorithm hints with explicit table lists). The space is built in
//! three steps:
//!
//! 1. **Valid orders.** A DFS enumerates left-deep join orders that replicate
//!    the engine's `reorder_joins` validity rules exactly (INNER / CROSS /
//!    LEFT OUTER only; every ON clause may reference only its own binding and
//!    already-joined ones), capped at [`MAX_ORDERS`]. A statement whose
//!    identity order fails the check is kept un-reordered with no order hint —
//!    the engine would ignore the hint anyway.
//! 2. **Cost-based pick.** Up to [`DP_MAX_JOINS`] joins, a Held–Karp subset
//!    DP finds the cheapest valid order over the *entire* order space (the
//!    subset-closed cardinalities of [`crate::cost`] give it optimal
//!    substructure); above the threshold it falls back to the cheapest of the
//!    DFS-enumerated orders. Two seeded faults live here:
//!    [`FaultKind::OptInvertedCostComparison`] flips every comparison (the DP
//!    returns the *worst* order), and
//!    [`FaultKind::OptStaleCardinalityAfterPruning`] ranks with raw catalog
//!    row counts while reporting predicate-pruned costs.
//! 3. **Selection + memo.** Candidates (orders × per-join algorithm
//!    assignments × subquery-strategy variants) are ranked by cost; the space
//!    keeps the cost-model pick, the [`TOP_K`] cheapest, and
//!    [`SAMPLE_PLANS`] seeded random draws — the seed derives from the
//!    statement text ([`crate::statement_seed`]), so hunt, replay and
//!    re-verification enumerate the identical subset. Hint sets are issued
//!    through a fingerprint-keyed memo; under
//!    [`FaultKind::OptHintIgnoredUnderMemoCollision`] the memo keys on only
//!    the low three fingerprint bits, silently reusing a colliding plan's
//!    hint set.

use std::collections::HashMap;

use tqs_engine::faults::{FaultKind, FaultSet};
use tqs_sql::ast::SelectStmt;
use tqs_sql::hints::{Hint, HintSet, SemiJoinStrategy, SessionSwitch, SwitchName};
use tqs_storage::Catalog;

use crate::cost::{reorderable, CostModel, RowCounts};
use crate::ir::LogicalPlan;
use crate::rewrite::rewrite;
use crate::{fnv1a, statement_seed};

/// Relation-count threshold for exact Held–Karp join ordering; above it the
/// enumerator falls back to the cheapest DFS-enumerated order.
pub const DP_MAX_JOINS: usize = 7;
/// Cap on DFS-enumerated valid join orders per statement.
pub const MAX_ORDERS: usize = 64;
/// Plans kept by cost rank (beyond the cost-model pick itself).
pub const TOP_K: usize = 12;
/// Additional seeded random draws from the candidate set.
pub const SAMPLE_PLANS: usize = 4;

/// A join algorithm a plan can pin onto one join step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanAlgo {
    /// No hint: the engine's profile default.
    Default,
    Hash,
    Merge,
    Nl,
    Index,
}

impl PlanAlgo {
    /// The non-default algorithms, in the deterministic order hint sets and
    /// assignment variants are generated in.
    pub const FORCED: [PlanAlgo; 4] = [
        PlanAlgo::Hash,
        PlanAlgo::Merge,
        PlanAlgo::Nl,
        PlanAlgo::Index,
    ];

    pub fn label(self) -> &'static str {
        match self {
            PlanAlgo::Default => "default",
            PlanAlgo::Hash => "hash",
            PlanAlgo::Merge => "merge",
            PlanAlgo::Nl => "nl",
            PlanAlgo::Index => "index",
        }
    }

    /// Cost multiplier relative to the profile-default algorithm. The exact
    /// values only need to induce a stable ranking: default is free, hash
    /// nearly so, index close behind, merge pays its sort, nested loop pays
    /// quadratically.
    pub fn factor(self) -> f64 {
        match self {
            PlanAlgo::Default => 1.0,
            PlanAlgo::Hash => 1.05,
            PlanAlgo::Index => 1.1,
            PlanAlgo::Merge => 1.25,
            PlanAlgo::Nl => 1.6,
        }
    }

    fn hint(self, tables: Vec<String>) -> Option<Hint> {
        match self {
            PlanAlgo::Default => None,
            PlanAlgo::Hash => Some(Hint::HashJoin(tables)),
            PlanAlgo::Merge => Some(Hint::MergeJoin(tables)),
            PlanAlgo::Nl => Some(Hint::NlJoin(tables)),
            PlanAlgo::Index => Some(Hint::IndexJoin(tables)),
        }
    }
}

/// Subquery-strategy plan variants (hint-level decorrelation).
const SUBQ_ALL: [&str; 2] = ["semijoin-materialization", "no-semijoin"];
const SUBQ_UNCORRELATED: [&str; 2] = ["subquery-to-derived", "materialization-off"];

fn subq_hints(label: &str, hs: HintSet) -> HintSet {
    match label {
        "semijoin-materialization" => {
            hs.with_hint(Hint::SemiJoin(Some(SemiJoinStrategy::Materialization)))
        }
        "no-semijoin" => hs.with_hint(Hint::NoSemiJoin),
        "subquery-to-derived" => hs.with_hint(Hint::SubqueryToDerived),
        "materialization-off" => hs
            .with_switch(SessionSwitch::off(SwitchName::Materialization))
            .with_hint(Hint::Materialization(false)),
        _ => hs,
    }
}

/// One member of a statement's plan space: a join order, a per-join
/// algorithm assignment, an optional subquery strategy, and the hint set
/// that pins all of it onto an engine.
#[derive(Debug, Clone)]
pub struct EnumeratedPlan {
    /// Join indices in execution order (identity = statement order).
    pub order: Vec<usize>,
    /// Bindings in execution order, base first — the `JOIN_ORDER` argument.
    pub order_bindings: Vec<String>,
    /// Algorithm per join step, parallel to `order`.
    pub algos: Vec<PlanAlgo>,
    /// Subquery-strategy variant, if any.
    pub subquery: Option<&'static str>,
    /// Estimated cost (fresh row counts × algorithm factors).
    pub cost: f64,
    /// Stable plan fingerprint over (order, algorithms, subquery variant).
    pub fingerprint: u64,
    /// The hint set this plan was *supposed* to execute with.
    pub intended: HintSet,
    /// The hint set actually issued — identical to `intended` unless the
    /// memo-collision fault substituted a colliding plan's hints.
    pub hints: HintSet,
    /// Plan-level seeded faults that changed this plan (memo collisions).
    pub fired: Vec<FaultKind>,
}

impl EnumeratedPlan {
    /// The display / trace label of this plan.
    pub fn label(&self) -> String {
        format!("plan-{:016x}", self.fingerprint)
    }
}

/// The bounded plan space of one statement.
#[derive(Debug, Clone)]
pub struct PlanSpace {
    /// The rewritten statement every plan executes.
    pub stmt: SelectStmt,
    /// Rewrite-phase seeded faults that altered the statement.
    pub rewrite_fired: Vec<FaultKind>,
    /// Selected plans; `plans[0]` is always the cost-model pick.
    pub plans: Vec<EnumeratedPlan>,
    /// Cost-phase seeded faults that changed the pick (by fresh cost).
    pub cost_fired: Vec<FaultKind>,
}

impl PlanSpace {
    /// The cost-model pick.
    pub fn best(&self) -> &EnumeratedPlan {
        &self.plans[0]
    }

    /// The cheapest reported cost across the whole space.
    pub fn min_cost(&self) -> f64 {
        self.plans
            .iter()
            .map(|p| p.cost)
            .fold(f64::INFINITY, f64::min)
    }

    /// Enumerate the plan space of `stmt`. Pure in `(stmt, catalog, faults)`:
    /// the same inputs always produce the same space, which is what lets a
    /// hunt, its witness replay and a later re-verification agree.
    pub fn enumerate(stmt: &SelectStmt, catalog: &Catalog, faults: &FaultSet) -> PlanSpace {
        let _span = tqs_telemetry::span("optimizer", "enumerate");
        let mut logical = LogicalPlan::lower(stmt);
        let rewrite_fired = rewrite(&mut logical, faults);
        let rewritten = logical.to_stmt();

        let n = logical.joins.len();
        let bindings: Vec<String> = logical.bindings().iter().map(|b| b.to_string()).collect();
        // Per-join requirement masks: which *join* indices must already be
        // placed before this join's ON clause is available (the base is
        // always available). `None` when the ON references an unknown
        // binding — the engine would reject every order, identity included.
        let reqs = requirement_masks(&logical, &bindings);
        let mut orders = if reorderable(&logical) && reqs.is_some() && n > 0 {
            valid_orders(reqs.as_deref().unwrap(), n, MAX_ORDERS)
        } else {
            Vec::new()
        };
        let hinted_order = !orders.is_empty();
        if orders.is_empty() {
            orders.push((0..n).collect());
        }

        // Which ordering path serves this statement: exact DP below the join
        // budget, heuristic DFS above it, identity when reordering is off
        // the table.
        if tqs_telemetry::enabled() {
            let path = if !hinted_order || n < 2 {
                "optimizer.enumerate.identity_order"
            } else if n <= DP_MAX_JOINS {
                "optimizer.enumerate.dp_orders"
            } else {
                "optimizer.enumerate.dfs_orders"
            };
            tqs_telemetry::metrics::counter(path).incr();
        }

        let cm = CostModel::new(&logical, catalog);
        let pick = |active: &FaultSet| -> Vec<usize> {
            if !hinted_order || n < 2 {
                return (0..n).collect();
            }
            let counts = if active.contains(FaultKind::OptStaleCardinalityAfterPruning) {
                RowCounts::Stale
            } else {
                RowCounts::Fresh
            };
            let invert = active.contains(FaultKind::OptInvertedCostComparison);
            if n <= DP_MAX_JOINS {
                dp_best_order(&cm, reqs.as_deref().unwrap(), n, counts, invert)
            } else {
                dfs_best_order(&cm, &orders, counts, invert)
            }
        };
        let pristine_pick = pick(&FaultSet::none());
        let best_order = pick(faults);
        let mut cost_fired = Vec::new();
        for f in [
            FaultKind::OptInvertedCostComparison,
            FaultKind::OptStaleCardinalityAfterPruning,
        ] {
            if faults.contains(f)
                && cm.order_cost(&pick(&FaultSet::of(&[f])), RowCounts::Fresh)
                    != cm.order_cost(&pristine_pick, RowCounts::Fresh)
            {
                cost_fired.push(f);
            }
        }

        // Candidate set: orders × algorithm assignments, plus subquery
        // variants on the identity order. The cost-model pick is candidate 0.
        let assignments = algo_assignments(n);
        let subq_variants = subquery_variants(&rewritten, catalog);
        let mut candidates: Vec<Candidate> = Vec::new();
        candidates.push(Candidate::new(
            &cm,
            &bindings,
            best_order.clone(),
            vec![PlanAlgo::Default; n],
            None,
        ));
        for order in &orders {
            for asgn in &assignments {
                candidates.push(Candidate::new(
                    &cm,
                    &bindings,
                    order.clone(),
                    asgn.clone(),
                    None,
                ));
            }
        }
        for v in &subq_variants {
            candidates.push(Candidate::new(
                &cm,
                &bindings,
                orders[0].clone(),
                vec![PlanAlgo::Default; n],
                Some(v),
            ));
        }

        // Selection: the pick, the TOP_K cheapest, and seeded random draws.
        let mut by_cost: Vec<usize> = (1..candidates.len()).collect();
        by_cost.sort_by(|&a, &b| {
            candidates[a]
                .cost
                .total_cmp(&candidates[b].cost)
                .then(candidates[a].fingerprint.cmp(&candidates[b].fingerprint))
        });
        let mut selected: Vec<usize> = vec![0];
        selected.extend(by_cost.iter().copied().take(TOP_K));
        let mut rng = statement_seed(stmt).max(1);
        for _ in 0..SAMPLE_PLANS {
            rng = xorshift(rng);
            selected.push(1 + (rng % (candidates.len() as u64 - 1).max(1)) as usize);
        }

        // Materialize, de-duplicating by fingerprint (the pick survives — it
        // is first), then issue hint sets through the memo.
        let fault_34 = faults.contains(FaultKind::OptHintIgnoredUnderMemoCollision);
        let mut seen: Vec<u64> = Vec::new();
        let mut memo: HashMap<u64, HintSet> = HashMap::new();
        let mut plans = Vec::new();
        for idx in selected {
            let c = &candidates[idx];
            if seen.contains(&c.fingerprint) {
                continue;
            }
            seen.push(c.fingerprint);
            let mut plan = c.materialize(&bindings, hinted_order);
            let memo_key = if fault_34 {
                plan.fingerprint & 0x7
            } else {
                plan.fingerprint
            };
            match memo.get(&memo_key) {
                Some(hints) => {
                    tqs_telemetry::counter!("optimizer.enumerate.memo_hits").incr();
                    plan.hints = hints.clone();
                    if plan.hints != plan.intended {
                        plan.fired.push(FaultKind::OptHintIgnoredUnderMemoCollision);
                    }
                }
                None => {
                    tqs_telemetry::counter!("optimizer.enumerate.memo_misses").incr();
                    memo.insert(memo_key, plan.intended.clone());
                    plan.hints = plan.intended.clone();
                }
            }
            plans.push(plan);
        }

        tqs_telemetry::counter!("optimizer.enumerate.statements").incr();
        tqs_telemetry::counter!("optimizer.enumerate.plans").add(plans.len() as u64);

        PlanSpace {
            stmt: rewritten,
            rewrite_fired,
            plans,
            cost_fired,
        }
    }
}

/// An unmaterialized plan candidate: just enough to rank and de-duplicate.
struct Candidate {
    order: Vec<usize>,
    algos: Vec<PlanAlgo>,
    subquery: Option<&'static str>,
    cost: f64,
    fingerprint: u64,
}

impl Candidate {
    fn new(
        cm: &CostModel,
        bindings: &[String],
        order: Vec<usize>,
        algos: Vec<PlanAlgo>,
        subquery: Option<&'static str>,
    ) -> Candidate {
        let cost = cm.order_cost(&order, RowCounts::Fresh)
            * algos.iter().map(|a| a.factor()).product::<f64>();
        let mut key = String::new();
        key.push_str(&bindings[0]);
        for &j in &order {
            key.push(',');
            key.push_str(&bindings[j + 1]);
        }
        key.push('|');
        for a in &algos {
            key.push_str(a.label());
            key.push(',');
        }
        key.push('|');
        key.push_str(subquery.unwrap_or("-"));
        Candidate {
            order,
            algos,
            subquery,
            cost,
            fingerprint: fnv1a(key.as_bytes()),
        }
    }

    fn materialize(&self, bindings: &[String], hinted_order: bool) -> EnumeratedPlan {
        let order_bindings: Vec<String> = std::iter::once(bindings[0].clone())
            .chain(self.order.iter().map(|&j| bindings[j + 1].clone()))
            .collect();
        let mut hs = HintSet::new(format!("plan-{:016x}", self.fingerprint));
        if hinted_order && !self.order.is_empty() {
            hs = hs.with_hint(Hint::JoinOrder(order_bindings.clone()));
        }
        for algo in PlanAlgo::FORCED {
            let tables: Vec<String> = self
                .order
                .iter()
                .zip(&self.algos)
                .filter(|(_, a)| **a == algo)
                .map(|(&j, _)| bindings[j + 1].clone())
                .collect();
            if !tables.is_empty() {
                hs = hs.with_hint(algo.hint(tables).expect("forced algo has a hint"));
            }
        }
        if let Some(v) = self.subquery {
            hs = subq_hints(v, hs);
        }
        EnumeratedPlan {
            order: self.order.clone(),
            order_bindings,
            algos: self.algos.clone(),
            subquery: self.subquery,
            cost: self.cost,
            fingerprint: self.fingerprint,
            intended: hs.clone(),
            hints: hs,
            fired: Vec::new(),
        }
    }
}

/// Per-join requirement masks: bit `k` set means join `k` must precede this
/// join. `None` if any ON clause references a binding outside the statement.
fn requirement_masks(plan: &LogicalPlan, bindings: &[String]) -> Option<Vec<u32>> {
    let lower: Vec<String> = bindings.iter().map(|b| b.to_lowercase()).collect();
    let mut reqs = Vec::with_capacity(plan.joins.len());
    for (i, join) in plan.joins.iter().enumerate() {
        let mut mask = 0u32;
        if let Some(on) = &join.on {
            for c in on.column_refs() {
                let Some(t) = &c.table else { continue };
                let t = t.to_lowercase();
                let pos = lower.iter().position(|b| *b == t)?;
                if pos != 0 && pos != i + 1 {
                    mask |= 1 << (pos - 1);
                }
            }
        }
        reqs.push(mask);
    }
    Some(reqs)
}

/// DFS over valid left-deep orders, ascending join index at every depth, so
/// the identity order (when valid) is generated first. Replicates the
/// engine's availability rule: a join is placeable once every binding its ON
/// clause references (other than itself and the base) is already placed.
fn valid_orders(reqs: &[u32], n: usize, cap: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut placed = Vec::with_capacity(n);
    let mut mask = 0u32;
    dfs_orders(reqs, n, cap, &mut placed, &mut mask, &mut out);
    out
}

fn dfs_orders(
    reqs: &[u32],
    n: usize,
    cap: usize,
    placed: &mut Vec<usize>,
    mask: &mut u32,
    out: &mut Vec<Vec<usize>>,
) {
    if out.len() >= cap {
        return;
    }
    if placed.len() == n {
        out.push(placed.clone());
        return;
    }
    for j in 0..n {
        if *mask & (1 << j) != 0 || reqs[j] & !*mask != 0 {
            continue;
        }
        placed.push(j);
        *mask |= 1 << j;
        dfs_orders(reqs, n, cap, placed, mask, out);
        *mask &= !(1 << j);
        placed.pop();
    }
}

/// Held–Karp subset DP over all valid left-deep orders. `invert` flips every
/// comparison (the inverted-cost-comparison fault: the DP faithfully returns
/// the *worst* order).
fn dp_best_order(
    cm: &CostModel,
    reqs: &[u32],
    n: usize,
    counts: RowCounts,
    invert: bool,
) -> Vec<usize> {
    let full = (1u32 << n) - 1;
    let better = |a: f64, b: f64| if invert { a > b } else { a < b };
    // best[mask] = (cost of the best order of `mask`, last join placed)
    let mut best: Vec<Option<(f64, usize)>> = vec![None; 1 << n];
    for mask in 1..=full {
        let members: Vec<usize> = (0..n).filter(|j| mask & (1 << j) != 0).collect();
        let card = cm.subset_card(&members, counts);
        for &j in &members {
            let prev = mask & !(1 << j);
            if reqs[j] & !prev != 0 {
                continue; // j's ON needs a join not yet placed
            }
            let prev_cost = if prev == 0 {
                0.0
            } else {
                match best[prev as usize] {
                    Some((c, _)) => c,
                    None => continue,
                }
            };
            let cost = prev_cost + card;
            if best[mask as usize].map_or(true, |(c, _)| better(cost, c)) {
                best[mask as usize] = Some((cost, j));
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let Some((_, j)) = best[mask as usize] else {
            // No valid order reaches this subset (cannot happen when the
            // caller verified identity is valid); fall back to identity.
            return (0..n).collect();
        };
        order.push(j);
        mask &= !(1 << j);
    }
    order.reverse();
    order
}

/// Fallback above [`DP_MAX_JOINS`]: the best of the DFS-enumerated orders.
fn dfs_best_order(
    cm: &CostModel,
    orders: &[Vec<usize>],
    counts: RowCounts,
    invert: bool,
) -> Vec<usize> {
    let better = |a: f64, b: f64| if invert { a > b } else { a < b };
    let mut best = 0;
    let mut best_cost = cm.order_cost(&orders[0], counts);
    for (i, order) in orders.iter().enumerate().skip(1) {
        let cost = cm.order_cost(order, counts);
        if better(cost, best_cost) {
            best = i;
            best_cost = cost;
        }
    }
    orders[best].clone()
}

/// Per-join algorithm assignments: all-default, each algorithm uniformly,
/// and every single-join override (when there are at least two joins to
/// make an override distinct from the uniform assignment).
fn algo_assignments(n: usize) -> Vec<Vec<PlanAlgo>> {
    let mut out = vec![vec![PlanAlgo::Default; n]];
    if n == 0 {
        return out;
    }
    for algo in PlanAlgo::FORCED {
        out.push(vec![algo; n]);
    }
    if n >= 2 {
        for j in 0..n {
            for algo in PlanAlgo::FORCED {
                let mut asgn = vec![PlanAlgo::Default; n];
                asgn[j] = algo;
                out.push(asgn);
            }
        }
    }
    out
}

/// The subquery-strategy variant labels applicable to this statement.
fn subquery_variants(stmt: &SelectStmt, catalog: &Catalog) -> Vec<&'static str> {
    if !stmt.has_subquery() {
        return Vec::new();
    }
    let mut variants: Vec<&'static str> = SUBQ_ALL.to_vec();
    let mut subqueries = Vec::new();
    if let Some(w) = &stmt.where_clause {
        collect_subqueries(w, &mut subqueries);
    }
    let uncorrelated = subqueries.iter().any(|sq| {
        let own = |col: &str| {
            catalog
                .table(&sq.from.base.table)
                .map(|t| t.column_index(col).is_some())
                .unwrap_or(false)
        };
        sq.is_uncorrelated_single_table(&own)
    });
    if uncorrelated {
        variants.extend(SUBQ_UNCORRELATED);
    }
    variants
}

fn collect_subqueries<'a>(e: &'a tqs_sql::ast::Expr, out: &mut Vec<&'a SelectStmt>) {
    use tqs_sql::ast::Expr;
    match e {
        Expr::InSubquery { expr, subquery, .. } => {
            collect_subqueries(expr, out);
            out.push(subquery);
        }
        Expr::Exists { subquery, .. } => out.push(subquery),
        Expr::Binary { left, right, .. } => {
            collect_subqueries(left, out);
            collect_subqueries(right, out);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            collect_subqueries(expr, out);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_subqueries(expr, out);
            collect_subqueries(low, out);
            collect_subqueries(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_subqueries(expr, out);
            for item in list {
                collect_subqueries(item, out);
            }
        }
        Expr::Column(_) | Expr::Literal(_) => {}
    }
}

fn xorshift(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_sql::parser::parse_stmt;
    use tqs_sql::types::{ColumnDef, ColumnType};
    use tqs_sql::value::Value;
    use tqs_storage::{Row, Table};

    fn table(name: &str, rows: usize) -> Table {
        let mut t = Table::new(
            name,
            vec![
                ColumnDef::new("k", ColumnType::Int { unsigned: false }),
                ColumnDef::new("v", ColumnType::Int { unsigned: false }),
            ],
        );
        for i in 0..rows {
            t.push_row(Row::new(vec![
                Value::Int(i as i64),
                Value::Int((i * 3) as i64),
            ]))
            .unwrap();
        }
        t
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(table("t1", 64));
        c.add_table(table("t2", 32));
        c.add_table(table("t3", 8));
        c.add_table(table("t4", 2));
        c
    }

    fn space(sql: &str, faults: &FaultSet) -> PlanSpace {
        PlanSpace::enumerate(&parse_stmt(sql).unwrap(), &catalog(), faults)
    }

    const CHAIN4: &str = "SELECT t1.k FROM t1 JOIN t2 ON t1.k = t2.k \
                          JOIN t3 ON t2.k = t3.k JOIN t4 ON t3.k = t4.k";
    const STAR3: &str = "SELECT t1.k FROM t1 JOIN t2 ON t1.k = t2.k \
                         JOIN t3 ON t1.k = t3.k WHERE t2.v > 1 AND t2.v < 9 AND t2.k > 0";

    #[test]
    fn four_table_join_yields_ten_distinct_plans() {
        let s = space(CHAIN4, &FaultSet::none());
        let mut fps: Vec<u64> = s.plans.iter().map(|p| p.fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        assert!(
            fps.len() >= 10,
            "expected >= 10 distinct plans, got {}",
            fps.len()
        );
        assert!(s.rewrite_fired.is_empty() && s.cost_fired.is_empty());
    }

    #[test]
    fn the_pick_is_the_cheapest_plan_on_pristine_builds() {
        for sql in [CHAIN4, STAR3] {
            let s = space(sql, &FaultSet::none());
            assert!(
                s.best().cost <= s.min_cost() + 1e-9,
                "pick {} > min {} for {sql}",
                s.best().cost,
                s.min_cost()
            );
        }
    }

    #[test]
    fn dp_puts_the_small_relation_first_in_a_star_join() {
        let s = space(
            "SELECT t1.k FROM t1 JOIN t2 ON t1.k = t2.k JOIN t4 ON t1.k = t4.k",
            &FaultSet::none(),
        );
        assert_eq!(
            s.best().order_bindings,
            vec!["t1", "t4", "t2"],
            "the 2-row t4 should join before the 32-row t2"
        );
    }

    #[test]
    fn chain_joins_admit_only_the_identity_order() {
        let s = space(CHAIN4, &FaultSet::none());
        for p in &s.plans {
            assert_eq!(p.order, vec![0, 1, 2], "chain ON availability: {p:?}");
        }
    }

    #[test]
    fn inverted_cost_comparison_picks_a_worse_order_and_fires() {
        let s = space(
            STAR3,
            &FaultSet::of(&[FaultKind::OptInvertedCostComparison]),
        );
        assert_eq!(s.cost_fired, vec![FaultKind::OptInvertedCostComparison]);
        assert!(
            s.best().cost > s.min_cost() + 1e-9,
            "the inverted pick should be strictly worse than the best candidate"
        );
    }

    #[test]
    fn stale_cardinality_fires_when_pruning_flips_the_ranking() {
        // STAR3's WHERE prunes t2 (32 rows) down to 4 fresh rows — below
        // t3's 8 — so stale and fresh rankings disagree.
        let s = space(
            STAR3,
            &FaultSet::of(&[FaultKind::OptStaleCardinalityAfterPruning]),
        );
        assert_eq!(
            s.cost_fired,
            vec![FaultKind::OptStaleCardinalityAfterPruning]
        );
        assert!(s.best().cost > s.min_cost() + 1e-9);
    }

    #[test]
    fn memo_collision_reissues_a_colliding_plan_hint_set() {
        let pristine = space(CHAIN4, &FaultSet::none());
        assert!(pristine.plans.iter().all(|p| p.hints == p.intended));
        let s = space(
            CHAIN4,
            &FaultSet::of(&[FaultKind::OptHintIgnoredUnderMemoCollision]),
        );
        // >= 10 plans through 8 memo buckets: a collision is guaranteed.
        let collided: Vec<&EnumeratedPlan> =
            s.plans.iter().filter(|p| p.hints != p.intended).collect();
        assert!(
            !collided.is_empty(),
            "no memo collision in {} plans",
            s.plans.len()
        );
        for p in collided {
            assert_eq!(p.fired, vec![FaultKind::OptHintIgnoredUnderMemoCollision]);
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        for faults in [FaultSet::none(), FaultSet::of(&FaultKind::OPTIMIZER)] {
            let a = space(STAR3, &faults);
            let b = space(STAR3, &faults);
            let key = |s: &PlanSpace| {
                s.plans
                    .iter()
                    .map(|p| (p.fingerprint, p.hints.label.clone()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(key(&a), key(&b));
            assert_eq!(
                tqs_sql::render::render_stmt(&a.stmt),
                tqs_sql::render::render_stmt(&b.stmt)
            );
        }
    }

    #[test]
    fn subquery_statements_gain_strategy_variants() {
        let s = space(
            "SELECT t1.k FROM t1 WHERE t1.k IN (SELECT t4.k FROM t4)",
            &FaultSet::none(),
        );
        let variants: Vec<&str> = s.plans.iter().filter_map(|p| p.subquery).collect();
        assert!(variants.contains(&"no-semijoin"), "{variants:?}");
        assert!(
            variants.contains(&"subquery-to-derived"),
            "uncorrelated single-table subquery unlocks decorrelation: {variants:?}"
        );
    }

    #[test]
    fn non_reorderable_statements_get_no_order_hint() {
        let s = space(
            "SELECT t1.k FROM t1 WHERE t1.k IN (SELECT t4.k FROM t4)",
            &FaultSet::none(),
        );
        for p in &s.plans {
            assert!(p
                .intended
                .hints
                .iter()
                .all(|h| !matches!(h, Hint::JoinOrder(_))));
        }
    }
}
