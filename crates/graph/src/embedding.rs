//! Similarity-oriented graph embeddings.
//!
//! The paper uses a GNN-based embedding ([20]) so that isomorphic or
//! structurally similar query graphs land close together in the vector
//! space. We substitute a Weisfeiler-Lehman feature-hashing embedding with
//! the same contract: deterministic, label- and structure-sensitive,
//! isomorphism-invariant, and cheap enough to embed hundreds of thousands of
//! query graphs.

use crate::graph::LabeledGraph;
use serde::{Deserialize, Serialize};

/// Embedding dimensionality.
pub const EMBED_DIM: usize = 64;

/// A fixed-size graph embedding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding(pub Vec<f32>);

impl Embedding {
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    pub fn norm(&self) -> f32 {
        self.0.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Embed a labeled graph: run `rounds` of WL label refinement and hash every
/// intermediate node signature (weighted by round) into a fixed-size bucket
/// vector, then L2-normalize.
pub fn embed_graph(g: &LabeledGraph, rounds: usize) -> Embedding {
    let mut v = vec![0f32; EMBED_DIM];
    if g.node_count() == 0 {
        return Embedding(v);
    }
    let mut labels: Vec<String> = g.nodes.iter().map(|n| n.label.clone()).collect();
    for round in 0..=rounds {
        for l in &labels {
            let h = hash_str(&format!("r{round}:{l}")) as usize % EMBED_DIM;
            v[h] += 1.0 / (1.0 + round as f32);
        }
        // also hash edge signatures so edge labels (join types, operator
        // roles) shape the embedding
        for e in &g.edges {
            let sig = format!("r{round}:e:{}:{}:{}", e.label, labels[e.a], labels[e.b]);
            let sig_rev = format!("r{round}:e:{}:{}:{}", e.label, labels[e.b], labels[e.a]);
            let h = (hash_str(&sig) ^ hash_str(&sig_rev)) as usize % EMBED_DIM;
            v[h] += 1.0 / (1.0 + round as f32);
        }
        if round == rounds {
            break;
        }
        // refine
        let mut next = Vec::with_capacity(labels.len());
        for i in 0..g.node_count() {
            let mut neigh: Vec<String> = g
                .neighbors(i)
                .into_iter()
                .map(|(j, el)| format!("{el}~{}", labels[j]))
                .collect();
            neigh.sort();
            next.push(format!("{}({})", labels[i], neigh.join(",")));
        }
        labels = next;
    }
    // L2 normalize
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    Embedding(v)
}

/// Cosine similarity between two embeddings (already normalized → dot).
pub fn cosine_similarity(a: &Embedding, b: &Embedding) -> f32 {
    let dot: f32 = a.0.iter().zip(&b.0).map(|(x, y)| x * y).sum();
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(labels: &[&str], joins: &[&str]) -> LabeledGraph {
        let mut g = LabeledGraph::default();
        let ids: Vec<usize> = labels.iter().map(|l| g.add_node(*l)).collect();
        for (i, j) in joins.iter().enumerate() {
            g.add_edge(ids[i], ids[i + 1], *j);
        }
        g
    }

    #[test]
    fn embedding_is_deterministic_and_normalized() {
        let g = chain(&["table", "table", "int"], &["inner join", "filter"]);
        let a = embed_graph(&g, 2);
        let b = embed_graph(&g, 2);
        assert_eq!(a, b);
        assert!((a.norm() - 1.0).abs() < 1e-5);
        assert_eq!(a.dim(), EMBED_DIM);
    }

    #[test]
    fn isomorphic_graphs_have_identical_embeddings() {
        let a = chain(&["table", "table", "varchar"], &["semi join", "filter"]);
        let mut b = LabeledGraph::default();
        let x = b.add_node("varchar");
        let y = b.add_node("table");
        let z = b.add_node("table");
        b.add_edge(y, z, "semi join");
        b.add_edge(z, x, "filter");
        // wait: structure must mirror `a`: table-table semi join, second table
        // connected to varchar via filter — rebuild to match exactly
        let mut b2 = LabeledGraph::default();
        let t1 = b2.add_node("table");
        let v = b2.add_node("varchar");
        let t0 = b2.add_node("table");
        b2.add_edge(t0, t1, "semi join");
        b2.add_edge(t1, v, "filter");
        let ea = embed_graph(&a, 2);
        let eb = embed_graph(&b2, 2);
        assert!(cosine_similarity(&ea, &eb) > 0.999);
    }

    #[test]
    fn different_structures_are_less_similar() {
        let a = chain(&["table", "table"], &["inner join"]);
        let b = chain(&["table", "table"], &["anti join"]);
        let c = chain(&["table", "table", "table"], &["inner join", "inner join"]);
        let sim_ab = cosine_similarity(&embed_graph(&a, 2), &embed_graph(&b, 2));
        let sim_ac = cosine_similarity(&embed_graph(&a, 2), &embed_graph(&c, 2));
        let self_sim = cosine_similarity(&embed_graph(&a, 2), &embed_graph(&a, 2));
        assert!(self_sim > 0.999);
        assert!(sim_ab < self_sim);
        assert!(sim_ac < self_sim);
    }

    #[test]
    fn empty_graph_embeds_to_zero() {
        let g = LabeledGraph::default();
        let e = embed_graph(&g, 2);
        assert_eq!(e.norm(), 0.0);
        assert_eq!(cosine_similarity(&e, &e), 0.0);
    }
}
