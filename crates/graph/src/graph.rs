//! Labeled graphs, canonical hashing and a small sub-graph isomorphism
//! checker. Query graphs and the plan-iterative graph are both instances of
//! [`LabeledGraph`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A node with a string label (e.g. `"table"`, `"int"`, `"varchar"`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    pub label: String,
}

/// An undirected labeled edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    pub a: usize,
    pub b: usize,
    pub label: String,
}

/// An undirected graph with labeled nodes and edges.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledGraph {
    pub nodes: Vec<Node>,
    pub edges: Vec<Edge>,
}

impl LabeledGraph {
    pub fn add_node(&mut self, label: impl Into<String>) -> usize {
        self.nodes.push(Node {
            label: label.into(),
        });
        self.nodes.len() - 1
    }

    pub fn add_edge(&mut self, a: usize, b: usize, label: impl Into<String>) {
        assert!(a < self.nodes.len() && b < self.nodes.len());
        self.edges.push(Edge {
            a,
            b,
            label: label.into(),
        });
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edges incident to `n` as `(neighbor, edge label)`.
    pub fn neighbors(&self, n: usize) -> Vec<(usize, &str)> {
        let mut out = Vec::new();
        for e in &self.edges {
            if e.a == n {
                out.push((e.b, e.label.as_str()));
            } else if e.b == n {
                out.push((e.a, e.label.as_str()));
            }
        }
        out
    }

    pub fn degree(&self, n: usize) -> usize {
        self.neighbors(n).len()
    }

    /// Weisfeiler-Lehman style canonical form: iteratively refine node
    /// signatures from neighbor labels, then serialize the multiset. Two
    /// isomorphic graphs always share a canonical form; collisions between
    /// non-isomorphic graphs are possible in principle but do not occur for
    /// the small, richly-labeled query graphs TQS generates.
    pub fn canonical_form(&self, rounds: usize) -> String {
        let mut labels: Vec<String> = self.nodes.iter().map(|n| n.label.clone()).collect();
        for _ in 0..rounds {
            let mut next = Vec::with_capacity(labels.len());
            for i in 0..self.nodes.len() {
                let mut neigh: Vec<String> = self
                    .neighbors(i)
                    .into_iter()
                    .map(|(j, el)| format!("{el}~{}", labels[j]))
                    .collect();
                neigh.sort();
                next.push(format!("{}({})", labels[i], neigh.join(",")));
            }
            labels = next;
        }
        let mut sorted = labels;
        sorted.sort();
        let mut edge_labels: Vec<&str> = self.edges.iter().map(|e| e.label.as_str()).collect();
        edge_labels.sort();
        format!(
            "{}|{}|{}",
            self.nodes.len(),
            sorted.join(";"),
            edge_labels.join(",")
        )
    }

    /// Exact graph isomorphism (both directions of sub-graph containment with
    /// equal node counts), via backtracking on label-compatible assignments.
    /// Only intended for the small query graphs (≤ ~20 nodes).
    pub fn isomorphic_to(&self, other: &LabeledGraph) -> bool {
        if self.nodes.len() != other.nodes.len() || self.edges.len() != other.edges.len() {
            return false;
        }
        // quick label-multiset check
        fn multiset(g: &LabeledGraph) -> BTreeMap<String, usize> {
            let mut m: BTreeMap<String, usize> = BTreeMap::new();
            for n in &g.nodes {
                *m.entry(n.label.clone()).or_default() += 1;
            }
            m
        }
        if multiset(self) != multiset(other) {
            return false;
        }
        let mut mapping: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut used = vec![false; other.nodes.len()];
        self.backtrack(other, 0, &mut mapping, &mut used)
    }

    fn backtrack(
        &self,
        other: &LabeledGraph,
        i: usize,
        mapping: &mut Vec<Option<usize>>,
        used: &mut Vec<bool>,
    ) -> bool {
        if i == self.nodes.len() {
            return true;
        }
        for j in 0..other.nodes.len() {
            if used[j] || self.nodes[i].label != other.nodes[j].label {
                continue;
            }
            if self.degree(i) != other.degree(j) {
                continue;
            }
            // check edges from i to already-mapped nodes
            let consistent = self.edges.iter().all(|e| {
                let (x, y) = (e.a, e.b);
                let involved = (x == i && mapping[y].is_some()) || (y == i && mapping[x].is_some());
                let self_loop = x == i && y == i;
                if !(involved || self_loop) {
                    return true;
                }
                let (mi, mo) = if x == i { (y, j) } else { (x, j) };
                let mapped = mapping[mi].unwrap_or(mo);
                other.edges.iter().any(|oe| {
                    oe.label == e.label
                        && ((oe.a == mo && oe.b == mapped) || (oe.b == mo && oe.a == mapped))
                })
            });
            if !consistent {
                continue;
            }
            mapping[i] = Some(j);
            used[j] = true;
            if self.backtrack(other, i + 1, mapping, used) {
                return true;
            }
            mapping[i] = None;
            used[j] = false;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(labels: &[&str], edge_labels: &[&str]) -> LabeledGraph {
        let mut g = LabeledGraph::default();
        let ids: Vec<usize> = labels.iter().map(|l| g.add_node(*l)).collect();
        for (i, el) in edge_labels.iter().enumerate() {
            g.add_edge(ids[i], ids[i + 1], *el);
        }
        g
    }

    #[test]
    fn neighbors_and_degree() {
        let g = path_graph(&["table", "table", "int"], &["inner join", "filter"]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(0), vec![(1, "inner join")]);
    }

    #[test]
    fn canonical_form_is_permutation_invariant() {
        let a = path_graph(&["table", "table", "int"], &["inner join", "filter"]);
        // same structure, nodes created in a different order
        let mut b = LabeledGraph::default();
        let x = b.add_node("int");
        let y = b.add_node("table");
        let z = b.add_node("table");
        b.add_edge(z, y, "inner join");
        b.add_edge(y, x, "filter");
        assert_eq!(a.canonical_form(3), b.canonical_form(3));
        // a different edge label changes the form
        let c = path_graph(&["table", "table", "int"], &["left outer join", "filter"]);
        assert_ne!(a.canonical_form(3), c.canonical_form(3));
    }

    #[test]
    fn isomorphism_detects_equal_and_different_structures() {
        let a = path_graph(&["table", "table", "int"], &["inner join", "filter"]);
        let mut b = LabeledGraph::default();
        let x = b.add_node("table");
        let y = b.add_node("int");
        let z = b.add_node("table");
        b.add_edge(z, x, "inner join");
        b.add_edge(x, y, "filter");
        assert!(a.isomorphic_to(&b));
        assert!(b.isomorphic_to(&a));
        let c = path_graph(&["table", "table", "int"], &["anti join", "filter"]);
        assert!(!a.isomorphic_to(&c));
        let d = path_graph(&["table", "table"], &["inner join"]);
        assert!(!a.isomorphic_to(&d));
    }

    #[test]
    fn isomorphism_respects_node_labels() {
        let a = path_graph(&["table", "int"], &["filter"]);
        let b = path_graph(&["table", "varchar"], &["filter"]);
        assert!(!a.isomorphic_to(&b));
    }
}
