//! # tqs-graph
//!
//! Graph substrate for KQE (Knowledge-guided Query space Exploration):
//!
//! * [`graph`] — labeled graphs, canonical forms and exact isomorphism checks.
//! * [`plangraph`] — the plan-iterative graph (Figure 6) and query graphs.
//! * [`embedding`] — Weisfeiler-Lehman feature-hashing embeddings (the GNN
//!   substitute, see DESIGN.md).
//! * [`index`] — the embedding-based graph index `GI` with kNN search and the
//!   coverage score of Equation 2.

pub mod embedding;
pub mod graph;
pub mod index;
pub mod plangraph;

pub use embedding::{cosine_similarity, embed_graph, Embedding, EMBED_DIM};
pub use graph::{Edge, LabeledGraph, Node};
pub use index::{GraphIndex, IndexedGraph};
pub use plangraph::{
    graph_fingerprint, plan_fingerprint, query_graph, query_graph_with_subqueries,
    PlanIterativeGraph, SchemaDesc,
};

#[cfg(test)]
mod proptests {
    use crate::embedding::{cosine_similarity, embed_graph};
    use crate::graph::LabeledGraph;
    use proptest::prelude::*;

    fn arb_graph() -> impl Strategy<Value = LabeledGraph> {
        (
            2usize..7,
            proptest::collection::vec((0usize..6, 0usize..6, 0usize..7), 1..10),
        )
            .prop_map(|(n, edges)| {
                let labels = ["table", "int", "varchar", "decimal"];
                let joins = [
                    "inner join",
                    "left outer join",
                    "anti join",
                    "semi join",
                    "filter",
                    "projection",
                    "join column",
                ];
                let mut g = LabeledGraph::default();
                for i in 0..n {
                    g.add_node(labels[i % labels.len()]);
                }
                for (a, b, l) in edges {
                    if a < n && b < n && a != b {
                        g.add_edge(a, b, joins[l]);
                    }
                }
                g
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Relabeling node ids (permutation) never changes the canonical form
        /// or the embedding.
        #[test]
        fn canonical_form_and_embedding_are_permutation_invariant(g in arb_graph()) {
            // reverse the node order
            let n = g.node_count();
            let mut perm = LabeledGraph::default();
            for i in (0..n).rev() {
                perm.add_node(g.nodes[i].label.clone());
            }
            for e in &g.edges {
                perm.add_edge(n - 1 - e.a, n - 1 - e.b, e.label.clone());
            }
            prop_assert_eq!(g.canonical_form(3), perm.canonical_form(3));
            let sim = cosine_similarity(&embed_graph(&g, 2), &embed_graph(&perm, 2));
            prop_assert!(sim > 0.999, "sim = {sim}");
        }

        /// Self-similarity is maximal.
        #[test]
        fn self_similarity_is_one(g in arb_graph()) {
            let e = embed_graph(&g, 2);
            if e.norm() > 0.0 {
                prop_assert!(cosine_similarity(&e, &e) > 0.999);
            }
        }
    }
}
