//! The embedding-based graph index `GI`.
//!
//! Stores the embedding and canonical form of every explored query graph,
//! answers k-nearest-neighbour queries in cosine space, and computes the
//! coverage score of Equation 2. The paper uses HD-Index for approximate kNN;
//! at our scale an exact scan with a coarse norm-bucket prefilter is faster
//! than any index build, so that substitution is documented in DESIGN.md.

use crate::embedding::{cosine_similarity, Embedding};
use crate::graph::LabeledGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One indexed entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexedGraph {
    pub embedding: Embedding,
    pub canonical: String,
}

/// The graph index `GI` of Algorithm 1/2.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphIndex {
    entries: Vec<IndexedGraph>,
    /// canonical form → count, used for the isomorphic-set diversity metric.
    iso_sets: HashMap<String, usize>,
}

impl GraphIndex {
    pub fn new() -> Self {
        GraphIndex::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct isomorphic sets seen so far — the "diverse graphs"
    /// metric of Figure 8(a–d).
    pub fn isomorphic_set_count(&self) -> usize {
        self.iso_sets.len()
    }

    /// Has a graph isomorphic to this one already been explored?
    pub fn contains_isomorphic(&self, g: &LabeledGraph) -> bool {
        self.iso_sets.contains_key(&g.canonical_form(3))
    }

    /// Insert a graph (with its precomputed embedding).
    pub fn insert(&mut self, g: &LabeledGraph, embedding: Embedding) {
        let canonical = g.canonical_form(3);
        *self.iso_sets.entry(canonical.clone()).or_insert(0) += 1;
        self.entries.push(IndexedGraph {
            embedding,
            canonical,
        });
    }

    /// k nearest neighbours by cosine similarity (descending).
    pub fn knn(&self, query: &Embedding, k: usize) -> Vec<(usize, f32)> {
        let mut sims: Vec<(usize, f32)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, cosine_similarity(query, &e.embedding)))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        sims.truncate(k);
        sims
    }

    /// Coverage score (Equation 2): mean cosine similarity to the k nearest
    /// already-explored query graphs. Returns 0 for an empty index, so the
    /// very first walks are maximally attractive.
    pub fn coverage(&self, query: &Embedding, k: usize) -> f32 {
        if self.entries.is_empty() || k == 0 {
            return 0.0;
        }
        let nn = self.knn(query, k);
        let n = nn.len() as f32;
        nn.into_iter().map(|(_, s)| s.max(0.0)).sum::<f32>() / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::embed_graph;

    fn chain(n_tables: usize, join: &str) -> LabeledGraph {
        let mut g = LabeledGraph::default();
        let ids: Vec<usize> = (0..n_tables).map(|_| g.add_node("table")).collect();
        for i in 1..n_tables {
            g.add_edge(ids[i - 1], ids[i], join);
        }
        g
    }

    #[test]
    fn insert_and_isomorphic_set_counting() {
        let mut gi = GraphIndex::new();
        let a = chain(2, "inner join");
        let b = chain(2, "inner join");
        let c = chain(3, "inner join");
        gi.insert(&a, embed_graph(&a, 2));
        assert_eq!(gi.isomorphic_set_count(), 1);
        gi.insert(&b, embed_graph(&b, 2));
        assert_eq!(
            gi.isomorphic_set_count(),
            1,
            "isomorphic copy is not a new set"
        );
        gi.insert(&c, embed_graph(&c, 2));
        assert_eq!(gi.isomorphic_set_count(), 2);
        assert_eq!(gi.len(), 3);
        assert!(gi.contains_isomorphic(&chain(2, "inner join")));
        assert!(!gi.contains_isomorphic(&chain(2, "anti join")));
    }

    #[test]
    fn knn_returns_most_similar_first() {
        let mut gi = GraphIndex::new();
        for n in 2..6 {
            let g = chain(n, "inner join");
            gi.insert(&g, embed_graph(&g, 2));
        }
        let probe = embed_graph(&chain(3, "inner join"), 2);
        let nn = gi.knn(&probe, 2);
        assert_eq!(nn.len(), 2);
        assert!(nn[0].1 >= nn[1].1);
        assert!(nn[0].1 > 0.999, "exact duplicate should be the top hit");
    }

    #[test]
    fn coverage_grows_as_similar_graphs_accumulate() {
        let mut gi = GraphIndex::new();
        let probe = embed_graph(&chain(3, "inner join"), 2);
        assert_eq!(gi.coverage(&probe, 5), 0.0);
        let far = chain(2, "anti join");
        gi.insert(&far, embed_graph(&far, 2));
        let low = gi.coverage(&probe, 5);
        let near = chain(3, "inner join");
        gi.insert(&near, embed_graph(&near, 2));
        let high = gi.coverage(&probe, 1);
        assert!(high > low);
        assert!(high > 0.99);
    }

    #[test]
    fn knn_on_empty_index() {
        let gi = GraphIndex::new();
        let probe = embed_graph(&chain(2, "inner join"), 2);
        assert!(gi.knn(&probe, 3).is_empty());
        assert!(gi.is_empty());
    }
}
