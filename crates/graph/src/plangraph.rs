//! The plan-iterative graph (§4, Figure 6) and query graphs.
//!
//! The plan-iterative graph extends the schema graph: each pair of joinable
//! tables is connected by one edge per supported join type; each column is
//! connected to its table by one edge per relational operator that can be
//! applied to it (join column, filter, projection, group by, count). Every
//! generated query maps to a sub-graph of this graph.

use crate::graph::LabeledGraph;
use serde::{Deserialize, Serialize};
use tqs_sql::ast::{JoinType, SelectItem, SelectStmt};

/// Operator labels on table–column edges (Figure 6).
pub const COLUMN_OPS: [&str; 5] = ["join column", "filter", "projection", "group by", "count"];

/// A schema description sufficient to build the plan-iterative graph,
/// decoupled from the schema crate: tables, their typed columns, and the
/// joinable (table, table, column) triples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchemaDesc {
    pub tables: Vec<String>,
    /// (table, column, type label, is key)
    pub columns: Vec<(String, String, String, bool)>,
    /// (left table, right table, join column)
    pub join_edges: Vec<(String, String, String)>,
}

impl SchemaDesc {
    pub fn columns_of(&self, table: &str) -> Vec<&(String, String, String, bool)> {
        self.columns
            .iter()
            .filter(|(t, _, _, _)| t.eq_ignore_ascii_case(table))
            .collect()
    }

    pub fn type_of(&self, table: &str, column: &str) -> Option<&str> {
        self.columns
            .iter()
            .find(|(t, c, _, _)| t.eq_ignore_ascii_case(table) && c.eq_ignore_ascii_case(column))
            .map(|(_, _, ty, _)| ty.as_str())
    }

    /// Tables adjacent to `table` with the join column.
    pub fn neighbors(&self, table: &str) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (l, r, c) in &self.join_edges {
            if l.eq_ignore_ascii_case(table) {
                out.push((r.clone(), c.clone()));
            } else if r.eq_ignore_ascii_case(table) {
                out.push((l.clone(), c.clone()));
            }
        }
        out
    }
}

/// The plan-iterative graph `G`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanIterativeGraph {
    pub schema: SchemaDesc,
    pub graph: LabeledGraph,
    /// node index of each table
    pub table_nodes: Vec<(String, usize)>,
    /// node index of each (table, column)
    pub column_nodes: Vec<(String, String, usize)>,
}

impl PlanIterativeGraph {
    pub fn build(schema: SchemaDesc) -> PlanIterativeGraph {
        let mut graph = LabeledGraph::default();
        let mut table_nodes = Vec::new();
        let mut column_nodes = Vec::new();
        for t in &schema.tables {
            let id = graph.add_node("table");
            table_nodes.push((t.clone(), id));
        }
        let table_id = |name: &str, nodes: &Vec<(String, usize)>| {
            nodes
                .iter()
                .find(|(t, _)| t.eq_ignore_ascii_case(name))
                .map(|(_, i)| *i)
        };
        for (t, c, ty, _key) in &schema.columns {
            let id = graph.add_node(ty.clone());
            column_nodes.push((t.clone(), c.clone(), id));
            if let Some(ti) = table_id(t, &table_nodes) {
                for op in COLUMN_OPS {
                    graph.add_edge(ti, id, op);
                }
            }
        }
        for (l, r, _col) in &schema.join_edges {
            if let (Some(li), Some(ri)) = (table_id(l, &table_nodes), table_id(r, &table_nodes)) {
                for jt in JoinType::ALL {
                    graph.add_edge(li, ri, jt.graph_label());
                }
            }
        }
        PlanIterativeGraph {
            schema,
            graph,
            table_nodes,
            column_nodes,
        }
    }

    /// Total number of vertices (tables + columns).
    pub fn vertex_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of table–table edges (m join types per joinable pair).
    pub fn join_edge_count(&self) -> usize {
        self.schema.join_edges.len() * JoinType::ALL.len()
    }
}

/// Build the query graph of one generated statement: one `table`-labeled node
/// per FROM table, join edges labeled with the join type, and column nodes
/// (labeled with the column type) attached by the operator role they play in
/// the query.
pub fn query_graph(stmt: &SelectStmt, schema: &SchemaDesc) -> LabeledGraph {
    let mut g = LabeledGraph::default();
    let mut table_nodes: Vec<(String, usize)> = Vec::new();
    for tref in stmt.from.tables() {
        let id = g.add_node("table");
        table_nodes.push((tref.binding().to_lowercase(), id));
    }
    let node_of = |binding: &str, nodes: &Vec<(String, usize)>| {
        nodes
            .iter()
            .find(|(b, _)| b == &binding.to_lowercase())
            .map(|(_, i)| *i)
    };
    // join edges
    let base_binding = stmt.from.base.binding().to_lowercase();
    let mut prev = base_binding;
    for j in &stmt.from.joins {
        let right = j.table.binding().to_lowercase();
        // connect to the table its ON condition references, defaulting to the
        // previously joined table
        let mut left = prev.clone();
        if let Some(on) = &j.on {
            for c in on.column_refs() {
                if let Some(t) = &c.table {
                    let t = t.to_lowercase();
                    if t != right && node_of(&t, &table_nodes).is_some() {
                        left = t;
                        break;
                    }
                }
            }
        }
        if let (Some(a), Some(b)) = (node_of(&left, &table_nodes), node_of(&right, &table_nodes)) {
            g.add_edge(a, b, j.join_type.graph_label());
        }
        prev = right;
    }
    // column nodes per role
    let add_column = |g: &mut LabeledGraph, binding: &str, column: &str, role: &str| {
        let ty = lookup_type(stmt, schema, binding, column);
        let id = g.add_node(ty);
        if let Some(t) = node_of(binding, &table_nodes) {
            g.add_edge(t, id, role);
        }
    };
    // join columns from ON clauses
    for j in &stmt.from.joins {
        if let Some(on) = &j.on {
            for c in on.column_refs() {
                if let Some(t) = &c.table {
                    add_column(&mut g, t, &c.column, "join column");
                }
            }
        }
    }
    // filters from WHERE
    if let Some(w) = &stmt.where_clause {
        for c in w.column_refs() {
            if let Some(t) = &c.table {
                add_column(&mut g, t, &c.column, "filter");
            }
        }
    }
    // projections / aggregates
    for item in &stmt.items {
        match item {
            SelectItem::Expr { expr, .. } => {
                for c in expr.column_refs() {
                    if let Some(t) = &c.table {
                        add_column(&mut g, t, &c.column, "projection");
                    }
                }
            }
            SelectItem::Aggregate { arg, .. } => {
                if let Some(e) = arg {
                    for c in e.column_refs() {
                        if let Some(t) = &c.table {
                            add_column(&mut g, t, &c.column, "count");
                        }
                    }
                }
            }
            SelectItem::Wildcard => {}
        }
    }
    // group by
    for e in &stmt.group_by {
        for c in e.column_refs() {
            if let Some(t) = &c.table {
                add_column(&mut g, t, &c.column, "group by");
            }
        }
    }
    g
}

fn lookup_type(stmt: &SelectStmt, schema: &SchemaDesc, binding: &str, column: &str) -> String {
    // resolve binding → underlying table name
    let table = stmt
        .from
        .tables()
        .iter()
        .find(|t| t.binding().eq_ignore_ascii_case(binding))
        .map(|t| t.table.clone())
        .unwrap_or_else(|| binding.to_string());
    schema
        .type_of(&table, column)
        .unwrap_or("unknown")
        .to_string()
}

/// A stable 64-bit fingerprint of a labeled graph, derived from its
/// Weisfeiler-Lehman canonical form: isomorphic graphs always share a
/// fingerprint, and the richly-labeled query graphs TQS generates make
/// collisions between structurally different queries vanishingly rare.
///
/// The hash is FNV-1a over the canonical string — deliberately *not*
/// [`std::hash::DefaultHasher`], whose output is not specified to be stable
/// across Rust releases. Campaign corpora persist these fingerprints to disk
/// and must reload them unchanged years later.
pub fn graph_fingerprint(g: &LabeledGraph) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1_0000_0000_01b3;
    let mut h = FNV_OFFSET;
    for byte in g.canonical_form(3).as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The canonical plan-graph fingerprint of one statement: the
/// [`graph_fingerprint`] of its query graph (subquery marker included).
/// Two statements that map to isomorphic sub-graphs of the plan-iterative
/// graph — the same join structure over the same column types and operator
/// roles — share a fingerprint, which is exactly the granularity at which a
/// fleet-scale hunt wants to deduplicate bug reports: thousands of raw
/// divergences collapse to one class per plan shape.
pub fn plan_fingerprint(stmt: &SelectStmt, schema: &SchemaDesc) -> u64 {
    graph_fingerprint(&query_graph_with_subqueries(stmt, schema))
}

/// Convenience: does the query contain a subquery? Subqueries add a
/// `subquery`-labeled node so structurally different queries stay
/// distinguishable.
pub fn query_graph_with_subqueries(stmt: &SelectStmt, schema: &SchemaDesc) -> LabeledGraph {
    let mut g = query_graph(stmt, schema);
    if stmt.has_subquery() {
        let n = g.add_node("subquery");
        if g.node_count() > 1 {
            g.add_edge(0, n, "filter");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_sql::parser::parse_stmt;

    fn schema() -> SchemaDesc {
        SchemaDesc {
            tables: vec!["T1".into(), "T3".into(), "T4".into()],
            columns: vec![
                ("T1".into(), "orderId".into(), "varchar".into(), true),
                ("T1".into(), "goodsId".into(), "int".into(), false),
                ("T1".into(), "userId".into(), "varchar".into(), false),
                ("T3".into(), "goodsId".into(), "int".into(), true),
                ("T3".into(), "goodsName".into(), "varchar".into(), false),
                ("T4".into(), "goodsName".into(), "varchar".into(), true),
                ("T4".into(), "price".into(), "decimal".into(), false),
            ],
            join_edges: vec![
                ("T1".into(), "T3".into(), "goodsId".into()),
                ("T3".into(), "T4".into(), "goodsName".into()),
            ],
        }
    }

    #[test]
    fn plan_iterative_graph_has_m_edges_per_join_pair() {
        let g = PlanIterativeGraph::build(schema());
        assert_eq!(g.table_nodes.len(), 3);
        assert_eq!(g.column_nodes.len(), 7);
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.join_edge_count(), 2 * 7);
        // column edges: 5 operator edges per column
        assert_eq!(g.graph.edge_count(), 2 * 7 + 7 * 5);
    }

    #[test]
    fn query_graph_structure_reflects_joins_and_roles() {
        let stmt = parse_stmt(
            "SELECT T4.price FROM T1 INNER JOIN T3 ON T1.goodsId = T3.goodsId \
             ANTI JOIN T4 ON T3.goodsName = T4.goodsName WHERE T1.userId = 'str1'",
        )
        .unwrap();
        let g = query_graph(&stmt, &schema());
        // 3 table nodes + 4 join-column nodes + 1 filter node + 1 projection
        assert_eq!(g.node_count(), 9);
        let labels: Vec<&str> = g.edges.iter().map(|e| e.label.as_str()).collect();
        assert!(labels.contains(&"inner join"));
        assert!(labels.contains(&"anti join"));
        assert!(labels.contains(&"filter"));
        assert!(labels.contains(&"projection"));
        assert!(labels.contains(&"join column"));
    }

    #[test]
    fn isomorphic_queries_share_canonical_form() {
        let s = schema();
        let a = parse_stmt("SELECT T3.goodsName FROM T1 INNER JOIN T3 ON T1.goodsId = T3.goodsId")
            .unwrap();
        // different column of the same types / same structure
        let b = parse_stmt("SELECT T3.goodsName FROM T1 INNER JOIN T3 ON T3.goodsId = T1.goodsId")
            .unwrap();
        assert_eq!(
            query_graph(&a, &s).canonical_form(3),
            query_graph(&b, &s).canonical_form(3)
        );
        // a different join type is a different isomorphic set
        let c =
            parse_stmt("SELECT T3.goodsName FROM T1 LEFT OUTER JOIN T3 ON T1.goodsId = T3.goodsId")
                .unwrap();
        assert_ne!(
            query_graph(&a, &s).canonical_form(3),
            query_graph(&c, &s).canonical_form(3)
        );
    }

    #[test]
    fn subquery_marker_changes_structure() {
        let s = schema();
        let a = parse_stmt("SELECT T1.orderId FROM T1 WHERE T1.goodsId = 1").unwrap();
        let b =
            parse_stmt("SELECT T1.orderId FROM T1 WHERE T1.goodsId IN (SELECT T3.goodsId FROM T3)")
                .unwrap();
        assert_ne!(
            query_graph_with_subqueries(&a, &s).canonical_form(3),
            query_graph_with_subqueries(&b, &s).canonical_form(3)
        );
    }

    #[test]
    fn plan_fingerprint_tracks_canonical_form() {
        let s = schema();
        let a = parse_stmt("SELECT T3.goodsName FROM T1 INNER JOIN T3 ON T1.goodsId = T3.goodsId")
            .unwrap();
        let b = parse_stmt("SELECT T3.goodsName FROM T1 INNER JOIN T3 ON T3.goodsId = T1.goodsId")
            .unwrap();
        let c =
            parse_stmt("SELECT T3.goodsName FROM T1 LEFT OUTER JOIN T3 ON T1.goodsId = T3.goodsId")
                .unwrap();
        // Isomorphic queries collapse to one fingerprint; a different join
        // type is a different bug class.
        assert_eq!(plan_fingerprint(&a, &s), plan_fingerprint(&b, &s));
        assert_ne!(plan_fingerprint(&a, &s), plan_fingerprint(&c, &s));
    }

    #[test]
    fn graph_fingerprint_is_the_documented_fnv1a() {
        // Pin the exact hash of a known canonical form so corpora persisted
        // by older builds keep deduplicating correctly against newer ones.
        let mut g = LabeledGraph::default();
        g.add_node("table");
        let expected = {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in g.canonical_form(3).as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            h
        };
        assert_eq!(graph_fingerprint(&g), expected);
        assert_ne!(graph_fingerprint(&g), 0);
    }

    #[test]
    fn schema_desc_lookups() {
        let s = schema();
        assert_eq!(s.type_of("T4", "price"), Some("decimal"));
        assert_eq!(s.type_of("T4", "nope"), None);
        assert_eq!(s.columns_of("T3").len(), 2);
        let n = s.neighbors("T3");
        assert_eq!(n.len(), 2);
    }
}
