//! Physical operator execution with fault interception points.
//!
//! Every join algorithm is implemented correctly; the wrong behaviours only
//! appear when a [`FaultKind`](crate::faults::FaultKind) is both enabled in
//! the profile and triggered by the current execution path *and* the data
//! actually hits the corner case. Each interception point records which
//! faults fired so the benchmark harness can classify detected bugs by root
//! cause.

use crate::faults::{FaultKind, FaultSet, TriggerContext};
use crate::plan::{JoinAlgo, PhysicalJoin};
use std::collections::HashMap;
use std::time::Instant;
use tqs_sql::ast::{BinOp, ColumnRef, Expr, JoinType};
use tqs_sql::eval::{eval_predicate, ColumnResolver, NoSubqueries, SliceRow};
use tqs_sql::hints::SemiJoinStrategy;
use tqs_sql::value::{sql_compare, KeyBuf, SqlCmp, Value};
use tqs_storage::Table;
use tqs_telemetry::QueryProfile;

/// An intermediate relation: bound columns plus rows.
#[derive(Debug, Clone, Default)]
pub struct Rel {
    /// (binding, column name) per output column.
    pub cols: Vec<(String, String)>,
    pub rows: Vec<Vec<Value>>,
}

impl Rel {
    pub fn scan(table: &Table, binding: &str) -> Rel {
        Rel {
            cols: table
                .columns
                .iter()
                .map(|c| (binding.to_string(), c.name.clone()))
                .collect(),
            rows: table.rows.iter().map(|r| r.values.clone()).collect(),
        }
    }

    /// Scan only the columns the statement can observe (see
    /// [`ColumnPruner`]). Row count and row order are those of the full
    /// scan; only unreferenced column values are skipped, so every
    /// downstream operator — joins, faults, filters, projection — sees
    /// bit-identical data on the columns that exist.
    pub fn scan_pruned(table: &Table, binding: &str, pruner: &ColumnPruner) -> Rel {
        let keep = pruner.keep_indices(table, binding);
        if keep.len() == table.columns.len() {
            return Rel::scan(table, binding);
        }
        Rel {
            cols: keep
                .iter()
                .map(|&i| (binding.to_string(), table.columns[i].name.clone()))
                .collect(),
            rows: table
                .rows
                .iter()
                .map(|r| keep.iter().map(|&i| r.values[i].clone()).collect())
                .collect(),
        }
    }

    pub fn width(&self) -> usize {
        self.cols.len()
    }

    pub fn bindings(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for (b, _) in &self.cols {
            if !out.contains(&b.as_str()) {
                out.push(b);
            }
        }
        out
    }

    pub fn col_index(&self, binding: Option<&str>, col: &str) -> Option<usize> {
        self.cols.iter().position(|(b, c)| {
            c.eq_ignore_ascii_case(col)
                && binding.map(|q| q.eq_ignore_ascii_case(b)).unwrap_or(true)
        })
    }

    /// Allocation-free resolver for one row, consumable by the reference
    /// evaluator — borrows the relation's column metadata and the row slice
    /// instead of cloning both into an owned scope.
    pub fn resolver<'a>(&'a self, row: &'a [Value]) -> SliceRow<'a> {
        SliceRow::new(&self.cols, row)
    }
}

/// Plan-time column pruning: which `(binding, column)` pairs a statement can
/// observe, resolved once per execution so scans stop materializing values
/// no operator will ever read. A cross-join chain that only projects one
/// column used to clone every column of every table through every
/// intermediate relation.
///
/// Conservative by construction: a `SELECT *` disables pruning entirely, a
/// bare (unqualified) reference keeps that column on *every* binding, and
/// references inside correlated subqueries are collected too (deep walk).
/// Pruned execution is therefore observation-equivalent: row counts, row
/// order, and every referencable value — including every fault's observable
/// effect — are unchanged.
#[derive(Debug)]
pub struct ColumnPruner {
    /// `SELECT *` present: keep everything.
    wildcard: bool,
    /// Lower-cased `(binding, column)` pairs referenced with a qualifier.
    qualified: std::collections::HashSet<(String, String)>,
    /// Lower-cased bare column names (kept on every binding).
    bare: std::collections::HashSet<String>,
}

impl ColumnPruner {
    pub fn new(stmt: &tqs_sql::ast::SelectStmt) -> ColumnPruner {
        let wildcard = stmt
            .items
            .iter()
            .any(|i| matches!(i, tqs_sql::ast::SelectItem::Wildcard));
        let mut refs = Vec::new();
        stmt.collect_column_refs_deep(&mut refs);
        let mut qualified = std::collections::HashSet::new();
        let mut bare = std::collections::HashSet::new();
        for c in refs {
            match &c.table {
                Some(t) => {
                    qualified.insert((t.to_lowercase(), c.column.to_lowercase()));
                }
                None => {
                    bare.insert(c.column.to_lowercase());
                }
            }
        }
        ColumnPruner {
            wildcard,
            qualified,
            bare,
        }
    }

    /// Must `column` of `binding` stay materialized?
    pub fn keep(&self, binding: &str, column: &str) -> bool {
        if self.wildcard {
            return true;
        }
        let col = column.to_lowercase();
        self.bare.contains(&col) || self.qualified.contains(&(binding.to_lowercase(), col))
    }

    /// The column indices of `table` a pruned scan under `binding` must
    /// materialize. Never empty: a relation that keeps zero columns would
    /// lose its row count (the columnar engine derives `len()` from its
    /// first column), so an entirely unreferenced table — e.g. the pure
    /// cardinality factor of a `CROSS JOIN` — keeps its first column.
    pub fn keep_indices(&self, table: &Table, binding: &str) -> Vec<usize> {
        let keep: Vec<usize> = table
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| self.keep(binding, &c.name))
            .map(|(i, _)| i)
            .collect();
        if keep.is_empty() && !table.columns.is_empty() {
            return vec![0];
        }
        keep
    }
}

/// Per-statement execution context: the fault set, session facts, and the
/// provenance of which faults fired.
#[derive(Debug)]
pub struct ExecContext {
    pub faults: FaultSet,
    pub switched_off: Vec<&'static str>,
    pub materialization: bool,
    pub subquery_present: bool,
    pub semi_strategy: Option<SemiJoinStrategy>,
    pub fired: Vec<FaultKind>,
    /// Operator-level profile of this execution, collected only while
    /// telemetry is enabled (`None` otherwise, so the hot path allocates
    /// nothing for it).
    pub profile: Option<QueryProfile>,
    /// Cooperative cancellation handle, picked up from the thread's
    /// installed token (inert when no deadline is configured).
    pub cancel: crate::cancel::CancelToken,
}

impl ExecContext {
    pub fn new(faults: FaultSet) -> Self {
        ExecContext {
            faults,
            switched_off: Vec::new(),
            materialization: true,
            subquery_present: false,
            semi_strategy: None,
            fired: Vec::new(),
            profile: tqs_telemetry::enabled().then(QueryProfile::new),
            cancel: crate::cancel::CancelToken::current(),
        }
    }

    /// Bail out of execution if the statement's cancel token (deadline or
    /// explicit cancel) has tripped. Executors call this at statement start
    /// and once per join so a runaway cross join is stopped at the next
    /// operator boundary.
    #[inline]
    pub fn check_cancelled(&self) -> Result<(), ExecError> {
        if self.cancel.is_cancelled() {
            tqs_telemetry::counter!("engine.exec.cancelled").incr();
            Err(ExecError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Start an operator clock — `None` (no clock read) unless profiling.
    #[inline]
    pub fn op_start(&self) -> Option<Instant> {
        self.profile.as_ref().map(|_| Instant::now())
    }

    /// Record one operator sample on the per-query profile; returns the
    /// elapsed nanoseconds (0 when not profiling) for global histograms.
    #[inline]
    pub fn op_end(&mut self, start: Option<Instant>, op: &str, rows_in: u64, rows_out: u64) -> u64 {
        if let (Some(t0), Some(p)) = (start, self.profile.as_mut()) {
            let ns = t0.elapsed().as_nanos() as u64;
            p.push(op, rows_in, rows_out, ns);
            ns
        } else {
            0
        }
    }

    pub fn fire(&mut self, kind: FaultKind) {
        if !self.fired.contains(&kind) {
            self.fired.push(kind);
        }
    }

    pub(crate) fn trigger_ctx(&self, join: &PhysicalJoin) -> TriggerContext {
        TriggerContext {
            algo: Some(join.algo),
            join_type: Some(join.join_type),
            semi_strategy: self.semi_strategy,
            materialization: self.materialization,
            subquery_present: self.subquery_present,
            simplified_from_outer: join.simplified_from_outer,
            uses_join_buffer: join.buffer_rows.is_some(),
            switched_off: self.switched_off.clone(),
        }
    }

    fn active(&self, kind: FaultKind, t: &TriggerContext) -> bool {
        self.faults.active(kind, t)
    }
}

/// Errors surfaced by the executor.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    UnknownColumn(String),
    Unsupported(String),
    /// The statement's cancel token tripped (deadline exceeded or an
    /// explicit cancel); execution was abandoned cooperatively.
    Cancelled,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            ExecError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ExecError::Cancelled => write!(f, "statement cancelled: deadline exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Equi-key extraction result: column indices on each side plus any residual
/// predicates that must still be evaluated per candidate pair.
struct EquiKeys {
    left_idx: Vec<usize>,
    right_idx: Vec<usize>,
    residual: Vec<Expr>,
}

fn extract_equi_keys(left: &Rel, right: &Rel, on: Option<&Expr>) -> EquiKeys {
    let mut keys = EquiKeys {
        left_idx: Vec::new(),
        right_idx: Vec::new(),
        residual: Vec::new(),
    };
    let Some(on) = on else { return keys };
    let mut conjuncts = Vec::new();
    flatten_and(on, &mut conjuncts);
    for c in conjuncts {
        if let Expr::Binary {
            op: BinOp::Eq,
            left: a,
            right: b,
        } = c
        {
            if let (Expr::Column(ca), Expr::Column(cb)) = (a.as_ref(), b.as_ref()) {
                let la = left.col_index(ca.table.as_deref(), &ca.column);
                let rb = right.col_index(cb.table.as_deref(), &cb.column);
                if let (Some(li), Some(ri)) = (la, rb) {
                    keys.left_idx.push(li);
                    keys.right_idx.push(ri);
                    continue;
                }
                let lb = left.col_index(cb.table.as_deref(), &cb.column);
                let ra = right.col_index(ca.table.as_deref(), &ca.column);
                if let (Some(li), Some(ri)) = (lb, ra) {
                    keys.left_idx.push(li);
                    keys.right_idx.push(ri);
                    continue;
                }
            }
        }
        keys.residual.push(c.clone());
    }
    keys
}

fn flatten_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e);
    }
}

/// Correct value-level key equality (used by the non-hashed algorithms).
fn keys_equal_correct(lrow: &[Value], rrow: &[Value], keys: &EquiKeys) -> bool {
    keys.left_idx
        .iter()
        .zip(keys.right_idx.iter())
        .all(|(&li, &ri)| {
            let (x, y) = (&lrow[li], &rrow[ri]);
            if x.is_null() || y.is_null() {
                return false;
            }
            matches!(
                sql_compare(x, y),
                SqlCmp::Ordering(std::cmp::Ordering::Equal)
            )
        })
}

/// Encode one row's join key for the hash-based algorithms into `buf`
/// (cleared first), with fault interception. Returns `false` when the key
/// can never match (the correct treatment of NULL keys, and the
/// boundary-overflow fault). The fault segments encode bit-for-bit the same
/// equivalences as the retired `"S:|"` / `"F:0|"` / `"D:{double}|"` text
/// encoding, so every fault fires and collides on exactly the same rows —
/// pinned by the property tests below against the legacy reference.
fn encode_key_into(
    row: &[Value],
    idx: &[usize],
    ctx: &mut ExecContext,
    t: &TriggerContext,
    buf: &mut KeyBuf,
) -> bool {
    buf.clear();
    for &i in idx {
        let v = &row[i];
        if v.is_null() {
            if ctx.active(FaultKind::HashJoinNullMatchesEmpty, t) {
                ctx.fire(FaultKind::HashJoinNullMatchesEmpty);
                // NULL keys collide with the canonical empty string.
                buf.push_str_folded("");
                continue;
            }
            if ctx.active(FaultKind::SemiJoinFloatPrecision, t) {
                ctx.fire(FaultKind::SemiJoinFloatPrecision);
                // NULL keys collide with values whose f32 round-trip is +0.
                buf.push_f64_bits(KeyBuf::TAG_DOUBLE, 0.0);
                continue;
            }
            return false;
        }
        // Boundary values vanish into an unprobed overflow bucket.
        if ctx.active(FaultKind::HashJoinMaterializationZeroSplit, t) && is_boundary_like(v) {
            ctx.fire(FaultKind::HashJoinMaterializationZeroSplit);
            return false;
        }
        // Long varchar keys get routed through a lossy double conversion.
        if ctx.active(FaultKind::HashJoinVarcharViaDouble, t) {
            if let Some(s) = v.as_str() {
                if s.len() > 8 {
                    ctx.fire(FaultKind::HashJoinVarcharViaDouble);
                    buf.push_f64_bits(KeyBuf::TAG_LOSSY_DOUBLE, v.as_f64_lossy().unwrap_or(0.0));
                    continue;
                }
            }
        }
        // Float-precision loss on the semi-join materialization-off path.
        if ctx.active(FaultKind::SemiJoinFloatPrecision, t) {
            if let Some(f) = v.as_f64_lossy() {
                if v.as_str().is_none() {
                    let rounded = f as f32 as f64;
                    if rounded != f {
                        ctx.fire(FaultKind::SemiJoinFloatPrecision);
                    }
                    buf.push_f64_bits(KeyBuf::TAG_DOUBLE, rounded);
                    continue;
                }
            }
        }
        buf.push_canonical(v);
    }
    true
}

/// Canonical *text* rendering of a value under correct key semantics. No
/// longer on the per-row path: the merge join renders it once per distinct
/// key run to order runs exactly as the old string keys sorted, so the
/// first/last-run faults keep skipping the same runs they always did.
pub(crate) fn canonical_encoding(v: &Value) -> String {
    match tqs_sql::value::hash_key(v) {
        tqs_sql::value::HashKey::Null => "N:".to_string(),
        tqs_sql::value::HashKey::Int(i) => format!("I:{i}"),
        tqs_sql::value::HashKey::Double(b) => format!("F:{}", f64::from_bits(b)),
        tqs_sql::value::HashKey::Str(s) => format!("S:{s}"),
    }
}

fn is_boundary_like(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i >= 32_767 || *i <= -32_767,
        Value::UInt(u) => *u >= 32_767,
        Value::Varchar(s) | Value::Text(s) => {
            let mut chars = s.chars();
            match chars.next() {
                Some(first) => s.len() >= 8 && chars.all(|c| c == first),
                None => false,
            }
        }
        Value::Float(f) => f.is_sign_negative() && *f == 0.0,
        Value::Double(f) => f.is_sign_negative() && *f == 0.0,
        _ => false,
    }
}

/// Residual-predicate column references resolved to a side and a column
/// offset once per join — the compiled scope that lets residual evaluation
/// borrow the candidate row slices instead of cloning a full two-sided
/// scope (binding + column name + value per column) for every candidate
/// pair.
pub(crate) struct ScopeLayout {
    entries: Vec<ScopeEntry>,
}

struct ScopeEntry {
    /// The reference text this entry compiles (qualifier + column).
    table: Option<String>,
    column: String,
    /// Resolved target: right side? plus the column offset on that side.
    right: bool,
    offset: usize,
}

impl ScopeLayout {
    /// Resolve every distinct column reference in `residual` against the
    /// join inputs, left columns before right — the same first-match order
    /// the old per-row scope scan used.
    pub(crate) fn compile(
        residual: &[Expr],
        left_index: &dyn Fn(Option<&str>, &str) -> Option<usize>,
        right_index: &dyn Fn(Option<&str>, &str) -> Option<usize>,
    ) -> ScopeLayout {
        let mut entries: Vec<ScopeEntry> = Vec::new();
        for pred in residual {
            for c in pred.column_refs() {
                if entries.iter().any(|e| e.matches(c)) {
                    continue;
                }
                let target = left_index(c.table.as_deref(), &c.column)
                    .map(|o| (false, o))
                    .or_else(|| right_index(c.table.as_deref(), &c.column).map(|o| (true, o)));
                if let Some((right, offset)) = target {
                    entries.push(ScopeEntry {
                        table: c.table.clone(),
                        column: c.column.clone(),
                        right,
                        offset,
                    });
                }
            }
        }
        ScopeLayout { entries }
    }

    pub(crate) fn lookup(&self, col: &ColumnRef) -> Option<(bool, usize)> {
        self.entries
            .iter()
            .find(|e| e.matches(col))
            .map(|e| (e.right, e.offset))
    }
}

impl ScopeEntry {
    fn matches(&self, col: &ColumnRef) -> bool {
        self.column.eq_ignore_ascii_case(&col.column)
            && match (&self.table, &col.table) {
                (None, None) => true,
                (Some(a), Some(b)) => a.eq_ignore_ascii_case(b),
                _ => false,
            }
    }
}

/// Borrow-based resolver over one candidate row pair, driven by a compiled
/// [`ScopeLayout`].
struct ScopedPair<'a> {
    layout: &'a ScopeLayout,
    lrow: &'a [Value],
    rrow: &'a [Value],
}

impl ColumnResolver for ScopedPair<'_> {
    fn resolve(&self, col: &ColumnRef) -> Option<Value> {
        self.layout.lookup(col).map(|(right, offset)| {
            if right {
                self.rrow[offset].clone()
            } else {
                self.lrow[offset].clone()
            }
        })
    }
}

/// Residual ON predicates evaluated on the combined row.
fn residual_ok(residual: &[Expr], layout: &ScopeLayout, lrow: &[Value], rrow: &[Value]) -> bool {
    if residual.is_empty() {
        return true;
    }
    let resolver = ScopedPair { layout, lrow, rrow };
    residual.iter().all(|p| {
        eval_predicate(p, &resolver, &NoSubqueries)
            .map(|r| r == Some(true))
            .unwrap_or(false)
    })
}

/// Execute one physical join step.
pub fn execute_join(
    left: &Rel,
    right: &Rel,
    join: &PhysicalJoin,
    on: Option<&Expr>,
    ctx: &mut ExecContext,
) -> Result<Rel, ExecError> {
    let op_t0 = ctx.op_start();
    let t = ctx.trigger_ctx(join);
    let keys = extract_equi_keys(left, right, on);
    let layout = ScopeLayout::compile(&keys.residual, &|b, c| left.col_index(b, c), &|b, c| {
        right.col_index(b, c)
    });

    // Compute the match matrix: for each left row, the list of matching right
    // row indices. Algorithms differ in how matches are found (and therefore
    // in which faults can perturb them).
    let (matches, mut extra_fired_rows) = match join.algo {
        JoinAlgo::HashJoin
        | JoinAlgo::IndexJoin
        | JoinAlgo::BatchedKeyAccess
        | JoinAlgo::BlockNestedLoopHashed => hashed_matches(left, right, &keys, &layout, ctx, &t),
        JoinAlgo::SortMergeJoin => merge_matches(left, right, &keys, &layout, ctx, &t),
        JoinAlgo::NestedLoop | JoinAlgo::BlockNestedLoop => {
            loop_matches(left, right, &keys, &layout, ctx, &t)
        }
    };

    // Join-buffer tail loss: rows of the buffered (left) side beyond the last
    // complete buffer chunk never get joined.
    let mut left_live: Vec<bool> = vec![true; left.rows.len()];
    if let Some(buf) = join.buffer_rows {
        if ctx.active(FaultKind::JoinBufferLimitDropsTail, &t) && left.rows.len() > buf {
            let keep = (left.rows.len() / buf) * buf;
            for live in left_live.iter_mut().skip(keep) {
                *live = false;
            }
            ctx.fire(FaultKind::JoinBufferLimitDropsTail);
        }
    }

    let mut out = Rel {
        cols: match join.join_type {
            JoinType::Semi | JoinType::Anti => left.cols.clone(),
            _ => {
                let mut c = left.cols.clone();
                c.extend(right.cols.clone());
                c
            }
        },
        rows: Vec::new(),
    };

    let mut right_matched = vec![false; right.rows.len()];
    let mut first_unmatched_pad: Option<Vec<Value>> = None;
    for (li, lrow) in left.rows.iter().enumerate() {
        if !left_live[li] {
            continue;
        }
        let ms = &matches[li];
        match join.join_type {
            JoinType::Inner
            | JoinType::Cross
            | JoinType::LeftOuter
            | JoinType::RightOuter
            | JoinType::FullOuter => {
                for &ri in ms {
                    right_matched[ri] = true;
                    let mut row = lrow.clone();
                    let mut rvals = right.rows[ri].clone();
                    // Stale-cache replay: every 50th emitted row repeats the
                    // previous row's right-side values.
                    if ctx.active(FaultKind::JoinCacheStaleRow, &t)
                        && out.rows.len() % 50 == 49
                        && !out.rows.is_empty()
                    {
                        ctx.fire(FaultKind::JoinCacheStaleRow);
                        let prev = &out.rows[out.rows.len() - 1];
                        rvals = prev[left.width()..].to_vec();
                    }
                    // Merge join returning NULL instead of the value for
                    // duplicate key runs is applied inside merge_matches via
                    // extra_fired_rows.
                    if extra_fired_rows.null_right_rows.contains(&ri) {
                        rvals = vec![Value::Null; right.width()];
                    }
                    row.extend(rvals);
                    out.rows.push(row);
                }
                if ms.is_empty()
                    && matches!(join.join_type, JoinType::LeftOuter | JoinType::FullOuter)
                {
                    // Outer merge join dropping unmatched rows entirely.
                    if ctx.active(FaultKind::MergeJoinOuterNullLoss, &t) {
                        ctx.fire(FaultKind::MergeJoinOuterNullLoss);
                        continue;
                    }
                    let pad = pad_values(right.width(), ctx, &t, &mut first_unmatched_pad);
                    let mut row = lrow.clone();
                    row.extend(pad);
                    out.rows.push(row);
                }
            }
            JoinType::Semi => {
                if !ms.is_empty() {
                    out.rows.push(lrow.clone());
                    if ctx.active(FaultKind::SemiJoinUnknownData, &t) {
                        ctx.fire(FaultKind::SemiJoinUnknownData);
                        out.rows.push(lrow.clone());
                    }
                }
            }
            JoinType::Anti => {
                if ms.is_empty() {
                    out.rows.push(lrow.clone());
                }
            }
        }
    }

    // Right/full outer: pad unmatched right rows on the left side.
    if matches!(join.join_type, JoinType::RightOuter | JoinType::FullOuter) {
        for (ri, matched) in right_matched.iter().enumerate() {
            if !matched {
                if ctx.active(FaultKind::MergeJoinOuterNullLoss, &t) {
                    ctx.fire(FaultKind::MergeJoinOuterNullLoss);
                    continue;
                }
                let pad = pad_values(left.width(), ctx, &t, &mut first_unmatched_pad);
                let mut row = pad;
                row.extend(right.rows[ri].clone());
                out.rows.push(row);
            }
        }
    }

    // Extra spurious NULL-padded row for the left hash join + subquery case.
    if ctx.active(FaultKind::LeftHashJoinSubqueryNull, &t) && join.join_type == JoinType::LeftOuter
    {
        if let Some((li, _)) = left
            .rows
            .iter()
            .enumerate()
            .find(|(li, _)| left_live[*li] && matches[*li].is_empty())
        {
            ctx.fire(FaultKind::LeftHashJoinSubqueryNull);
            let mut row = left.rows[li].clone();
            row.extend(vec![Value::Null; right.width()]);
            out.rows.push(row);
        }
    }

    // Blanked varchar values when the hashed join buffer is disallowed.
    if ctx.active(FaultKind::BnlhDisallowedBlankValues, &t)
        && join
            .buffer_rows
            .map(|b| left.rows.len() > b)
            .unwrap_or(false)
        && !out.rows.is_empty()
    {
        ctx.fire(FaultKind::BnlhDisallowedBlankValues);
        let last = out.rows.len() - 1;
        for v in out.rows[last].iter_mut() {
            if matches!(v, Value::Varchar(_) | Value::Text(_)) {
                *v = Value::Varchar(String::new());
            }
        }
    }

    extra_fired_rows.null_right_rows.clear();
    if let Some(t0) = op_t0 {
        let ns = t0.elapsed().as_nanos() as u64;
        let rows_in = (left.rows.len() + right.rows.len()) as u64;
        let rows_out = out.rows.len() as u64;
        if let Some(p) = ctx.profile.as_mut() {
            p.push(join.algo.profile_label(), rows_in, rows_out, ns);
        }
        tqs_telemetry::counter!("engine.row.join.rows_in").add(rows_in);
        tqs_telemetry::counter!("engine.row.join.rows_out").add(rows_out);
        tqs_telemetry::histogram!("engine.row.join.ns").record(ns);
    }
    Ok(out)
}

/// Bookkeeping returned by algorithm-specific match computation.
#[derive(Default)]
struct MatchSideEffects {
    /// Right rows whose values must be replaced by NULLs in the output
    /// (merge-join duplicate-run corruption).
    null_right_rows: Vec<usize>,
}

/// Is canonical-key equality ([`KeyBuf::push_canonical`] / [`hash_key`]
/// (tqs_sql::value::hash_key)) guaranteed to agree with [`sql_compare`]
/// equality on every cross-side pair of these key columns?
///
/// Proven only for two data shapes, checked against the actual column
/// values:
///
/// * **all strings** — `collate_cmp` equality and the folded hash key apply
///   the same lowercase + trailing-space-trim equivalence;
/// * **all exact small integers** (`as_i128_exact` within ±2⁵³) —
///   `sql_compare` takes the exact i128 path and `hash_key` maps the same
///   i128.
///
/// Everything else bails to the compare loop: a string meeting a number
/// coerces under SQL but not under the hash key; fractional decimals compare
/// exactly under SQL but hash through a lossy f64; integers beyond 2⁵³ can
/// equal a double under lossy comparison while hashing differently. Each
/// key column pair must be string-vs-string or int-vs-int (an all-NULL /
/// empty column matches anything — NULL keys never match rows anyway).
fn hash_equivalent_keys(left: &Rel, right: &Rel, keys: &EquiKeys) -> bool {
    #[derive(PartialEq, Clone, Copy)]
    enum ColClass {
        Empty,
        Str,
        SmallInt,
    }
    const EXACT_F64_INT: u128 = 1 << 53;
    let classify = |rows: &[Vec<Value>], idx: usize| -> Option<ColClass> {
        let mut class = ColClass::Empty;
        for row in rows {
            let v = &row[idx];
            if v.is_null() {
                continue;
            }
            let this = if v.as_str().is_some() {
                ColClass::Str
            } else if matches!(v.as_i128_exact(), Some(i) if i.unsigned_abs() <= EXACT_F64_INT) {
                ColClass::SmallInt
            } else {
                return None; // floats, fractional decimals, huge integers
            };
            if class == ColClass::Empty {
                class = this;
            } else if class != this {
                return None; // mixed strings and numbers within one column
            }
        }
        Some(class)
    };
    keys.left_idx
        .iter()
        .zip(keys.right_idx.iter())
        .all(
            |(&li, &ri)| match (classify(&left.rows, li), classify(&right.rows, ri)) {
                (Some(a), Some(b)) => a == b || a == ColClass::Empty || b == ColClass::Empty,
                _ => false,
            },
        )
}

/// The nested-loop algorithms with an equi key: identical match decisions to
/// the O(|L|·|R|) compare loop, computed by hashing canonical keys — valid
/// only when [`hash_equivalent_keys`] holds. No key-encoding faults apply on
/// this path (those belong to the hash-join algorithms); the NULL/row-0
/// confusion fault is reproduced exactly.
fn loop_matches_hashed(
    left: &Rel,
    right: &Rel,
    keys: &EquiKeys,
    layout: &ScopeLayout,
    ctx: &mut ExecContext,
    t: &TriggerContext,
) -> (Vec<Vec<usize>>, MatchSideEffects) {
    let mut table: HashMap<KeyBuf, Vec<usize>> = HashMap::new();
    let mut scratch = KeyBuf::new();
    for (ri, rrow) in right.rows.iter().enumerate() {
        if keys.right_idx.iter().any(|&i| rrow[i].is_null()) {
            continue;
        }
        scratch.clear();
        for &i in &keys.right_idx {
            scratch.push_canonical(&rrow[i]);
        }
        match table.get_mut(&scratch) {
            Some(bucket) => bucket.push(ri),
            None => {
                table.insert(scratch.clone(), vec![ri]);
            }
        }
    }
    let mut out = vec![Vec::new(); left.rows.len()];
    for (li, lrow) in left.rows.iter().enumerate() {
        if keys.left_idx.iter().any(|&i| lrow[i].is_null()) {
            // NULL keys never match; the simplified-join confusion fault
            // spuriously matches build row 0, exactly like the compare loop.
            if !right.rows.is_empty() && ctx.active(FaultKind::LeftToInnerNullZeroConfusion, t) {
                ctx.fire(FaultKind::LeftToInnerNullZeroConfusion);
                if residual_ok(&keys.residual, layout, lrow, &right.rows[0]) {
                    out[li].push(0);
                }
            }
            continue;
        }
        scratch.clear();
        for &i in &keys.left_idx {
            scratch.push_canonical(&lrow[i]);
        }
        if let Some(bucket) = table.get(&scratch) {
            out[li] = bucket
                .iter()
                .copied()
                .filter(|&ri| residual_ok(&keys.residual, layout, lrow, &right.rows[ri]))
                .collect();
        }
    }
    (out, MatchSideEffects::default())
}

fn loop_matches(
    left: &Rel,
    right: &Rel,
    keys: &EquiKeys,
    layout: &ScopeLayout,
    ctx: &mut ExecContext,
    t: &TriggerContext,
) -> (Vec<Vec<usize>>, MatchSideEffects) {
    if !keys.left_idx.is_empty() && hash_equivalent_keys(left, right, keys) {
        return loop_matches_hashed(left, right, keys, layout, ctx, t);
    }
    let mut out = vec![Vec::new(); left.rows.len()];
    for (li, lrow) in left.rows.iter().enumerate() {
        let left_has_null = keys.left_idx.iter().any(|&i| lrow[i].is_null());
        for (ri, rrow) in right.rows.iter().enumerate() {
            let mut matched = keys.left_idx.is_empty() || keys_equal_correct(lrow, rrow, keys);
            // A simplified (outer→inner) join that confuses NULL with the
            // first build row.
            if !matched
                && ctx.active(FaultKind::LeftToInnerNullZeroConfusion, t)
                && left_has_null
                && ri == 0
            {
                ctx.fire(FaultKind::LeftToInnerNullZeroConfusion);
                matched = true;
            }
            if matched && residual_ok(&keys.residual, layout, lrow, rrow) {
                out[li].push(ri);
            }
        }
    }
    (out, MatchSideEffects::default())
}

fn hashed_matches(
    left: &Rel,
    right: &Rel,
    keys: &EquiKeys,
    layout: &ScopeLayout,
    ctx: &mut ExecContext,
    t: &TriggerContext,
) -> (Vec<Vec<usize>>, MatchSideEffects) {
    if keys.left_idx.is_empty() {
        // no equi key — degrade to the loop implementation (correct)
        return loop_matches(left, right, keys, layout, ctx, t);
    }
    // Build side: one owned key per *distinct* key; the scratch buffer is
    // reused across rows, so the per-row cost is a clear + byte appends.
    let mut table: HashMap<KeyBuf, Vec<usize>> = HashMap::new();
    let mut scratch = KeyBuf::new();
    for (ri, rrow) in right.rows.iter().enumerate() {
        if encode_key_into(rrow, &keys.right_idx, ctx, t, &mut scratch) {
            match table.get_mut(&scratch) {
                Some(bucket) => bucket.push(ri),
                None => {
                    table.insert(scratch.clone(), vec![ri]);
                }
            }
        }
    }
    let first_bucket: Vec<usize> = table.values().next().cloned().unwrap_or_default();
    let mut out = vec![Vec::new(); left.rows.len()];
    for (li, lrow) in left.rows.iter().enumerate() {
        let has_null = keys.left_idx.iter().any(|&i| lrow[i].is_null());
        let mut ms: Vec<usize> = if encode_key_into(lrow, &keys.left_idx, ctx, t, &mut scratch) {
            table.get(&scratch).cloned().unwrap_or_default()
        } else {
            Vec::new()
        };
        if ms.is_empty()
            && has_null
            && ctx.active(FaultKind::LeftToInnerNullZeroConfusion, t)
            && !first_bucket.is_empty()
        {
            ctx.fire(FaultKind::LeftToInnerNullZeroConfusion);
            ms = first_bucket.clone();
        }
        // residual predicates still apply
        ms.retain(|&ri| residual_ok(&keys.residual, layout, lrow, &right.rows[ri]));
        out[li] = ms;
    }
    (out, MatchSideEffects::default())
}

/// One duplicate-key run of the merge join.
struct MergeRun {
    rows: Vec<usize>,
    /// The legacy text rendering of the run's key — computed once per
    /// distinct key, only to order runs exactly as the old string keys
    /// sorted (the first/last-run faults must keep skipping the same runs).
    text: String,
    skipped: bool,
}

fn merge_matches(
    left: &Rel,
    right: &Rel,
    keys: &EquiKeys,
    layout: &ScopeLayout,
    ctx: &mut ExecContext,
    t: &TriggerContext,
) -> (Vec<Vec<usize>>, MatchSideEffects) {
    if keys.left_idx.is_empty() {
        return loop_matches(left, right, keys, layout, ctx, t);
    }
    // Collation-mismatch fault: varchar merge keys produce an empty join.
    let key_is_string = right
        .rows
        .iter()
        .flat_map(|r| keys.right_idx.iter().map(move |&i| &r[i]))
        .any(|v| v.as_str().is_some());
    if key_is_string && ctx.active(FaultKind::MergeJoinVarcharEmpty, t) {
        ctx.fire(FaultKind::MergeJoinVarcharEmpty);
        return (
            vec![Vec::new(); left.rows.len()],
            MatchSideEffects::default(),
        );
    }
    // A straightforward (correct) merge: group right rows by canonical key.
    // Binary keys index the runs; the probe below hits this same index
    // directly instead of rebuilding a borrowed shadow map.
    let mut runs: Vec<MergeRun> = Vec::new();
    let mut index: HashMap<KeyBuf, usize> = HashMap::new();
    let mut scratch = KeyBuf::new();
    for (ri, rrow) in right.rows.iter().enumerate() {
        if keys.right_idx.iter().any(|&i| rrow[i].is_null()) {
            continue;
        }
        scratch.clear();
        for &i in &keys.right_idx {
            scratch.push_canonical(&rrow[i]);
        }
        match index.get(&scratch) {
            Some(&gi) => runs[gi].rows.push(ri),
            None => {
                index.insert(scratch.clone(), runs.len());
                runs.push(MergeRun {
                    rows: vec![ri],
                    text: keys
                        .right_idx
                        .iter()
                        .map(|&i| canonical_encoding(&rrow[i]) + "|")
                        .collect(),
                    skipped: false,
                });
            }
        }
    }
    // Merge-order the runs by key text, then apply the run-skipping faults
    // by sorted position.
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by(|&a, &b| runs[a].text.cmp(&runs[b].text));
    let mut skipped_first = false;
    let mut skipped_last = false;
    let mut effects = MatchSideEffects::default();
    let n_runs = runs.len();
    for (pos, &gi) in order.iter().enumerate() {
        // "missed -0" ↔ the cursor skips the smallest key run.
        if pos == 0 && n_runs > 1 && ctx.active(FaultKind::MergeJoinNegativeZeroMiss, t) {
            runs[gi].skipped = true;
            skipped_first = true;
            continue;
        }
        // the final duplicate run is dropped
        if pos + 1 == n_runs && n_runs > 1 && ctx.active(FaultKind::MergeJoinDropsLastRun, t) {
            runs[gi].skipped = true;
            skipped_last = true;
            continue;
        }
        // duplicate runs: 2nd and later rows come back as NULLs
        if runs[gi].rows.len() > 1 && ctx.active(FaultKind::MergeJoinNullInsteadOfValue, t) {
            ctx.fire(FaultKind::MergeJoinNullInsteadOfValue);
            effects
                .null_right_rows
                .extend(runs[gi].rows.iter().skip(1).copied());
        }
    }
    if skipped_first {
        ctx.fire(FaultKind::MergeJoinNegativeZeroMiss);
    }
    if skipped_last {
        ctx.fire(FaultKind::MergeJoinDropsLastRun);
    }
    let mut out = vec![Vec::new(); left.rows.len()];
    for (li, lrow) in left.rows.iter().enumerate() {
        if keys.left_idx.iter().any(|&i| lrow[i].is_null()) {
            continue;
        }
        scratch.clear();
        for &i in &keys.left_idx {
            scratch.push_canonical(&lrow[i]);
        }
        if let Some(&gi) = index.get(&scratch) {
            if runs[gi].skipped {
                continue;
            }
            out[li] = runs[gi]
                .rows
                .iter()
                .copied()
                .filter(|&ri| residual_ok(&keys.residual, layout, lrow, &right.rows[ri]))
                .collect();
        }
    }
    (out, effects)
}

/// NULL padding for the unmatched side of outer joins, with the
/// empty-string-instead-of-NULL faults.
fn pad_values(
    width: usize,
    ctx: &mut ExecContext,
    t: &TriggerContext,
    first_pad_done: &mut Option<Vec<Value>>,
) -> Vec<Value> {
    let corrupt = first_pad_done.is_none()
        && (ctx.active(FaultKind::OuterJoinCacheEmptyPad, t)
            || ctx.active(FaultKind::BkaDisallowedNullToEmpty, t));
    let pad: Vec<Value> = if corrupt {
        if ctx.active(FaultKind::OuterJoinCacheEmptyPad, t) {
            ctx.fire(FaultKind::OuterJoinCacheEmptyPad);
        } else {
            ctx.fire(FaultKind::BkaDisallowedNullToEmpty);
        }
        vec![Value::Varchar(String::new()); width]
    } else {
        vec![Value::Null; width]
    };
    if first_pad_done.is_none() {
        *first_pad_done = Some(pad.clone());
    }
    pad
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_sql::types::{ColumnDef, ColumnType};
    use tqs_storage::Row;

    fn table(name: &str, rows: Vec<Vec<Value>>) -> Table {
        let mut t = Table::new(
            name,
            vec![
                ColumnDef::new("id", ColumnType::Int { unsigned: false }),
                ColumnDef::new("name", ColumnType::Varchar(100)),
            ],
        );
        for r in rows {
            t.push_row(Row::new(r)).unwrap();
        }
        t
    }

    fn join(jt: JoinType, algo: JoinAlgo) -> PhysicalJoin {
        PhysicalJoin {
            right_binding: "r".into(),
            join_type: jt,
            algo,
            simplified_from_outer: false,
            buffer_rows: None,
        }
    }

    fn on_clause() -> Expr {
        Expr::eq(Expr::col("l", "id"), Expr::col("r", "id"))
    }

    fn left_rel() -> Rel {
        Rel::scan(
            &table(
                "l",
                vec![
                    vec![Value::Int(1), Value::str("a")],
                    vec![Value::Int(2), Value::str("b")],
                    vec![Value::Int(3), Value::str("c")],
                    vec![Value::Null, Value::str("n")],
                ],
            ),
            "l",
        )
    }

    fn right_rel() -> Rel {
        Rel::scan(
            &table(
                "r",
                vec![
                    vec![Value::Int(1), Value::str("x")],
                    vec![Value::Int(1), Value::str("y")],
                    vec![Value::Int(3), Value::str("z")],
                    vec![Value::Null, Value::str("rn")],
                ],
            ),
            "r",
        )
    }

    fn run(jt: JoinType, algo: JoinAlgo, faults: FaultSet) -> (Rel, ExecContext) {
        let mut ctx = ExecContext::new(faults);
        let out = execute_join(
            &left_rel(),
            &right_rel(),
            &join(jt, algo),
            Some(&on_clause()),
            &mut ctx,
        )
        .unwrap();
        (out, ctx)
    }

    #[test]
    fn all_algorithms_agree_on_clean_inner_join() {
        let mut counts = Vec::new();
        for algo in JoinAlgo::ALL {
            let (out, ctx) = run(JoinType::Inner, algo, FaultSet::none());
            counts.push(out.rows.len());
            assert!(
                ctx.fired.is_empty(),
                "{algo:?} fired faults on a pristine build"
            );
        }
        // l.id=1 matches two rows, l.id=3 matches one; NULLs never match.
        assert!(counts.iter().all(|&c| c == 3), "{counts:?}");
    }

    #[test]
    fn outer_join_padding_is_null_by_default() {
        let (out, _) = run(JoinType::LeftOuter, JoinAlgo::HashJoin, FaultSet::none());
        // 3 matches + 2 unmatched left rows (id=2 and NULL)
        assert_eq!(out.rows.len(), 5);
        let padded: Vec<&Vec<Value>> = out.rows.iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(padded.len(), 2);
        let (out, _) = run(JoinType::FullOuter, JoinAlgo::NestedLoop, FaultSet::none());
        // + 1 unmatched right row (NULL key)
        assert_eq!(out.rows.len(), 6);
    }

    #[test]
    fn semi_and_anti_join_semantics() {
        let (semi, _) = run(JoinType::Semi, JoinAlgo::HashJoin, FaultSet::none());
        assert_eq!(semi.rows.len(), 2); // ids 1 and 3
        assert_eq!(semi.width(), 2); // only left columns
        let (anti, _) = run(JoinType::Anti, JoinAlgo::NestedLoop, FaultSet::none());
        assert_eq!(anti.rows.len(), 2); // id 2 and the NULL row
    }

    #[test]
    fn hash_join_null_matches_empty_fault_adds_rows() {
        let faults = FaultSet::of(&[FaultKind::HashJoinNullMatchesEmpty]);
        let (out, ctx) = run(JoinType::Inner, JoinAlgo::HashJoin, faults.clone());
        // The NULL left key now matches the NULL right key (both encode "").
        assert_eq!(out.rows.len(), 4);
        assert_eq!(ctx.fired, vec![FaultKind::HashJoinNullMatchesEmpty]);
        // …but the same fault never fires under a nested loop plan.
        let (out, ctx) = run(JoinType::Inner, JoinAlgo::NestedLoop, faults);
        assert_eq!(out.rows.len(), 3);
        assert!(ctx.fired.is_empty());
    }

    #[test]
    fn merge_join_faults_drop_runs() {
        let (clean, _) = run(JoinType::Inner, JoinAlgo::SortMergeJoin, FaultSet::none());
        assert_eq!(clean.rows.len(), 3);
        let (out, ctx) = run(
            JoinType::Inner,
            JoinAlgo::SortMergeJoin,
            FaultSet::of(&[FaultKind::MergeJoinDropsLastRun]),
        );
        assert!(out.rows.len() < clean.rows.len());
        assert_eq!(ctx.fired, vec![FaultKind::MergeJoinDropsLastRun]);
        let (out, ctx) = run(
            JoinType::Inner,
            JoinAlgo::SortMergeJoin,
            FaultSet::of(&[FaultKind::MergeJoinNegativeZeroMiss]),
        );
        assert!(out.rows.len() < clean.rows.len());
        assert_eq!(ctx.fired, vec![FaultKind::MergeJoinNegativeZeroMiss]);
    }

    #[test]
    fn merge_join_null_instead_of_value() {
        let (out, ctx) = run(
            JoinType::Inner,
            JoinAlgo::SortMergeJoin,
            FaultSet::of(&[FaultKind::MergeJoinNullInsteadOfValue]),
        );
        assert_eq!(ctx.fired, vec![FaultKind::MergeJoinNullInsteadOfValue]);
        // the duplicate id=1 run has its second row blanked to NULLs
        assert!(out.rows.iter().any(|r| r[2].is_null() && !r[0].is_null()));
    }

    #[test]
    fn outer_pad_empty_string_fault() {
        let mut ctx = ExecContext::new(FaultSet::of(&[FaultKind::OuterJoinCacheEmptyPad]));
        let j = PhysicalJoin {
            right_binding: "r".into(),
            join_type: JoinType::LeftOuter,
            algo: JoinAlgo::BlockNestedLoop,
            simplified_from_outer: false,
            buffer_rows: Some(64),
        };
        let out =
            execute_join(&left_rel(), &right_rel(), &j, Some(&on_clause()), &mut ctx).unwrap();
        assert_eq!(ctx.fired, vec![FaultKind::OuterJoinCacheEmptyPad]);
        // exactly one padded row carries '' instead of NULL
        let empties = out
            .rows
            .iter()
            .filter(|r| r[2..].iter().any(|v| v.as_str() == Some("")))
            .count();
        assert_eq!(empties, 1);
    }

    #[test]
    fn join_buffer_tail_drop() {
        let mut ctx = ExecContext::new(FaultSet::of(&[FaultKind::JoinBufferLimitDropsTail]));
        let j = PhysicalJoin {
            right_binding: "r".into(),
            join_type: JoinType::Inner,
            algo: JoinAlgo::BlockNestedLoop,
            simplified_from_outer: false,
            buffer_rows: Some(3),
        };
        let out =
            execute_join(&left_rel(), &right_rel(), &j, Some(&on_clause()), &mut ctx).unwrap();
        // left has 4 rows, buffer 3 → the 4th left row is never joined; with
        // clean execution row id=NULL contributes nothing anyway, so compare
        // against a buffer that fits everything.
        assert_eq!(ctx.fired, vec![FaultKind::JoinBufferLimitDropsTail]);
        assert!(out.rows.len() <= 3);
    }

    #[test]
    fn simplified_left_join_null_zero_confusion() {
        let mut ctx = ExecContext::new(FaultSet::of(&[FaultKind::LeftToInnerNullZeroConfusion]));
        let j = PhysicalJoin {
            right_binding: "r".into(),
            join_type: JoinType::Inner,
            algo: JoinAlgo::HashJoin,
            simplified_from_outer: true,
            buffer_rows: None,
        };
        let out =
            execute_join(&left_rel(), &right_rel(), &j, Some(&on_clause()), &mut ctx).unwrap();
        assert_eq!(ctx.fired, vec![FaultKind::LeftToInnerNullZeroConfusion]);
        assert!(out.rows.len() > 3, "NULL key spuriously matched");
        // without the simplification flag the fault stays silent
        let (out, ctx2) = run(
            JoinType::Inner,
            JoinAlgo::HashJoin,
            FaultSet::of(&[FaultKind::LeftToInnerNullZeroConfusion]),
        );
        assert_eq!(out.rows.len(), 3);
        assert!(ctx2.fired.is_empty());
    }

    #[test]
    fn boundary_values_vanish_under_materialized_hash_join() {
        let left = Rel::scan(
            &table("l", vec![vec![Value::Int(65_535), Value::str("big")]]),
            "l",
        );
        let right = Rel::scan(
            &table("r", vec![vec![Value::Int(65_535), Value::str("big")]]),
            "r",
        );
        let mut ctx =
            ExecContext::new(FaultSet::of(&[FaultKind::HashJoinMaterializationZeroSplit]));
        ctx.materialization = true;
        let out = execute_join(
            &left,
            &right,
            &join(JoinType::Inner, JoinAlgo::HashJoin),
            Some(&on_clause()),
            &mut ctx,
        )
        .unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(ctx.fired, vec![FaultKind::HashJoinMaterializationZeroSplit]);
    }

    #[test]
    fn cross_join_produces_cartesian_product() {
        let mut ctx = ExecContext::new(FaultSet::none());
        let out = execute_join(
            &left_rel(),
            &right_rel(),
            &join(JoinType::Cross, JoinAlgo::NestedLoop),
            None,
            &mut ctx,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 16);
    }

    #[test]
    fn key_extraction_handles_reversed_equality_and_residual() {
        let left = left_rel();
        let right = right_rel();
        let on = Expr::and(
            Expr::eq(Expr::col("r", "id"), Expr::col("l", "id")),
            Expr::binary(
                BinOp::Ne,
                Expr::col("r", "name"),
                Expr::lit(Value::str("y")),
            ),
        );
        let keys = extract_equi_keys(&left, &right, Some(&on));
        assert_eq!(keys.left_idx, vec![0]);
        assert_eq!(keys.right_idx, vec![0]);
        assert_eq!(keys.residual.len(), 1);
        let mut ctx = ExecContext::new(FaultSet::none());
        let out = execute_join(
            &left,
            &right,
            &join(JoinType::Inner, JoinAlgo::HashJoin),
            Some(&on),
            &mut ctx,
        )
        .unwrap();
        // the residual predicate filters out the (1, y) match
        assert_eq!(out.rows.len(), 2);
    }
}
