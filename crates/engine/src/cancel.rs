//! Cooperative cancellation for statement execution.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that an executor polls at
//! statement boundaries and inside its per-join loops. Tokens are installed
//! per thread ([`CancelToken::install`]) so the campaign supervisor can put a
//! wall-clock budget on a statement without threading a parameter through
//! every `DbmsConnector::execute` signature: `ExecContext::new` picks up the
//! current thread's token automatically.
//!
//! The default token ([`CancelToken::none`]) carries no state and its
//! `is_cancelled` check is a single `Option` discriminant test, so engines
//! pay nothing when no deadline is configured.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation handle: either inert (`none`) or backed by a
/// shared flag plus an optional wall-clock deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// The inert token: never cancelled, zero-cost to check.
    pub fn none() -> Self {
        CancelToken { inner: None }
    }

    /// A manually-cancellable token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that reports cancelled once `deadline` passes (or when
    /// [`CancelToken::cancel`] is called explicitly, whichever is first).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// Request cancellation. Inert tokens ignore this.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// True once the token has been cancelled or its deadline has passed.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Relaxed)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// True when this token can ever report cancelled.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The token currently installed on this thread (inert if none is).
    pub fn current() -> CancelToken {
        CURRENT.with(|c| c.borrow().clone())
    }

    /// Install this token as the thread's current one for the lifetime of
    /// the returned guard; the previous token is restored on drop, so
    /// installations nest.
    pub fn install(&self) -> CancelGuard {
        let previous = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), self.clone()));
        CancelGuard { previous }
    }
}

thread_local! {
    static CURRENT: RefCell<CancelToken> = RefCell::new(CancelToken::none());
}

/// RAII guard restoring the previously installed [`CancelToken`] on drop.
#[derive(Debug)]
pub struct CancelGuard {
    previous: CancelToken,
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        let previous = std::mem::replace(&mut self.previous, CancelToken::none());
        CURRENT.with(|c| *c.borrow_mut() = previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inert_token_never_cancels() {
        let t = CancelToken::none();
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(!t.is_armed());
    }

    #[test]
    fn explicit_cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_in_the_past_reads_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn install_nests_and_restores() {
        assert!(!CancelToken::current().is_armed());
        let outer = CancelToken::new();
        {
            let _g1 = outer.install();
            assert!(CancelToken::current().is_armed());
            let inner = CancelToken::with_deadline(Instant::now() + Duration::from_secs(1));
            {
                let _g2 = inner.install();
                inner.cancel();
                assert!(CancelToken::current().is_cancelled());
            }
            // Outer token restored, not cancelled.
            assert!(CancelToken::current().is_armed());
            assert!(!CancelToken::current().is_cancelled());
        }
        assert!(!CancelToken::current().is_armed());
    }
}
