//! DBMS profiles: the four simulated systems the experiments run against.
//!
//! Each profile fixes (a) metadata mirroring Table 3, (b) the optimizer's
//! default join-algorithm preferences, and (c) the subset of latent faults
//! attributed to that system in Table 4 (7 MySQL-like, 5 MariaDB-like,
//! 5 TiDB-like, 3 X-DB-like bug types).

use crate::faults::{FaultKind, FaultSet};
use crate::plan::JoinAlgo;
use serde::Serialize;

/// Descriptive metadata, used by the Table 3 experiment binary.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileInfo {
    pub name: String,
    pub version: String,
    pub db_engines_rank: Option<u32>,
    pub stack_overflow_rank: Option<u32>,
    pub github_stars: Option<&'static str>,
    pub loc: &'static str,
    pub first_release: u32,
}

/// A simulated DBMS build: metadata + optimizer defaults + latent faults.
#[derive(Debug, Clone, Serialize)]
pub struct DbmsProfile {
    pub info: ProfileInfo,
    /// Preferred algorithm for equi-joins when no hint applies.
    pub default_equi_algo: JoinAlgo,
    /// Preferred algorithm when no equi-key can be extracted.
    pub default_theta_algo: JoinAlgo,
    /// Whether IN-subqueries are transformed to semi-joins by default.
    pub default_semijoin_transform: bool,
    /// Whether subquery materialization is on by default.
    pub default_materialization: bool,
    /// Join buffer capacity in rows for buffered algorithms.
    pub join_buffer_rows: usize,
    pub faults: FaultSet,
}

/// Identifier for the four shipped profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ProfileId {
    MysqlLike,
    MariadbLike,
    TidbLike,
    XdbLike,
}

impl ProfileId {
    pub const ALL: [ProfileId; 4] = [
        ProfileId::MysqlLike,
        ProfileId::MariadbLike,
        ProfileId::TidbLike,
        ProfileId::XdbLike,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ProfileId::MysqlLike => "MySQL-like",
            ProfileId::MariadbLike => "MariaDB-like",
            ProfileId::TidbLike => "TiDB-like",
            ProfileId::XdbLike => "X-DB-like",
        }
    }
}

impl DbmsProfile {
    /// Profile for the given id, with its full Table 4 fault complement plus
    /// the DML complement ([`FaultKind::DML`]). The DML faults only fire from
    /// the DML executor, never on a SELECT path, so SELECT-only workloads
    /// behave exactly as they did before the complement existed.
    pub fn build(id: ProfileId) -> DbmsProfile {
        let mut p = DbmsProfile::table4_build(id);
        for f in FaultKind::DML {
            p.faults.enable(f);
        }
        p
    }

    /// Profile for the given id with only its Table 4 fault complement.
    fn table4_build(id: ProfileId) -> DbmsProfile {
        match id {
            ProfileId::MysqlLike => DbmsProfile {
                info: ProfileInfo {
                    name: "MySQL-like".into(),
                    version: "8.0.28-sim".into(),
                    db_engines_rank: Some(2),
                    stack_overflow_rank: Some(1),
                    github_stars: Some("8.0k"),
                    loc: "3.8M",
                    first_release: 1995,
                },
                default_equi_algo: JoinAlgo::HashJoin,
                default_theta_algo: JoinAlgo::BlockNestedLoop,
                default_semijoin_transform: true,
                default_materialization: true,
                join_buffer_rows: 256,
                faults: FaultSet::of(&[
                    FaultKind::SemiJoinWrongResults,
                    FaultKind::HashJoinMaterializationZeroSplit,
                    FaultKind::SemiJoinUnknownData,
                    FaultKind::LeftHashJoinSubqueryNull,
                    FaultKind::AntiJoinMaterializationNullDrop,
                    FaultKind::ConstantCacheNullSafeEq,
                    FaultKind::HashJoinVarcharViaDouble,
                ]),
            },
            ProfileId::MariadbLike => DbmsProfile {
                info: ProfileInfo {
                    name: "MariaDB-like".into(),
                    version: "10.8.2-sim".into(),
                    db_engines_rank: Some(12),
                    stack_overflow_rank: Some(7),
                    github_stars: Some("4.3k"),
                    loc: "3.6M",
                    first_release: 2009,
                },
                default_equi_algo: JoinAlgo::BlockNestedLoopHashed,
                default_theta_algo: JoinAlgo::BlockNestedLoop,
                default_semijoin_transform: true,
                default_materialization: true,
                join_buffer_rows: 128,
                faults: FaultSet::of(&[
                    FaultKind::BkaDisallowedNullToEmpty,
                    FaultKind::BnlhDisallowedBlankValues,
                    FaultKind::OuterJoinCacheEmptyPad,
                    FaultKind::JoinBufferLimitDropsTail,
                    FaultKind::JoinCacheStaleRow,
                ]),
            },
            ProfileId::TidbLike => DbmsProfile {
                info: ProfileInfo {
                    name: "TiDB-like".into(),
                    version: "5.4.0-sim".into(),
                    db_engines_rank: Some(96),
                    stack_overflow_rank: None,
                    github_stars: Some("31.8k"),
                    loc: "0.8M",
                    first_release: 2017,
                },
                default_equi_algo: JoinAlgo::IndexJoin,
                default_theta_algo: JoinAlgo::NestedLoop,
                default_semijoin_transform: false,
                default_materialization: true,
                join_buffer_rows: 256,
                faults: FaultSet::of(&[
                    FaultKind::MergeJoinOuterNullLoss,
                    FaultKind::MergeJoinNegativeZeroMiss,
                    FaultKind::MergeJoinVarcharEmpty,
                    FaultKind::MergeJoinNullInsteadOfValue,
                    FaultKind::MergeJoinDropsLastRun,
                ]),
            },
            ProfileId::XdbLike => DbmsProfile {
                info: ProfileInfo {
                    name: "X-DB-like".into(),
                    version: "beta 8.0.18-sim".into(),
                    db_engines_rank: None,
                    stack_overflow_rank: None,
                    github_stars: None,
                    loc: "(proprietary)",
                    first_release: 2019,
                },
                default_equi_algo: JoinAlgo::HashJoin,
                default_theta_algo: JoinAlgo::NestedLoop,
                default_semijoin_transform: true,
                default_materialization: false,
                join_buffer_rows: 256,
                faults: FaultSet::of(&[
                    FaultKind::LeftToInnerNullZeroConfusion,
                    FaultKind::HashJoinNullMatchesEmpty,
                    FaultKind::SemiJoinFloatPrecision,
                ]),
            },
        }
    }

    /// A fault-free build of the same profile (used to validate that TQS
    /// reports no bugs on a correct engine, and by ablation baselines).
    pub fn pristine(id: ProfileId) -> DbmsProfile {
        let mut p = DbmsProfile::build(id);
        p.faults = FaultSet::none();
        p
    }

    /// The columnar (vectorized) build of `id`: same optimizer defaults and
    /// hint dialect, but executed batch-at-a-time over column vectors by
    /// [`crate::columnar::ColumnarDatabase`], with the columnar fault
    /// complement ([`FaultKind::COLUMNAR`]) instead of the Table 4 faults.
    pub fn columnar(id: ProfileId) -> DbmsProfile {
        let mut p = DbmsProfile::table4_build(id);
        p.info.name = format!("{} [columnar]", p.info.name);
        p.info.version = format!("{}-col", p.info.version);
        p.faults = FaultSet::of(&FaultKind::COLUMNAR);
        for f in FaultKind::DML {
            p.faults.enable(f);
        }
        p
    }

    /// A fault-free columnar build (the reference side of cross-engine
    /// differential testing, and the parity baseline for the property tests).
    pub fn columnar_pristine(id: ProfileId) -> DbmsProfile {
        let mut p = DbmsProfile::columnar(id);
        p.faults = FaultSet::none();
        p
    }

    /// The disk build of `id`: same optimizer defaults and hint dialect, but
    /// scanning its tables out of the disk-backed page store
    /// ([`crate::disk::DiskDatabase`]), with the storage-layer fault
    /// complement ([`FaultKind::DISK`]) instead of the Table 4 faults.
    pub fn disk(id: ProfileId) -> DbmsProfile {
        let mut p = DbmsProfile::table4_build(id);
        p.info.name = format!("{} [disk]", p.info.name);
        p.info.version = format!("{}-disk", p.info.version);
        p.faults = FaultSet::of(&FaultKind::DISK);
        for f in FaultKind::DML {
            p.faults.enable(f);
        }
        p
    }

    /// A fault-free disk build (the parity baseline for the disk property
    /// tests and the third member of three-way differential panels).
    pub fn disk_pristine(id: ProfileId) -> DbmsProfile {
        let mut p = DbmsProfile::disk(id);
        p.faults = FaultSet::none();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_profiles_with_table_4_fault_counts() {
        // Table 4 counts per profile, plus the shared DML complement every
        // faulty build carries.
        let counts: Vec<usize> = ProfileId::ALL
            .iter()
            .map(|id| {
                DbmsProfile::build(*id)
                    .faults
                    .kinds()
                    .iter()
                    .filter(|f| f.dbms() != "DML")
                    .count()
            })
            .collect();
        assert_eq!(counts, vec![7, 5, 5, 3]);
        for id in ProfileId::ALL {
            let p = DbmsProfile::build(id);
            for f in FaultKind::DML {
                assert!(p.faults.contains(f), "{id:?} missing {f:?}");
            }
        }
    }

    #[test]
    fn faults_are_attributed_to_their_own_profile() {
        for id in ProfileId::ALL {
            let p = DbmsProfile::build(id);
            for f in p.faults.kinds() {
                assert!(
                    f.dbms() == id.name() || f.dbms() == "DML",
                    "{f:?} attributed to {}",
                    f.dbms()
                );
            }
        }
    }

    #[test]
    fn pristine_profiles_have_no_faults() {
        for id in ProfileId::ALL {
            assert!(DbmsProfile::pristine(id).faults.is_empty());
            assert_eq!(
                DbmsProfile::pristine(id).info.name,
                DbmsProfile::build(id).info.name
            );
        }
    }

    #[test]
    fn table_3_metadata_is_present() {
        let mysql = DbmsProfile::build(ProfileId::MysqlLike);
        assert_eq!(mysql.info.db_engines_rank, Some(2));
        assert_eq!(mysql.info.first_release, 1995);
        let tidb = DbmsProfile::build(ProfileId::TidbLike);
        assert_eq!(tidb.info.github_stars, Some("31.8k"));
    }

    #[test]
    fn columnar_builds_carry_the_columnar_complement() {
        for id in ProfileId::ALL {
            let p = DbmsProfile::columnar(id);
            assert!(p.info.name.contains("[columnar]"));
            assert_eq!(
                p.faults.len(),
                FaultKind::COLUMNAR.len() + FaultKind::DML.len()
            );
            for f in p.faults.kinds() {
                assert!(
                    f.dbms() == "Columnar" || f.dbms() == "DML",
                    "{f:?} attributed to {}",
                    f.dbms()
                );
            }
            assert!(DbmsProfile::columnar_pristine(id).faults.is_empty());
        }
    }

    #[test]
    fn disk_builds_carry_the_disk_complement() {
        for id in ProfileId::ALL {
            let p = DbmsProfile::disk(id);
            assert!(p.info.name.contains("[disk]"));
            assert!(p.info.version.ends_with("-disk"));
            assert_eq!(p.faults.len(), FaultKind::DISK.len() + FaultKind::DML.len());
            for f in p.faults.kinds() {
                assert!(
                    f.dbms() == "Disk" || f.dbms() == "DML",
                    "{f:?} attributed to {}",
                    f.dbms()
                );
            }
            assert!(DbmsProfile::disk_pristine(id).faults.is_empty());
        }
    }

    #[test]
    fn default_algorithms_differ_across_profiles() {
        let algos: std::collections::HashSet<_> = ProfileId::ALL
            .iter()
            .map(|id| DbmsProfile::build(*id).default_equi_algo)
            .collect();
        assert!(algos.len() >= 3);
    }
}
