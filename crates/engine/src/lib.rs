//! # tqs-engine
//!
//! A from-scratch, in-memory relational engine standing in for the DBMSs the
//! paper tests (MySQL, MariaDB, TiDB, X-DB):
//!
//! * [`plan`] — physical plans, seven join algorithms, EXPLAIN.
//! * [`engine`] — the optimizer (hint- and optimizer_switch-steerable) and
//!   the executor entry points.
//! * [`exec`] — physical operators with fault interception points.
//! * [`columnar`] — the second engine: a columnar, batch-at-a-time executor
//!   sharing the optimizer but carrying its own fault complement.
//! * [`disk`] — the third engine: disk-backed execution over the `tqs-pager`
//!   page store (buffer pool, WAL, B+trees), with a storage-layer fault
//!   complement and crash-fault injection.
//! * [`faults`] — the 20-entry fault catalog modeled on Table 4, plus the
//!   columnar and disk complements.
//! * [`profiles`] — the four simulated DBMS builds with their latent faults.
//!
//! The engine is *correct* when its fault set is empty; every wrong answer is
//! produced by an explicitly enabled fault that only fires on a specific
//! physical plan and data corner case, which is what makes hint-steered,
//! ground-truth-verified testing (TQS) necessary to find them.

pub mod cancel;
pub mod columnar;
pub mod disk;
pub mod dml;
pub mod engine;
pub mod exec;
pub mod faults;
pub mod plan;
pub mod profiles;

pub use cancel::{CancelGuard, CancelToken};
pub use columnar::{ColumnarDatabase, ColumnarRel};
pub use disk::{DiskDatabase, COMMIT_BATCH_ROWS};
pub use dml::{DmlOp, DmlOutcome};
pub use engine::{Database, EngineError, ExecOutcome};
pub use exec::{ExecContext, Rel};
pub use faults::{FaultKind, FaultSet, Severity, TriggerContext};
pub use plan::{JoinAlgo, PhysicalJoin, PhysicalPlan, SubqueryPlan};
pub use profiles::{DbmsProfile, ProfileId, ProfileInfo};

#[cfg(test)]
mod proptests {
    use crate::engine::Database;
    use crate::profiles::{DbmsProfile, ProfileId};
    use proptest::prelude::*;
    use tqs_sql::types::{ColumnDef, ColumnType};
    use tqs_sql::value::Value;
    use tqs_storage::{Catalog, Row, Table};

    fn make_db(rows_a: &[(i64, Option<i64>)], rows_b: &[i64]) -> Database {
        let mut cat = Catalog::new();
        let mut a = Table::new(
            "a",
            vec![
                ColumnDef::new("id", ColumnType::BigInt { unsigned: false }).not_null(),
                ColumnDef::new("fk", ColumnType::Int { unsigned: false }),
            ],
        )
        .with_primary_key(vec!["id"]);
        for (id, fk) in rows_a {
            a.push_row(Row::new(vec![
                Value::Int(*id),
                fk.map(Value::Int).unwrap_or(Value::Null),
            ]))
            .unwrap();
        }
        cat.add_table(a);
        let mut b = Table::new(
            "b",
            vec![ColumnDef::new("id", ColumnType::Int { unsigned: false }).not_null()],
        )
        .with_primary_key(vec!["id"]);
        for id in rows_b {
            b.push_row(Row::new(vec![Value::Int(*id)])).unwrap();
        }
        cat.add_table(b);
        Database::new(cat, DbmsProfile::pristine(ProfileId::MysqlLike))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// On a pristine engine, every join algorithm hint returns the same
        /// bag for the same query — the differential-testing invariant.
        #[test]
        fn pristine_engine_is_plan_invariant(
            rows_a in proptest::collection::vec((0i64..20, proptest::option::of(0i64..10)), 1..25),
            rows_b in proptest::collection::vec(0i64..10, 1..10),
        ) {
            // dedupe primary keys
            let mut seen = std::collections::HashSet::new();
            let rows_a: Vec<(i64, Option<i64>)> =
                rows_a.into_iter().filter(|(id, _)| seen.insert(*id)).collect();
            let mut seen = std::collections::HashSet::new();
            let rows_b: Vec<i64> = rows_b.into_iter().filter(|id| seen.insert(*id)).collect();
            let db = make_db(&rows_a, &rows_b);
            let base = "SELECT a.id, b.id FROM a {} b ON a.fk = b.id";
            for join_kw in ["JOIN", "LEFT OUTER JOIN"] {
                let plain = db.execute_sql(&base.replace("{}", join_kw)).unwrap();
                for hint in ["HASH_JOIN(b)", "MERGE_JOIN(b)", "NL_JOIN(b)", "INDEX_JOIN(b)"] {
                    let hinted = db
                        .execute_sql(&format!(
                            "SELECT /*+ {hint} */ a.id, b.id FROM a {join_kw} b ON a.fk = b.id"
                        ))
                        .unwrap();
                    prop_assert!(
                        plain.result.same_bag(&hinted.result),
                        "{join_kw} with {hint} diverged on a pristine engine"
                    );
                    prop_assert!(hinted.fired.is_empty());
                }
            }
        }
    }
}
