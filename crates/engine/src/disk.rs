//! The third simulated engine: disk-backed execution over the page store.
//!
//! Where [`crate::engine::Database`] scans in-memory tables and
//! [`crate::columnar::ColumnarDatabase`] executes batch-at-a-time,
//! [`DiskDatabase`] keeps every table in a `tqs-pager` [`DiskStore`] — a
//! buffer pool over fixed-size pages, a write-ahead log with redo recovery,
//! and one rowid-keyed B+tree per table — and materializes its scans from
//! disk at statement time. The optimizer, subquery machinery and the
//! projection/aggregation tail are shared with the row engine, so on
//! fault-free builds the two are answer-identical by construction (scans
//! return rows in rowid order, which is insertion order).
//!
//! What differs is the storage layer — and therefore the *fault complement*:
//! the disk build carries [`FaultKind::DISK`] (torn page writes, WAL records
//! lost before fsync, stale buffer frames, split bookkeeping loss, double
//! redo replay), which cannot occur in either in-memory engine, and none of
//! their faults. The corruption lives in the page store's scan metadata
//! ([`LeafScan`]/[`TableScan`]), but whether a query *observes* it depends on
//! the access path the optimizer picks — the same steer-to-expose structure
//! as every other fault in the catalog.
//!
//! Crash-fault injection is first-class: [`DiskDatabase::arm_crash`] plants a
//! one-shot process kill at a [`CrashPoint`] inside the next commit,
//! [`DiskDatabase::recover`] reopens the files, replays the WAL and resumes
//! the interrupted catalog load. The crash-recovery suite pins that committed
//! batches survive byte-for-byte and uncommitted ones vanish entirely.

use crate::dml::{DmlOp, DmlOutcome};
use crate::engine::{Database, EngineError, ExecOutcome};
use crate::exec::ExecContext;
use crate::faults::{FaultKind, TriggerContext};
use crate::profiles::DbmsProfile;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use tqs_pager::{CrashPoint, DiskStore, RecoveryStats, TableScan, DEFAULT_POOL_FRAMES};
use tqs_sql::ast::{DmlStmt, SelectStmt};
use tqs_sql::hints::HintSet;
use tqs_sql::parser::{parse_dml, parse_stmt};
use tqs_sql::value::Value;
use tqs_storage::{Catalog, Row};

/// Rows per commit batch when loading a catalog into the page store.
/// Deliberately *not* a multiple of the leaf capacity, so commit boundaries
/// land mid-leaf: a leaf can be flushed half-full and grow in a later batch,
/// giving the stale-frame fault a version gap to serve and the WAL-loss fault
/// a tail batch that straddles leaves.
pub const COMMIT_BATCH_ROWS: usize = 48;

/// Store table holding the committed DML delta, one encoded [`DmlOp`] per
/// row (see [`DmlOp::encode`]). It lives in the page store but never in the
/// SQL catalog, so scans and faults can't touch it; its batches ride the
/// ordinary WAL commit protocol, which is what makes a DML commit a *real*
/// commit boundary for crash injection.
pub const DML_LOG_TABLE: &str = "__dml_log";

static NEXT_STORE: AtomicU64 = AtomicU64::new(0);

fn storage_err(e: io::Error) -> EngineError {
    EngineError::Storage(e.to_string())
}

/// The disk-backed simulated DBMS: shares the optimizer, session switches and
/// subquery machinery with [`Database`], but scans its tables out of a
/// [`DiskStore`] rooted in a per-instance temp directory (removed on drop).
#[derive(Debug)]
pub struct DiskDatabase {
    inner: Database,
    store: DiskStore,
    dir: PathBuf,
    /// The catalog as loaded (pre-DML) — the authoritative content of the
    /// store's base tables, which interrupted loads resume from.
    base: Catalog,
    /// Committed DML ops since load, in order; `inner.catalog` equals `base`
    /// with these (plus any open transaction's ops) replayed.
    committed_ops: Vec<DmlOp>,
    /// Crash point to arm on the store at the start of the next load (the
    /// load replaces the store, so the request must outlive it).
    pending_crash: Option<CrashPoint>,
    last_recovery: Option<RecoveryStats>,
}

impl DiskDatabase {
    pub fn new(catalog: Catalog, profile: DbmsProfile) -> Result<Self, EngineError> {
        let n = NEXT_STORE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("tqs-disk-{}-{n}", std::process::id()));
        let store = DiskStore::create(&dir, DEFAULT_POOL_FRAMES).map_err(storage_err)?;
        let mut db = DiskDatabase {
            inner: Database::new(Catalog::new(), profile),
            store,
            dir,
            base: Catalog::new(),
            committed_ops: Vec::new(),
            pending_crash: None,
            last_recovery: None,
        };
        db.load_catalog(catalog)?;
        Ok(db)
    }

    pub fn catalog(&self) -> &Catalog {
        &self.inner.catalog
    }

    pub fn profile(&self) -> &DbmsProfile {
        &self.inner.profile
    }

    /// The directory holding this instance's data and WAL files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The underlying page store (crash-recovery tests compare its scans
    /// byte-for-byte across a kill/reopen cycle).
    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    pub fn store_mut(&mut self) -> &mut DiskStore {
        &mut self.store
    }

    /// Stats of the WAL replay performed by the most recent
    /// [`DiskDatabase::recover`], if any.
    pub fn last_recovery(&self) -> Option<RecoveryStats> {
        self.last_recovery
    }

    /// Did an injected crash kill the store? (All statements fail until
    /// [`DiskDatabase::recover`] reopens it.)
    pub fn is_poisoned(&self) -> bool {
        self.store.is_poisoned()
    }

    pub fn apply_switch(&mut self, s: tqs_sql::hints::SessionSwitch) {
        self.inner.apply_switch(s);
    }

    pub fn reset_switches(&mut self) {
        self.inner.reset_switches();
    }

    /// Wipe the page store and load `catalog` into it, one B+tree per table,
    /// committed every [`COMMIT_BATCH_ROWS`] rows.
    pub fn load_catalog(&mut self, catalog: Catalog) -> Result<(), EngineError> {
        self.store = DiskStore::create(&self.dir, DEFAULT_POOL_FRAMES).map_err(storage_err)?;
        self.store.set_crash_point(self.pending_crash.take());
        // A fresh load resets the whole DML history with the store.
        self.base = catalog.clone();
        self.committed_ops.clear();
        self.inner.catalog = catalog;
        self.inner.clear_txn();
        self.last_recovery = None;
        for name in self.base.table_names() {
            self.store.create_table(&name).map_err(storage_err)?;
        }
        self.store
            .create_table(DML_LOG_TABLE)
            .map_err(storage_err)?;
        self.store.commit().map_err(storage_err)?;
        for name in self.base.table_names() {
            let rows: Vec<Vec<Value>> = self
                .base
                .table(&name)
                .map(|t| t.rows.iter().map(|r| r.values.clone()).collect())
                .unwrap_or_default();
            for chunk in rows.chunks(COMMIT_BATCH_ROWS) {
                self.store.insert_batch(&name, chunk).map_err(storage_err)?;
            }
        }
        Ok(())
    }

    /// Arm a one-shot process kill at `point` inside the next commit (the
    /// next [`DiskDatabase::load_catalog`] or catch-up load).
    pub fn arm_crash(&mut self, point: CrashPoint) {
        self.pending_crash = Some(point);
        self.store.set_crash_point(Some(point));
    }

    /// Reopen the store's files, replay the WAL, resume any interrupted
    /// catalog load, then rebuild the session's view of the data: base
    /// catalog plus exactly the DML ops whose log batches survived the WAL
    /// replay. Committed transactions come back in full, in-flight ones
    /// vanish entirely, and running recovery again is a no-op (idempotent).
    pub fn recover(&mut self) -> Result<RecoveryStats, EngineError> {
        self.pending_crash = None;
        let (store, stats) =
            DiskStore::open(&self.dir, DEFAULT_POOL_FRAMES).map_err(storage_err)?;
        self.store = store;
        self.last_recovery = Some(stats);
        self.resume_load()?;
        self.committed_ops = self.read_log_ops()?;
        // Anything not in the log (an open transaction, an auto-commit whose
        // log batch missed its fsync) is in-flight and lost with the crash.
        self.inner.clear_txn();
        let mut catalog = self.base.clone();
        for op in &self.committed_ops {
            op.apply(&mut catalog);
        }
        self.inner.catalog = catalog;
        Ok(stats)
    }

    /// Catch the store up to the loaded base catalog: recreate missing
    /// tables and insert each table's missing row suffix. Idempotent.
    fn resume_load(&mut self) -> Result<(), EngineError> {
        let mut names = self.base.table_names();
        names.push(DML_LOG_TABLE.to_string());
        let mut created = false;
        for name in &names {
            if !self
                .store
                .tables()
                .iter()
                .any(|t| t.name.eq_ignore_ascii_case(name))
            {
                self.store.create_table(name).map_err(storage_err)?;
                created = true;
            }
        }
        if created {
            self.store.commit().map_err(storage_err)?;
        }
        for name in self.base.table_names() {
            let have = self.store.rows_inserted(&name).map_err(storage_err)? as usize;
            let missing: Vec<Vec<Value>> = self
                .base
                .table(&name)
                .map(|t| t.rows.iter().skip(have).map(|r| r.values.clone()).collect())
                .unwrap_or_default();
            for chunk in missing.chunks(COMMIT_BATCH_ROWS) {
                self.store.insert_batch(&name, chunk).map_err(storage_err)?;
            }
        }
        Ok(())
    }

    /// Decode the committed DML delta out of the log table, in rowid
    /// (= commit) order.
    fn read_log_ops(&mut self) -> Result<Vec<DmlOp>, EngineError> {
        if !self
            .store
            .tables()
            .iter()
            .any(|t| t.name.eq_ignore_ascii_case(DML_LOG_TABLE))
        {
            return Ok(Vec::new());
        }
        let scan = self.store.scan(DML_LOG_TABLE).map_err(storage_err)?;
        scan.into_rows()
            .into_iter()
            .map(|(_, vals)| DmlOp::decode(&vals))
            .collect()
    }

    /// Execute one DML / transaction-control statement. Mutation semantics,
    /// transactions and the DML fault complement are the shared row
    /// implementation ([`Database::execute_dml`]); what this layer adds is
    /// durability: at every commit boundary — `COMMIT`, `ROLLBACK` (which
    /// persists nothing unless a fault leaks a row) and auto-committed
    /// statements outside a transaction — the effective ops are appended to
    /// [`DML_LOG_TABLE`] through the store's full WAL commit protocol, so an
    /// armed [`CrashPoint`] kills the transaction at a real commit boundary.
    pub fn execute_dml(&mut self, stmt: &DmlStmt) -> Result<DmlOutcome, EngineError> {
        if self.store.is_poisoned() {
            return Err(EngineError::Storage(
                "store is poisoned by an injected crash; call recover() first".into(),
            ));
        }
        let out = self.inner.execute_dml(stmt)?;
        let at_commit_boundary = match stmt {
            DmlStmt::Begin => false,
            DmlStmt::Commit | DmlStmt::Rollback => true,
            _ => !self.inner.in_txn(),
        };
        if at_commit_boundary {
            self.persist_ops(&out.ops)?;
        }
        Ok(out)
    }

    /// Execute DML text (parses one statement, then executes).
    pub fn execute_dml_sql(&mut self, sql: &str) -> Result<DmlOutcome, EngineError> {
        let stmt = parse_dml(sql)?;
        self.execute_dml(&stmt)
    }

    /// Is a transaction open on this session?
    pub fn in_txn(&self) -> bool {
        self.inner.in_txn()
    }

    /// Committed DML ops since load (what a crash at this instant would
    /// preserve).
    pub fn committed_ops(&self) -> &[DmlOp] {
        &self.committed_ops
    }

    /// Append `ops` to the log table as one commit batch. Runs the commit
    /// protocol even for an empty delta (an empty `COMMIT` is still a
    /// commit), so an armed crash point always fires at the boundary.
    fn persist_ops(&mut self, ops: &[DmlOp]) -> Result<(), EngineError> {
        if ops.is_empty() {
            self.store.commit().map_err(storage_err)?;
        } else {
            let rows: Vec<Vec<Value>> = ops.iter().map(DmlOp::encode).collect();
            self.store
                .insert_batch(DML_LOG_TABLE, &rows)
                .map_err(storage_err)?;
        }
        self.committed_ops.extend(ops.iter().cloned());
        Ok(())
    }

    /// The plan the (shared) optimizer would choose.
    pub fn plan(&self, stmt: &SelectStmt) -> Result<crate::plan::PhysicalPlan, EngineError> {
        self.inner.plan(stmt)
    }

    /// EXPLAIN: the shared plan plus the disk execution note.
    pub fn explain(&self, stmt: &SelectStmt) -> Result<String, EngineError> {
        let mut out = self.inner.explain(stmt)?;
        out.push_str(&format!(
            "-> executor: disk (B+tree page store, {DEFAULT_POOL_FRAMES}-frame buffer pool, WAL)\n"
        ));
        Ok(out)
    }

    /// Execute a transformed query: apply the hint set's session switches,
    /// splice its hints into the statement, execute, then restore switches.
    pub fn execute_with_hints(
        &mut self,
        stmt: &SelectStmt,
        hints: &HintSet,
    ) -> Result<ExecOutcome, EngineError> {
        let saved = self.inner.switches.clone();
        for s in &hints.switches {
            self.inner.apply_switch(*s);
        }
        let mut hinted = stmt.clone();
        hinted.hints.extend(hints.hints.iter().cloned());
        let out = self.execute(&hinted);
        self.inner.switches = saved;
        out
    }

    /// Execute SQL text (parses, then executes).
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecOutcome, EngineError> {
        let stmt = parse_stmt(sql)?;
        self.execute(&stmt)
    }

    /// Execute a statement: scan every table out of the page store (applying
    /// whatever storage faults the chosen access path exposes), then run the
    /// shared row pipeline over the scanned catalog.
    pub fn execute(&mut self, stmt: &SelectStmt) -> Result<ExecOutcome, EngineError> {
        let plan = self.inner.plan(stmt)?;
        let mut ctx = ExecContext::new(self.inner.profile.faults.clone());
        ctx.switched_off = self.inner.switched_off_names();
        ctx.materialization = self.inner.materialization_enabled(stmt);
        ctx.subquery_present = stmt.has_subquery();
        ctx.semi_strategy = self.inner.semi_strategy(stmt);
        // The shadow row pipeline re-checks per join; this covers the scan.
        ctx.check_cancelled()?;
        let trigger = match plan.joins.first() {
            Some(pj) => ctx.trigger_ctx(pj),
            None => TriggerContext {
                semi_strategy: ctx.semi_strategy,
                materialization: ctx.materialization,
                subquery_present: ctx.subquery_present,
                switched_off: ctx.switched_off.clone(),
                ..Default::default()
            },
        };

        let mut catalog = self.scan_catalog(&trigger, &mut ctx)?;
        // The scan returns base-table content; the session's DML delta —
        // committed ops, then the open transaction's own writes — replays on
        // top. Ops clamp out-of-range indices, so replay stays well-defined
        // even over scans a storage fault corrupted.
        for op in self.committed_ops.iter().chain(self.inner.txn_ops()) {
            op.apply(&mut catalog);
        }
        // The shared pipeline runs over the scanned (possibly corrupted)
        // rows. The shadow's fault set holds only DISK kinds, which no row
        // execution path checks, so nothing extra can fire inside it.
        let mut shadow = self.inner.clone();
        shadow.catalog = catalog;
        let out = shadow.execute(stmt)?;
        let mut fired = ctx.fired;
        for f in out.fired {
            if !fired.contains(&f) {
                fired.push(f);
            }
        }
        Ok(ExecOutcome {
            result: out.result,
            plan: out.plan,
            fired,
            profile: out.profile,
        })
    }

    /// Scan every table out of the store into a fresh catalog, applying the
    /// active storage faults to each scan.
    fn scan_catalog(
        &mut self,
        trigger: &TriggerContext,
        ctx: &mut ExecContext,
    ) -> Result<Catalog, EngineError> {
        let mut catalog = Catalog::new();
        for name in self.inner.catalog.table_names() {
            let scan = self.store.scan(&name).map_err(storage_err)?;
            let rows = faulted_rows(scan, trigger, ctx);
            let src = self
                .inner
                .catalog
                .table(&name)
                .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
            let mut t = src.clone();
            t.rows = rows.into_iter().map(Row::new).collect();
            catalog.add_table(t);
        }
        Ok(catalog)
    }
}

impl Drop for DiskDatabase {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Apply the active disk faults to one table scan and flatten it to rows.
///
/// Each fault corrupts exactly the structure its description names: the
/// stale-frame fault rewinds a leaf to its first-flushed cell count, the
/// split fault drops the high key of split-origin leaves, the torn-write
/// fault halves the tail leaf, the WAL-loss fault erases the last commit
/// batch's rowid range, and the double-replay fault duplicates that batch's
/// first row.
fn faulted_rows(
    scan: TableScan,
    trigger: &TriggerContext,
    ctx: &mut ExecContext,
) -> Vec<Vec<Value>> {
    let torn = ctx.faults.active(FaultKind::DiskTornPageWrite, trigger);
    let wal_lost = ctx
        .faults
        .active(FaultKind::DiskWalLostBeforeFsync, trigger);
    let stale = ctx.faults.active(FaultKind::DiskStaleFrameRead, trigger);
    let split_loss = ctx.faults.active(FaultKind::DiskSplitHighKeyLoss, trigger);
    let double = ctx
        .faults
        .active(FaultKind::DiskRecoveryDoubleReplay, trigger);

    let last_batch_start = scan.last_batch_start;
    let last_batch_rows = scan.last_batch_rows;
    let n_leaves = scan.leaves.len();
    let mut rows: Vec<(u64, Vec<Value>)> = Vec::with_capacity(scan.row_count());
    for (li, leaf) in scan.leaves.into_iter().enumerate() {
        let mut cells = leaf.rows;
        if stale {
            if let Some(c) = leaf.first_flush_cells {
                if c < cells.len() {
                    cells.truncate(c);
                    ctx.fire(FaultKind::DiskStaleFrameRead);
                }
            }
        }
        if split_loss && leaf.split_origin && !cells.is_empty() {
            cells.pop();
            ctx.fire(FaultKind::DiskSplitHighKeyLoss);
        }
        if torn && li + 1 == n_leaves && cells.len() >= 2 {
            let keep = cells.len().div_ceil(2);
            cells.truncate(keep);
            ctx.fire(FaultKind::DiskTornPageWrite);
        }
        rows.extend(cells);
    }
    if wal_lost && last_batch_rows > 0 {
        let lo = last_batch_start;
        let hi = lo + last_batch_rows as u64;
        let before = rows.len();
        rows.retain(|(rid, _)| *rid < lo || *rid >= hi);
        if rows.len() != before {
            ctx.fire(FaultKind::DiskWalLostBeforeFsync);
        }
    }
    if double && last_batch_rows > 0 {
        if let Some(pos) = rows.iter().position(|(rid, _)| *rid == last_batch_start) {
            let dup = rows[pos].clone();
            rows.insert(pos + 1, dup);
            ctx.fire(FaultKind::DiskRecoveryDoubleReplay);
        }
    }
    rows.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSet;
    use crate::profiles::ProfileId;
    use tqs_sql::types::{ColumnDef, ColumnType};
    use tqs_storage::Table;

    /// 100-row t1 (NULL every 10th col1) + 25-row t2. Big enough that t1
    /// spans several leaves, splits, and spans three commit batches — so
    /// every storage fault has structure to corrupt.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut t1 = Table::new(
            "t1",
            vec![
                ColumnDef::new("id", ColumnType::BigInt { unsigned: false }).not_null(),
                ColumnDef::new("col1", ColumnType::Int { unsigned: false }),
            ],
        )
        .with_primary_key(vec!["id"]);
        for i in 1..=100i64 {
            let c = if i % 10 == 0 {
                Value::Null
            } else {
                Value::Int((i % 20) + 1)
            };
            t1.push_row(Row::new(vec![Value::Int(i), c])).unwrap();
        }
        cat.add_table(t1);
        let mut t2 = Table::new(
            "t2",
            vec![
                ColumnDef::new("id", ColumnType::BigInt { unsigned: false }).not_null(),
                ColumnDef::new("col1", ColumnType::Varchar(100)),
            ],
        )
        .with_primary_key(vec!["id"]);
        for i in 1..=25i64 {
            t2.push_row(Row::new(vec![Value::Int(i), Value::str(format!("v{i}"))]))
                .unwrap();
        }
        cat.add_table(t2);
        cat
    }

    fn disk(id: ProfileId) -> DiskDatabase {
        DiskDatabase::new(catalog(), DbmsProfile::disk_pristine(id)).unwrap()
    }

    #[test]
    fn disk_matches_row_engine_when_pristine() {
        let queries = [
            "SELECT t1.id FROM t1 WHERE t1.col1 > 10",
            "SELECT t1.id, t2.col1 FROM t1 INNER JOIN t2 ON t1.col1 = t2.id",
            "SELECT t1.id FROM t1 LEFT OUTER JOIN t2 ON t1.col1 = t2.id",
            "SELECT t1.id FROM t1 WHERE t1.col1 IN (SELECT t2.id FROM t2)",
            "SELECT t2.col1, COUNT(*) AS cnt FROM t1 JOIN t2 ON t1.col1 = t2.id GROUP BY t2.col1",
            "SELECT DISTINCT t2.col1 FROM t2 JOIN t1 ON t2.id = t1.col1",
        ];
        for id in ProfileId::ALL {
            let mut d = disk(id);
            let row = Database::new(catalog(), DbmsProfile::pristine(id));
            for q in queries {
                let a = d.execute_sql(q).unwrap_or_else(|e| panic!("{q}: {e}"));
                let b = row.execute_sql(q).unwrap();
                assert!(
                    a.result.same_bag(&b.result),
                    "{id:?} diverged on {q}: disk {} vs row {}",
                    a.result.pretty(),
                    b.result.pretty()
                );
                assert!(a.fired.is_empty());
            }
        }
    }

    #[test]
    fn each_disk_fault_fires_and_corrupts_the_answer() {
        // (fault, profile whose default access path exposes it, query)
        let join = "SELECT t1.id, t2.col1 FROM t1 INNER JOIN t2 ON t1.col1 = t2.id";
        let cases = [
            (FaultKind::DiskTornPageWrite, ProfileId::MysqlLike, join),
            (
                FaultKind::DiskWalLostBeforeFsync,
                ProfileId::MysqlLike,
                join,
            ),
            (FaultKind::DiskStaleFrameRead, ProfileId::MysqlLike, join),
            (FaultKind::DiskSplitHighKeyLoss, ProfileId::TidbLike, join),
            (
                FaultKind::DiskRecoveryDoubleReplay,
                ProfileId::MysqlLike,
                "SELECT t1.id FROM t1 WHERE t1.col1 IN (SELECT t2.id FROM t2)",
            ),
        ];
        for (kind, id, q) in cases {
            let mut seeded = DiskDatabase::new(
                catalog(),
                DbmsProfile {
                    faults: FaultSet::of(&[kind]),
                    ..DbmsProfile::disk(id)
                },
            )
            .unwrap();
            let mut clean = disk(id);
            let out = seeded.execute_sql(q).unwrap();
            let good = clean.execute_sql(q).unwrap();
            assert!(out.fired.contains(&kind), "{kind:?} did not fire on {q}");
            assert!(
                !out.result.same_bag(&good.result),
                "{kind:?} fired but did not corrupt the answer to {q}"
            );
        }
    }

    #[test]
    fn faults_do_not_fire_without_their_access_path() {
        // A single-table scan has no join algorithm to key on: the torn-write
        // and stale-frame faults stay dormant even on a seeded build.
        let mut seeded =
            DiskDatabase::new(catalog(), DbmsProfile::disk(ProfileId::MysqlLike)).unwrap();
        let mut clean = disk(ProfileId::MysqlLike);
        let q = "SELECT t1.id FROM t1 WHERE t1.col1 > 3";
        let out = seeded.execute_sql(q).unwrap();
        let good = clean.execute_sql(q).unwrap();
        assert!(out.fired.is_empty(), "fired: {:?}", out.fired);
        assert!(out.result.same_bag(&good.result));
    }

    #[test]
    fn explain_mentions_the_disk_executor() {
        let db = disk(ProfileId::TidbLike);
        let stmt = parse_stmt("SELECT t1.id FROM t1 JOIN t2 ON t1.col1 = t2.id").unwrap();
        let e = db.explain(&stmt).unwrap();
        assert!(e.contains("executor: disk"), "{e}");
    }

    #[test]
    fn dml_persists_and_matches_the_row_engine() {
        let mut d = disk(ProfileId::MysqlLike);
        let mut row = Database::new(catalog(), DbmsProfile::pristine(ProfileId::MysqlLike));
        let program = [
            "INSERT INTO t2 (id, col1) VALUES (26, 'v26'), (27, 'v27')",
            "BEGIN",
            "UPDATE t1 SET col1 = 99 WHERE t1.id BETWEEN 1 AND 3",
            "DELETE FROM t2 WHERE t2.id = 27",
            "COMMIT",
            "BEGIN",
            "DELETE FROM t1 WHERE t1.col1 = 99",
            "ROLLBACK",
        ];
        for sql in program {
            let a = d
                .execute_dml_sql(sql)
                .unwrap_or_else(|e| panic!("{sql}: {e}"));
            let b = row.execute_dml_sql(sql).unwrap();
            assert_eq!(a.rows_affected, b.rows_affected, "{sql}");
        }
        let q = "SELECT t1.id, t1.col1 FROM t1 WHERE t1.col1 = 99";
        let a = d.execute_sql(q).unwrap();
        let b = row.execute_sql(q).unwrap();
        assert!(a.result.same_bag(&b.result), "post-DML scans diverged");
        // The delta survives a clean close/reopen cycle byte-for-byte.
        let before = d.execute_sql("SELECT t2.id FROM t2").unwrap();
        d.recover().unwrap();
        let after = d.execute_sql("SELECT t2.id FROM t2").unwrap();
        assert!(before.result.same_bag(&after.result));
    }

    #[test]
    fn crash_at_dml_commit_loses_exactly_the_inflight_txn() {
        for point in CrashPoint::ALL {
            let mut d = disk(ProfileId::MysqlLike);
            d.execute_dml_sql("INSERT INTO t2 (id, col1) VALUES (26, 'keep')")
                .unwrap();
            d.execute_dml_sql("BEGIN").unwrap();
            d.execute_dml_sql("INSERT INTO t2 (id, col1) VALUES (27, 'maybe')")
                .unwrap();
            d.arm_crash(point);
            let err = d.execute_dml_sql("COMMIT").unwrap_err();
            assert!(matches!(&err, EngineError::Storage(m) if m.contains("injected crash")));
            assert!(d.is_poisoned());
            assert!(d
                .execute_dml_sql("INSERT INTO t2 (id, col1) VALUES (28, 'no')")
                .is_err());
            d.recover().unwrap();
            let rows = d
                .execute_sql("SELECT t2.id FROM t2 WHERE t2.id > 25")
                .unwrap()
                .result;
            // The WAL fsync is the commit point: batches killed before it
            // vanish, batches killed after it survive — but the pre-crash
            // auto-commit is always there.
            let expect: &[i64] = if point.batch_is_committed() {
                &[26, 27]
            } else {
                &[26]
            };
            let got: Vec<i64> = rows
                .rows
                .iter()
                .map(|r| match r.get(0) {
                    Value::Int(i) => *i,
                    other => panic!("{other}"),
                })
                .collect();
            let mut got = got;
            got.sort_unstable();
            assert_eq!(got, expect, "{point}");
            assert!(!d.in_txn(), "{point}: recovery must drop the open txn");
        }
    }

    #[test]
    fn crash_mid_load_poisons_then_recovery_resumes_the_load() {
        for point in CrashPoint::ALL {
            let mut db = disk(ProfileId::MysqlLike);
            db.arm_crash(point);
            let err = db.load_catalog(catalog()).unwrap_err();
            assert!(
                matches!(&err, EngineError::Storage(m) if m.contains("injected crash")),
                "{point}: {err}"
            );
            assert!(db.is_poisoned());
            assert!(matches!(
                db.execute_sql("SELECT t1.id FROM t1"),
                Err(EngineError::Storage(_))
            ));
            let stats = db.recover().unwrap();
            assert_eq!(db.last_recovery(), Some(stats));
            let row = Database::new(catalog(), DbmsProfile::pristine(ProfileId::MysqlLike));
            let q = "SELECT t1.id, t2.col1 FROM t1 INNER JOIN t2 ON t1.col1 = t2.id";
            let a = db.execute_sql(q).unwrap();
            let b = row.execute_sql(q).unwrap();
            assert!(
                a.result.same_bag(&b.result),
                "{point}: post-recovery answers diverged"
            );
        }
    }
}
