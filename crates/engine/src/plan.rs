//! Physical plan representation and EXPLAIN output for the simulated DBMS.

use serde::{Deserialize, Serialize};
use tqs_sql::ast::JoinType;
use tqs_sql::hints::SemiJoinStrategy;

/// Physical join algorithms implemented by the executor. The set mirrors the
/// algorithms named in the paper's bug listings: (block) nested loop, hashed
/// join buffers (BNLH), batched key access (BKA/BKAH), classic hash join,
/// sort-merge join and index lookup join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinAlgo {
    NestedLoop,
    BlockNestedLoop,
    BlockNestedLoopHashed,
    BatchedKeyAccess,
    HashJoin,
    SortMergeJoin,
    IndexJoin,
}

impl JoinAlgo {
    pub const ALL: [JoinAlgo; 7] = [
        JoinAlgo::NestedLoop,
        JoinAlgo::BlockNestedLoop,
        JoinAlgo::BlockNestedLoopHashed,
        JoinAlgo::BatchedKeyAccess,
        JoinAlgo::HashJoin,
        JoinAlgo::SortMergeJoin,
        JoinAlgo::IndexJoin,
    ];

    pub fn name(self) -> &'static str {
        match self {
            JoinAlgo::NestedLoop => "nested loop join",
            JoinAlgo::BlockNestedLoop => "block nested loop join",
            JoinAlgo::BlockNestedLoopHashed => "block nested loop hash join (BNLH)",
            JoinAlgo::BatchedKeyAccess => "batched key access join (BKA)",
            JoinAlgo::HashJoin => "hash join",
            JoinAlgo::SortMergeJoin => "sort-merge join",
            JoinAlgo::IndexJoin => "index lookup join",
        }
    }

    /// Short operator label used in query profiles and telemetry
    /// (`join.hash`, `join.sort_merge`, ...).
    pub fn profile_label(self) -> &'static str {
        match self {
            JoinAlgo::NestedLoop => "join.nested_loop",
            JoinAlgo::BlockNestedLoop => "join.block_nested_loop",
            JoinAlgo::BlockNestedLoopHashed => "join.bnlh",
            JoinAlgo::BatchedKeyAccess => "join.bka",
            JoinAlgo::HashJoin => "join.hash",
            JoinAlgo::SortMergeJoin => "join.sort_merge",
            JoinAlgo::IndexJoin => "join.index",
        }
    }

    /// Does this algorithm match keys via a hash/encoded key rather than by
    /// direct pairwise comparison?
    pub fn uses_hashed_keys(self) -> bool {
        matches!(
            self,
            JoinAlgo::BlockNestedLoopHashed
                | JoinAlgo::BatchedKeyAccess
                | JoinAlgo::HashJoin
                | JoinAlgo::IndexJoin
        )
    }
}

/// One physical join step of a left-deep plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalJoin {
    /// Binding (alias or table name) of the right-hand input.
    pub right_binding: String,
    pub join_type: JoinType,
    pub algo: JoinAlgo,
    /// True when the outer-join simplification pass rewrote an outer join
    /// into this (inner) join.
    pub simplified_from_outer: bool,
    /// Join buffer capacity in rows, if a join buffer/cache is used.
    pub buffer_rows: Option<usize>,
}

/// Strategy chosen for IN/EXISTS subqueries in the WHERE clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubqueryPlan {
    /// Evaluate the subquery per outer row (the safe default).
    DirectPerRow,
    /// Materialize the subquery result once and probe it.
    Materialize,
    /// Transform into a semi/anti join with the given strategy.
    SemiJoinTransform(SemiJoinStrategy),
    /// Rewrite the subquery into a derived table joined with hash join.
    SubqueryToDerived,
}

impl SubqueryPlan {
    pub fn name(self) -> String {
        match self {
            SubqueryPlan::DirectPerRow => "direct".to_string(),
            SubqueryPlan::Materialize => "materialization".to_string(),
            SubqueryPlan::SemiJoinTransform(s) => format!("semijoin({})", s.name()),
            SubqueryPlan::SubqueryToDerived => "subquery_to_derived".to_string(),
        }
    }
}

/// A complete physical plan: the base scan binding, the ordered join steps,
/// and the subquery strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    pub base_binding: String,
    pub joins: Vec<PhysicalJoin>,
    pub subquery_plan: SubqueryPlan,
    /// Free-form notes from optimizer passes (simplifications, hint effects),
    /// surfaced through EXPLAIN.
    pub notes: Vec<String>,
}

impl PhysicalPlan {
    /// Render an EXPLAIN-style description.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("-> scan {}\n", self.base_binding));
        for j in &self.joins {
            out.push_str(&format!(
                "-> {} {} ({}{}{})\n",
                j.join_type.sql().to_lowercase(),
                j.right_binding,
                j.algo.name(),
                if j.simplified_from_outer {
                    ", simplified from outer join"
                } else {
                    ""
                },
                match j.buffer_rows {
                    Some(n) => format!(", join buffer {n} rows"),
                    None => String::new(),
                },
            ));
        }
        out.push_str(&format!("-> subqueries: {}\n", self.subquery_plan.name()));
        for n in &self.notes {
            out.push_str(&format!("   note: {n}\n"));
        }
        out
    }

    /// Short signature used for differential-testing comparisons ("did the
    /// hint set actually change the plan?").
    pub fn signature(&self) -> String {
        let mut s = self.base_binding.clone();
        for j in &self.joins {
            s.push_str(&format!(
                "|{}:{:?}:{:?}{}",
                j.right_binding,
                j.join_type,
                j.algo,
                if j.simplified_from_outer {
                    ":simpl"
                } else {
                    ""
                }
            ));
        }
        s.push_str(&format!("|{}", self.subquery_plan.name()));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PhysicalPlan {
        PhysicalPlan {
            base_binding: "t1".into(),
            joins: vec![
                PhysicalJoin {
                    right_binding: "t2".into(),
                    join_type: JoinType::Inner,
                    algo: JoinAlgo::HashJoin,
                    simplified_from_outer: true,
                    buffer_rows: None,
                },
                PhysicalJoin {
                    right_binding: "t3".into(),
                    join_type: JoinType::LeftOuter,
                    algo: JoinAlgo::BlockNestedLoop,
                    simplified_from_outer: false,
                    buffer_rows: Some(128),
                },
            ],
            subquery_plan: SubqueryPlan::SemiJoinTransform(SemiJoinStrategy::Materialization),
            notes: vec!["outer join simplified".into()],
        }
    }

    #[test]
    fn explain_mentions_algorithms_and_notes() {
        let e = plan().explain();
        assert!(e.contains("hash join"));
        assert!(e.contains("block nested loop join"));
        assert!(e.contains("join buffer 128 rows"));
        assert!(e.contains("simplified from outer join"));
        assert!(e.contains("semijoin(MATERIALIZATION)"));
        assert!(e.contains("note: outer join simplified"));
    }

    #[test]
    fn signatures_distinguish_plans() {
        let a = plan();
        let mut b = plan();
        b.joins[0].algo = JoinAlgo::SortMergeJoin;
        assert_ne!(a.signature(), b.signature());
        assert_eq!(a.signature(), plan().signature());
    }

    #[test]
    fn algo_metadata() {
        assert_eq!(JoinAlgo::ALL.len(), 7);
        assert!(JoinAlgo::HashJoin.uses_hashed_keys());
        assert!(JoinAlgo::IndexJoin.uses_hashed_keys());
        assert!(!JoinAlgo::NestedLoop.uses_hashed_keys());
        assert!(!JoinAlgo::SortMergeJoin.uses_hashed_keys());
    }
}
