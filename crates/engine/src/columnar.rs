//! The second simulated engine: a columnar, batch-at-a-time executor.
//!
//! Where [`crate::engine::Database`] executes row-at-a-time over [`Rel`],
//! [`ColumnarDatabase`] keeps every intermediate relation column-major
//! ([`ColumnarRel`]) and drives joins and WHERE filtering in probe batches of
//! [`ColumnarDatabase::batch_size`] rows: hashed joins encode and probe a
//! whole batch of keys at a time, and simple `column <op> literal` conjuncts
//! are evaluated as tight per-column loops over a selection bitmap instead of
//! building a row scope per tuple.
//!
//! Both engines share the optimizer ([`Database::plan`]), the subquery
//! machinery and the projection/aggregation tail, so on fault-free builds
//! they are answer-identical by construction of the shared semantics — a
//! property the workspace pins with a proptest. What differs is the physical
//! execution — and therefore the *fault complement*: the columnar build
//! carries [`FaultKind::COLUMNAR`] (batch-tail loss, NULL-mask misalignment,
//! dictionary truncation, selection-bitmap corruption), which cannot occur in
//! the row engine, and none of the Table 4 row faults. That disjointness is
//! what makes cross-engine differential testing (`DifferentialOracle` in
//! tqs-core) a meaningful oracle.

use crate::engine::{distinct, Database, EngineError, EngineSubqueries, ExecOutcome};
use crate::exec::{ColumnPruner, ExecContext, Rel, ScopeLayout};
use crate::faults::{FaultKind, TriggerContext};
use crate::plan::PhysicalJoin;
use crate::profiles::DbmsProfile;
use std::collections::HashMap;
use tqs_sql::ast::{BinOp, ColumnRef, Expr, JoinType, SelectStmt};
use tqs_sql::eval::{eval_predicate, ColumnResolver};
use tqs_sql::hints::HintSet;
use tqs_sql::parser::parse_stmt;
use tqs_sql::value::{null_safe_eq, sql_compare, KeyBuf, SqlCmp, Value};
use tqs_storage::{Catalog, Table};

/// Default number of rows per probe/filter batch.
pub const DEFAULT_BATCH_SIZE: usize = 64;

/// A column-major intermediate relation: one `Vec<Value>` per output column,
/// all of equal length.
#[derive(Debug, Clone, Default)]
pub struct ColumnarRel {
    /// (binding, column name) per column, parallel to `columns`.
    pub cols: Vec<(String, String)>,
    pub columns: Vec<Vec<Value>>,
}

impl ColumnarRel {
    pub fn scan(table: &Table, binding: &str) -> ColumnarRel {
        // `vec![v; n]` clones drop the capacity; build each Vec explicitly.
        let mut columns: Vec<Vec<Value>> = (0..table.columns.len())
            .map(|_| Vec::with_capacity(table.rows.len()))
            .collect();
        for row in &table.rows {
            for (ci, v) in row.values.iter().enumerate() {
                columns[ci].push(v.clone());
            }
        }
        ColumnarRel {
            cols: table
                .columns
                .iter()
                .map(|c| (binding.to_string(), c.name.clone()))
                .collect(),
            columns,
        }
    }

    /// Scan only the columns the statement can observe (see
    /// [`ColumnPruner`]) — the columnar analogue of [`Rel::scan_pruned`];
    /// a skipped column is simply never gathered.
    pub fn scan_pruned(table: &Table, binding: &str, pruner: &ColumnPruner) -> ColumnarRel {
        let keep = pruner.keep_indices(table, binding);
        if keep.len() == table.columns.len() {
            return ColumnarRel::scan(table, binding);
        }
        let mut columns: Vec<Vec<Value>> = (0..keep.len())
            .map(|_| Vec::with_capacity(table.rows.len()))
            .collect();
        for row in &table.rows {
            for (out_ci, &i) in keep.iter().enumerate() {
                columns[out_ci].push(row.values[i].clone());
            }
        }
        ColumnarRel {
            cols: keep
                .iter()
                .map(|&i| (binding.to_string(), table.columns[i].name.clone()))
                .collect(),
            columns,
        }
    }

    pub fn width(&self) -> usize {
        self.cols.len()
    }

    pub fn len(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn col_index(&self, binding: Option<&str>, col: &str) -> Option<usize> {
        self.cols.iter().position(|(b, c)| {
            c.eq_ignore_ascii_case(col)
                && binding.map(|q| q.eq_ignore_ascii_case(b)).unwrap_or(true)
        })
    }

    /// Allocation-free resolver for row `i`, consumable by the reference
    /// evaluator — gathers nothing; the one matched value is cloned on
    /// resolution.
    pub fn resolver(&self, i: usize) -> ColRow<'_> {
        ColRow { rel: self, i }
    }

    fn push_gathered(&mut self, src: &ColumnarRel, row: usize, offset: usize) {
        for (ci, col) in src.columns.iter().enumerate() {
            self.columns[offset + ci].push(col[row].clone());
        }
    }

    fn push_nulls(&mut self, offset: usize, width: usize) {
        for ci in 0..width {
            self.columns[offset + ci].push(Value::Null);
        }
    }

    /// Row-major view, for handing the tail of the pipeline (projection,
    /// aggregation) to the shared engine code.
    pub fn to_rel(&self) -> Rel {
        let n = self.len();
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            rows.push(self.columns.iter().map(|c| c[i].clone()).collect());
        }
        Rel {
            cols: self.cols.clone(),
            rows,
        }
    }
}

/// The columnar simulated DBMS: shares the optimizer, catalog, session
/// switches and subquery machinery with [`Database`], but executes through
/// the vectorized pipeline in this module.
#[derive(Debug, Clone)]
pub struct ColumnarDatabase {
    inner: Database,
    pub batch_size: usize,
}

impl ColumnarDatabase {
    pub fn new(catalog: Catalog, profile: DbmsProfile) -> Self {
        ColumnarDatabase {
            inner: Database::new(catalog, profile),
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.inner.catalog
    }

    pub fn set_catalog(&mut self, catalog: Catalog) {
        self.inner.catalog = catalog;
    }

    pub fn profile(&self) -> &DbmsProfile {
        &self.inner.profile
    }

    pub fn apply_switch(&mut self, s: tqs_sql::hints::SessionSwitch) {
        self.inner.apply_switch(s);
    }

    pub fn reset_switches(&mut self) {
        self.inner.reset_switches();
    }

    /// The plan the (shared) optimizer would choose.
    pub fn plan(&self, stmt: &SelectStmt) -> Result<crate::plan::PhysicalPlan, EngineError> {
        self.inner.plan(stmt)
    }

    /// EXPLAIN: the shared plan plus the columnar execution note.
    pub fn explain(&self, stmt: &SelectStmt) -> Result<String, EngineError> {
        let mut out = self.inner.explain(stmt)?;
        out.push_str(&format!(
            "-> executor: columnar, batch {} rows\n",
            self.batch_size
        ));
        Ok(out)
    }

    /// Execute a transformed query: apply the hint set's session switches,
    /// splice its hints into the statement, execute, then restore switches.
    pub fn execute_with_hints(
        &mut self,
        stmt: &SelectStmt,
        hints: &HintSet,
    ) -> Result<ExecOutcome, EngineError> {
        let saved = self.inner.switches.clone();
        for s in &hints.switches {
            self.inner.apply_switch(*s);
        }
        let mut hinted = stmt.clone();
        hinted.hints.extend(hints.hints.iter().cloned());
        let out = self.execute(&hinted);
        self.inner.switches = saved;
        out
    }

    /// Execute SQL text (parses, then executes).
    pub fn execute_sql(&self, sql: &str) -> Result<ExecOutcome, EngineError> {
        let stmt = parse_stmt(sql)?;
        self.execute(&stmt)
    }

    /// Execute one DML / transaction-control statement. Columnar scans
    /// re-read the shared catalog per statement, so mutation and transaction
    /// semantics delegate wholesale to the inner row session — including the
    /// DML fault complement, which the columnar builds also carry.
    pub fn execute_dml(
        &mut self,
        stmt: &tqs_sql::ast::DmlStmt,
    ) -> Result<crate::dml::DmlOutcome, EngineError> {
        self.inner.execute_dml(stmt)
    }

    /// Execute DML text (parses one statement, then executes).
    pub fn execute_dml_sql(&mut self, sql: &str) -> Result<crate::dml::DmlOutcome, EngineError> {
        self.inner.execute_dml_sql(sql)
    }

    /// Is a transaction open on this session?
    pub fn in_txn(&self) -> bool {
        self.inner.in_txn()
    }

    /// Execute a statement through the columnar pipeline.
    pub fn execute(&self, stmt: &SelectStmt) -> Result<ExecOutcome, EngineError> {
        let plan = self.inner.plan(stmt)?;
        let mut ctx = ExecContext::new(self.inner.profile.faults.clone());
        ctx.switched_off = self.inner.switched_off_names();
        ctx.materialization = self.inner.materialization_enabled(stmt);
        ctx.subquery_present = stmt.has_subquery();
        ctx.semi_strategy = self.inner.semi_strategy(stmt);
        ctx.check_cancelled()?;

        let _stmt_span = tqs_telemetry::span("engine", "columnar.execute");

        // Base scan, column-major.
        let op_t0 = ctx.op_start();
        let base_table = self
            .inner
            .catalog
            .table(&stmt.from.base.table)
            .ok_or_else(|| EngineError::UnknownTable(stmt.from.base.table.clone()))?;
        let pruner = ColumnPruner::new(stmt);
        let mut rel = ColumnarRel::scan_pruned(base_table, stmt.from.base.binding(), &pruner);
        if op_t0.is_some() {
            let rows = rel.len() as u64;
            ctx.op_end(op_t0, "scan", rows, rows);
            tqs_telemetry::counter!("engine.columnar.scan.rows_out").add(rows);
        }

        // Joins, in plan order, batch-at-a-time.
        for pj in &plan.joins {
            ctx.check_cancelled()?;
            let ast_join = stmt
                .from
                .joins
                .iter()
                .find(|j| j.table.binding().eq_ignore_ascii_case(&pj.right_binding))
                .ok_or_else(|| EngineError::Unsupported("plan/AST join mismatch".into()))?;
            let right_table = self
                .inner
                .catalog
                .table(&ast_join.table.table)
                .ok_or_else(|| EngineError::UnknownTable(ast_join.table.table.clone()))?;
            let right = ColumnarRel::scan_pruned(right_table, ast_join.table.binding(), &pruner);
            let op_t0 = ctx.op_start();
            let rows_in = (rel.len() + right.len()) as u64;
            rel = columnar_join(
                &rel,
                &right,
                pj,
                ast_join.on.as_ref(),
                &mut ctx,
                self.batch_size,
            )?;
            if op_t0.is_some() {
                let rows_out = rel.len() as u64;
                let ns = ctx.op_end(op_t0, pj.algo.profile_label(), rows_in, rows_out);
                tqs_telemetry::counter!("engine.columnar.join.rows_in").add(rows_in);
                tqs_telemetry::counter!("engine.columnar.join.rows_out").add(rows_out);
                tqs_telemetry::histogram!("engine.columnar.join.ns").record(ns);
            }
        }

        // WHERE filtering over the selection bitmap, batch-at-a-time.
        let sub = EngineSubqueries::new(&self.inner, plan.subquery_plan, ctx.materialization);
        if let Some(pred) = &stmt.where_clause {
            let op_t0 = ctx.op_start();
            let rows_in = rel.len() as u64;
            rel = self.filter(pred, rel, &mut ctx, &sub)?;
            if op_t0.is_some() {
                let rows_out = rel.len() as u64;
                ctx.op_end(op_t0, "filter", rows_in, rows_out);
                tqs_telemetry::counter!("engine.columnar.filter.rows_in").add(rows_in);
                tqs_telemetry::counter!("engine.columnar.filter.rows_out").add(rows_out);
            }
        }

        // Projection / aggregation / DISTINCT / LIMIT share the row-engine
        // tail — the columnar pipeline ends at the relational boundary.
        let op_t0 = ctx.op_start();
        let rows_in = rel.len() as u64;
        let grouped = stmt.has_aggregates() || !stmt.group_by.is_empty();
        let row_rel = rel.to_rel();
        let mut result = if grouped {
            self.inner.aggregate(stmt, &row_rel, &sub)?
        } else {
            self.inner.project(stmt, &row_rel, &sub)?
        };
        if stmt.distinct {
            result = distinct(result);
        }
        if let Some(l) = stmt.limit {
            result.rows.truncate(l as usize);
        }
        if op_t0.is_some() {
            let rows_out = result.rows.len() as u64;
            ctx.op_end(
                op_t0,
                if grouped { "group" } else { "project" },
                rows_in,
                rows_out,
            );
            if grouped {
                tqs_telemetry::counter!("engine.columnar.group.rows_in").add(rows_in);
                tqs_telemetry::counter!("engine.columnar.group.rows_out").add(rows_out);
            }
            tqs_telemetry::counter!("engine.columnar.statements").incr();
        }

        ctx.fired.extend(sub.into_fired());
        ctx.fired.dedup();
        Ok(ExecOutcome {
            result,
            plan,
            fired: ctx.fired,
            profile: ctx.profile,
        })
    }

    /// Vectorized WHERE: conjuncts of the form `column <op> literal` run as
    /// tight per-column loops over the selection bitmap; everything else
    /// falls back to the reference evaluator per row (still batched so the
    /// selection-bitmap fault has a lane structure to corrupt).
    fn filter(
        &self,
        pred: &Expr,
        rel: ColumnarRel,
        ctx: &mut ExecContext,
        sub: &EngineSubqueries<'_>,
    ) -> Result<ColumnarRel, EngineError> {
        let n = rel.len();
        let mut sel = vec![true; n];
        let mut conjuncts = Vec::new();
        flatten_and(pred, &mut conjuncts);
        let filter_trigger = TriggerContext::default();
        let null_as_true = ctx
            .faults
            .active(FaultKind::ColumnarFilterNullAsTrue, &filter_trigger);
        for c in conjuncts {
            match vectorizable(c, &rel) {
                Some((ci, op, lit, reversed)) => {
                    let col = &rel.columns[ci];
                    for (i, v) in col.iter().enumerate() {
                        let truth = compare_value(v, op, lit, reversed);
                        self.apply_truth(truth, i, &mut sel, null_as_true, ctx);
                    }
                }
                None => {
                    for i in 0..n {
                        let resolver = rel.resolver(i);
                        let truth = eval_predicate(c, &resolver, sub)?;
                        self.apply_truth(truth, i, &mut sel, null_as_true, ctx);
                    }
                }
            }
        }
        let mut out = ColumnarRel {
            cols: rel.cols.clone(),
            columns: vec![Vec::new(); rel.width()],
        };
        for (i, keep) in sel.iter().enumerate() {
            if *keep {
                out.push_gathered(&rel, i, 0);
            }
        }
        Ok(out)
    }

    fn apply_truth(
        &self,
        truth: Option<bool>,
        i: usize,
        sel: &mut [bool],
        null_as_true: bool,
        ctx: &mut ExecContext,
    ) {
        match truth {
            Some(true) => {}
            // The selection-bitmap fault: the last lane of a *full* batch is
            // never cleared, so a NULL predicate there stays selected.
            None if null_as_true && i % self.batch_size == self.batch_size - 1 => {
                ctx.fire(FaultKind::ColumnarFilterNullAsTrue);
            }
            _ => sel[i] = false,
        }
    }
}

/// Can this conjunct run through the vectorized comparison kernel?
/// Returns (column index, operator, literal, literal-on-the-left).
fn vectorizable<'a>(e: &'a Expr, rel: &ColumnarRel) -> Option<(usize, BinOp, &'a Value, bool)> {
    let Expr::Binary { op, left, right } = e else {
        return None;
    };
    if !matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::NullSafeEq
    ) {
        return None;
    }
    match (left.as_ref(), right.as_ref()) {
        (Expr::Column(c), Expr::Literal(v)) => rel
            .col_index(c.table.as_deref(), &c.column)
            .map(|ci| (ci, *op, v, false)),
        (Expr::Literal(v), Expr::Column(c)) => rel
            .col_index(c.table.as_deref(), &c.column)
            .map(|ci| (ci, *op, v, true)),
        _ => None,
    }
}

/// Three-valued comparison matching the reference evaluator's `tv_compare`.
fn compare_value(v: &Value, op: BinOp, lit: &Value, reversed: bool) -> Option<bool> {
    let (l, r) = if reversed { (lit, v) } else { (v, lit) };
    if op == BinOp::NullSafeEq {
        return Some(null_safe_eq(l, r));
    }
    if l.is_null() || r.is_null() {
        return None;
    }
    match sql_compare(l, r) {
        SqlCmp::Ordering(o) => Some(match op {
            BinOp::Eq => o == std::cmp::Ordering::Equal,
            BinOp::Ne => o != std::cmp::Ordering::Equal,
            BinOp::Lt => o == std::cmp::Ordering::Less,
            BinOp::Le => o != std::cmp::Ordering::Greater,
            BinOp::Gt => o == std::cmp::Ordering::Greater,
            BinOp::Ge => o != std::cmp::Ordering::Less,
            _ => unreachable!("non-comparison op in vectorized kernel"),
        }),
        SqlCmp::Unknown => None,
    }
}

/// Equi-key extraction over columnar relations (mirrors the row executor's).
struct EquiKeys {
    left_idx: Vec<usize>,
    right_idx: Vec<usize>,
    residual: Vec<Expr>,
}

fn extract_equi_keys(left: &ColumnarRel, right: &ColumnarRel, on: Option<&Expr>) -> EquiKeys {
    let mut keys = EquiKeys {
        left_idx: Vec::new(),
        right_idx: Vec::new(),
        residual: Vec::new(),
    };
    let Some(on) = on else { return keys };
    let mut conjuncts = Vec::new();
    flatten_and(on, &mut conjuncts);
    for c in conjuncts {
        if let Expr::Binary {
            op: BinOp::Eq,
            left: a,
            right: b,
        } = c
        {
            if let (Expr::Column(ca), Expr::Column(cb)) = (a.as_ref(), b.as_ref()) {
                let la = left.col_index(ca.table.as_deref(), &ca.column);
                let rb = right.col_index(cb.table.as_deref(), &cb.column);
                if let (Some(li), Some(ri)) = (la, rb) {
                    keys.left_idx.push(li);
                    keys.right_idx.push(ri);
                    continue;
                }
                let lb = left.col_index(cb.table.as_deref(), &cb.column);
                let ra = right.col_index(ca.table.as_deref(), &ca.column);
                if let (Some(li), Some(ri)) = (lb, ra) {
                    keys.left_idx.push(li);
                    keys.right_idx.push(ri);
                    continue;
                }
            }
        }
        keys.residual.push(c.clone());
    }
    keys
}

fn flatten_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e);
    }
}

/// Borrow-based resolver over row `i` of a columnar relation.
pub struct ColRow<'a> {
    rel: &'a ColumnarRel,
    i: usize,
}

impl ColumnResolver for ColRow<'_> {
    fn resolve(&self, col: &ColumnRef) -> Option<Value> {
        self.rel
            .col_index(col.table.as_deref(), &col.column)
            .map(|ci| self.rel.columns[ci][self.i].clone())
    }
}

/// Encode the join key of row `i` against `key_idx` column vectors into
/// `buf` (cleared first). Returns `false` for a NULL key (never matches).
/// The dictionary-truncation fault clips long varchar keys to their first 8
/// bytes — raw, without the canonical case folding, exactly like the old
/// `"S:{clip}|"` text segment.
fn encode_key_into(
    columns: &[Vec<Value>],
    key_idx: &[usize],
    i: usize,
    truncate: bool,
    ctx: &mut ExecContext,
    buf: &mut KeyBuf,
) -> bool {
    buf.clear();
    for &ci in key_idx {
        let v = &columns[ci][i];
        if v.is_null() {
            return false;
        }
        if truncate {
            if let Some(s) = v.as_str() {
                if s.len() > 8 {
                    // Clip at the last char boundary at or before byte 8 —
                    // the fault corrupts answers, it must not panic on
                    // multi-byte UTF-8 data.
                    let mut cut = 8;
                    while !s.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    ctx.fire(FaultKind::ColumnarDictTruncation);
                    buf.push_str_raw(&s[..cut]);
                    continue;
                }
            }
        }
        buf.push_canonical(v);
    }
    true
}

/// Borrow-based resolver over one candidate row pair of columnar inputs,
/// driven by a compiled [`ScopeLayout`].
struct ColScopedPair<'a> {
    layout: &'a ScopeLayout,
    left: &'a ColumnarRel,
    right: &'a ColumnarRel,
    li: usize,
    ri: usize,
}

impl ColumnResolver for ColScopedPair<'_> {
    fn resolve(&self, col: &ColumnRef) -> Option<Value> {
        self.layout.lookup(col).map(|(right, offset)| {
            if right {
                self.right.columns[offset][self.ri].clone()
            } else {
                self.left.columns[offset][self.li].clone()
            }
        })
    }
}

fn residual_ok(
    residual: &[Expr],
    layout: &ScopeLayout,
    left: &ColumnarRel,
    right: &ColumnarRel,
    li: usize,
    ri: usize,
) -> bool {
    if residual.is_empty() {
        return true;
    }
    let resolver = ColScopedPair {
        layout,
        left,
        right,
        li,
        ri,
    };
    residual.iter().all(|p| {
        eval_predicate(p, &resolver, &tqs_sql::eval::NoSubqueries)
            .map(|r| r == Some(true))
            .unwrap_or(false)
    })
}

/// Execute one physical join step over columnar inputs: build a hash table
/// over the build (right) side, then probe the left side one batch at a
/// time. Non-equi joins degrade to a (correct) batched nested loop.
pub fn columnar_join(
    left: &ColumnarRel,
    right: &ColumnarRel,
    join: &PhysicalJoin,
    on: Option<&Expr>,
    ctx: &mut ExecContext,
    batch_size: usize,
) -> Result<ColumnarRel, EngineError> {
    let t = ctx.trigger_ctx(join);
    let keys = extract_equi_keys(left, right, on);
    let layout = ScopeLayout::compile(&keys.residual, &|b, c| left.col_index(b, c), &|b, c| {
        right.col_index(b, c)
    });
    let n_left = left.len();

    // Batch-tail loss: hashed probes past the last complete batch are never
    // flushed, so those left rows vanish from the join entirely.
    let mut live_until = n_left;
    if !keys.left_idx.is_empty()
        && ctx.faults.active(FaultKind::ColumnarBatchTailDrop, &t)
        && n_left % batch_size != 0
        && n_left > batch_size
    {
        live_until = (n_left / batch_size) * batch_size;
        ctx.fire(FaultKind::ColumnarBatchTailDrop);
    }

    // Match computation.
    let truncate = ctx.faults.active(FaultKind::ColumnarDictTruncation, &t);
    let mut matches: Vec<Vec<usize>> = vec![Vec::new(); n_left];
    if keys.left_idx.is_empty() {
        // No equi key: batched nested loop (correct for cross/theta joins).
        for (li, row_matches) in matches.iter_mut().enumerate().take(live_until) {
            for ri in 0..right.len() {
                if residual_ok(&keys.residual, &layout, left, right, li, ri) {
                    row_matches.push(ri);
                }
            }
        }
    } else {
        let mut table: HashMap<KeyBuf, Vec<usize>> = HashMap::new();
        let mut scratch = KeyBuf::new();
        for ri in 0..right.len() {
            if encode_key_into(
                &right.columns,
                &keys.right_idx,
                ri,
                truncate,
                ctx,
                &mut scratch,
            ) {
                match table.get_mut(&scratch) {
                    Some(bucket) => bucket.push(ri),
                    None => {
                        table.insert(scratch.clone(), vec![ri]);
                    }
                }
            }
        }
        let mut start = 0;
        while start < live_until {
            let end = (start + batch_size).min(live_until);
            for (li, row_matches) in matches[start..end].iter_mut().enumerate() {
                let li = start + li;
                if !encode_key_into(
                    &left.columns,
                    &keys.left_idx,
                    li,
                    truncate,
                    ctx,
                    &mut scratch,
                ) {
                    continue;
                }
                let mut ms = table.get(&scratch).cloned().unwrap_or_default();
                ms.retain(|&ri| residual_ok(&keys.residual, &layout, left, right, li, ri));
                *row_matches = ms;
            }
            start = end;
        }
    }

    // Assemble the output column-major.
    let (cols, left_width, right_width) = match join.join_type {
        JoinType::Semi | JoinType::Anti => (left.cols.clone(), left.width(), 0),
        _ => {
            let mut c = left.cols.clone();
            c.extend(right.cols.clone());
            (c, left.width(), right.width())
        }
    };
    let mut out = ColumnarRel {
        columns: vec![Vec::new(); cols.len()],
        cols,
    };
    let misalign = ctx.faults.active(FaultKind::ColumnarNullPadMisalign, &t);
    let mut first_pad = true;
    let mut right_matched = vec![false; right.len()];
    for (li, ms) in matches.iter().enumerate().take(live_until) {
        match join.join_type {
            JoinType::Inner
            | JoinType::Cross
            | JoinType::LeftOuter
            | JoinType::RightOuter
            | JoinType::FullOuter => {
                for &ri in ms {
                    right_matched[ri] = true;
                    out.push_gathered(left, li, 0);
                    out.push_gathered(right, ri, left_width);
                }
                if ms.is_empty()
                    && matches!(join.join_type, JoinType::LeftOuter | JoinType::FullOuter)
                {
                    out.push_gathered(left, li, 0);
                    // NULL-mask misalignment: the first padded row replays
                    // build row 0 instead of NULLs.
                    if misalign && first_pad && !right.is_empty() {
                        ctx.fire(FaultKind::ColumnarNullPadMisalign);
                        out.push_gathered(right, 0, left_width);
                    } else {
                        out.push_nulls(left_width, right_width);
                    }
                    first_pad = false;
                }
            }
            JoinType::Semi => {
                if !ms.is_empty() {
                    out.push_gathered(left, li, 0);
                }
            }
            JoinType::Anti => {
                if ms.is_empty() {
                    out.push_gathered(left, li, 0);
                }
            }
        }
    }

    // Right/full outer: pad unmatched right rows on the left side.
    if matches!(join.join_type, JoinType::RightOuter | JoinType::FullOuter) {
        for (ri, matched) in right_matched.iter().enumerate() {
            if !matched {
                if misalign && first_pad && n_left > 0 {
                    ctx.fire(FaultKind::ColumnarNullPadMisalign);
                    out.push_gathered(left, 0, 0);
                } else {
                    for ci in 0..left_width {
                        out.columns[ci].push(Value::Null);
                    }
                }
                first_pad = false;
                out.push_gathered(right, ri, left_width);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSet;
    use crate::plan::JoinAlgo;
    use crate::profiles::ProfileId;
    use tqs_sql::types::{ColumnDef, ColumnType};
    use tqs_storage::Row;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut t1 = Table::new(
            "t1",
            vec![
                ColumnDef::new("id", ColumnType::BigInt { unsigned: false }).not_null(),
                ColumnDef::new("col1", ColumnType::Int { unsigned: false }),
            ],
        )
        .with_primary_key(vec!["id"]);
        for (id, c) in [(1, Some(10)), (2, Some(20)), (3, None)] {
            t1.push_row(Row::new(vec![
                Value::Int(id),
                c.map(Value::Int).unwrap_or(Value::Null),
            ]))
            .unwrap();
        }
        cat.add_table(t1);
        let mut t2 = Table::new(
            "t2",
            vec![
                ColumnDef::new("id", ColumnType::BigInt { unsigned: false }).not_null(),
                ColumnDef::new("col1", ColumnType::Varchar(100)),
            ],
        )
        .with_primary_key(vec!["id"]);
        for (id, c) in [(10, "a"), (20, "b"), (30, "c")] {
            t2.push_row(Row::new(vec![Value::Int(id), Value::str(c)]))
                .unwrap();
        }
        cat.add_table(t2);
        cat
    }

    fn columnar(id: ProfileId) -> ColumnarDatabase {
        ColumnarDatabase::new(catalog(), DbmsProfile::columnar_pristine(id))
    }

    fn row_db(id: ProfileId) -> Database {
        Database::new(catalog(), DbmsProfile::pristine(id))
    }

    #[test]
    fn columnar_matches_row_engine_on_basic_queries() {
        let queries = [
            "SELECT t1.id FROM t1 WHERE t1.col1 > 10",
            "SELECT t1.id, t2.col1 FROM t1 INNER JOIN t2 ON t1.col1 = t2.id",
            "SELECT t1.id FROM t1 LEFT OUTER JOIN t2 ON t1.col1 = t2.id",
            "SELECT t1.id FROM t1 WHERE t1.col1 IN (SELECT t2.id FROM t2)",
            "SELECT t2.col1, COUNT(*) AS cnt FROM t1 JOIN t2 ON t1.col1 = t2.id GROUP BY t2.col1",
            "SELECT DISTINCT t2.col1 FROM t2 JOIN t1 ON t2.id = t1.col1",
        ];
        for id in ProfileId::ALL {
            let col = columnar(id);
            let row = row_db(id);
            for q in queries {
                let a = col.execute_sql(q).unwrap_or_else(|e| panic!("{q}: {e}"));
                let b = row.execute_sql(q).unwrap();
                assert!(
                    a.result.same_bag(&b.result),
                    "{id:?} diverged on {q}: columnar {} vs row {}",
                    a.result.pretty(),
                    b.result.pretty()
                );
                assert!(a.fired.is_empty());
            }
        }
    }

    #[test]
    fn batch_boundaries_do_not_change_answers_when_pristine() {
        let mut small = columnar(ProfileId::MysqlLike);
        small.batch_size = 2;
        let big = columnar(ProfileId::MysqlLike);
        let q = "SELECT t1.id, t2.col1 FROM t1 JOIN t2 ON t1.col1 = t2.id";
        let a = small.execute_sql(q).unwrap();
        let b = big.execute_sql(q).unwrap();
        assert!(a.result.same_bag(&b.result));
    }

    #[test]
    fn explain_mentions_the_columnar_executor() {
        let db = columnar(ProfileId::TidbLike);
        let stmt = parse_stmt("SELECT t1.id FROM t1 JOIN t2 ON t1.col1 = t2.id").unwrap();
        let e = db.explain(&stmt).unwrap();
        assert!(e.contains("executor: columnar"));
    }

    #[test]
    fn batch_tail_drop_loses_probe_rows() {
        let mut db = ColumnarDatabase::new(catalog(), DbmsProfile::columnar(ProfileId::MysqlLike));
        db.batch_size = 2; // 3 probe rows → one full batch + a dropped tail
        let q = "SELECT t1.id, t2.col1 FROM t1 LEFT OUTER JOIN t2 ON t1.col1 = t2.id";
        let out = db.execute_sql(q).unwrap();
        let mut clean = columnar(ProfileId::MysqlLike);
        clean.batch_size = 2;
        let clean = clean.execute_sql(q).unwrap();
        assert!(out.fired.contains(&FaultKind::ColumnarBatchTailDrop));
        assert!(
            out.result.row_count() < clean.result.row_count(),
            "tail probe rows must vanish: {} vs {}",
            out.result.pretty(),
            clean.result.pretty()
        );
    }

    #[test]
    fn null_pad_misalignment_corrupts_first_padded_row() {
        let db = ColumnarDatabase::new(
            catalog(),
            DbmsProfile {
                faults: FaultSet::of(&[FaultKind::ColumnarNullPadMisalign]),
                ..DbmsProfile::columnar(ProfileId::MysqlLike)
            },
        );
        let q = "SELECT t1.id, t2.col1 FROM t1 LEFT OUTER JOIN t2 ON t1.col1 = t2.id";
        let out = db.execute_sql(q).unwrap();
        assert!(out.fired.contains(&FaultKind::ColumnarNullPadMisalign));
        let clean = columnar(ProfileId::MysqlLike).execute_sql(q).unwrap();
        assert_eq!(out.result.row_count(), clean.result.row_count());
        assert!(!out.result.same_bag(&clean.result));
    }

    #[test]
    fn filter_null_as_true_keeps_a_batch_tail_lane() {
        let mut db = ColumnarDatabase::new(
            catalog(),
            DbmsProfile {
                faults: FaultSet::of(&[FaultKind::ColumnarFilterNullAsTrue]),
                ..DbmsProfile::columnar(ProfileId::MysqlLike)
            },
        );
        db.batch_size = 3; // t1 has 3 rows; row 3 (NULL col1) sits on the lane
        let q = "SELECT t1.id FROM t1 WHERE t1.col1 > 5";
        let out = db.execute_sql(q).unwrap();
        assert!(out.fired.contains(&FaultKind::ColumnarFilterNullAsTrue));
        assert_eq!(out.result.row_count(), 3, "{}", out.result.pretty());
        let clean = columnar(ProfileId::MysqlLike).execute_sql(q).unwrap();
        assert_eq!(clean.result.row_count(), 2);
    }

    #[test]
    fn dict_truncation_collides_long_varchar_keys() {
        let mut cat = Catalog::new();
        for name in ["a", "b"] {
            let mut t = Table::new(
                name,
                vec![ColumnDef::new("k", ColumnType::Varchar(100)).not_null()],
            );
            let suffix = if name == "a" { "left" } else { "right" };
            t.push_row(Row::new(vec![Value::str(format!("prefix01_{suffix}"))]))
                .unwrap();
            cat.add_table(t);
        }
        let faulty = ColumnarDatabase::new(
            cat.clone(),
            DbmsProfile {
                faults: FaultSet::of(&[FaultKind::ColumnarDictTruncation]),
                ..DbmsProfile::columnar(ProfileId::MysqlLike)
            },
        );
        let q = "SELECT a.k FROM a JOIN b ON a.k = b.k";
        let out = faulty.execute_sql(q).unwrap();
        assert!(out.fired.contains(&FaultKind::ColumnarDictTruncation));
        assert_eq!(out.result.row_count(), 1, "truncated keys must collide");
        let clean =
            ColumnarDatabase::new(cat, DbmsProfile::columnar_pristine(ProfileId::MysqlLike));
        assert_eq!(clean.execute_sql(q).unwrap().result.row_count(), 0);
    }

    #[test]
    fn dict_truncation_survives_multibyte_utf8_keys() {
        // A 2-byte char straddling the byte-8 cut must not panic the probe.
        let mut cat = Catalog::new();
        for name in ["a", "b"] {
            let mut t = Table::new(
                name,
                vec![ColumnDef::new("k", ColumnType::Varchar(100)).not_null()],
            );
            t.push_row(Row::new(vec![Value::str(format!("aaaaaaaé-{name}"))]))
                .unwrap();
            cat.add_table(t);
        }
        let faulty = ColumnarDatabase::new(
            cat,
            DbmsProfile {
                faults: FaultSet::of(&[FaultKind::ColumnarDictTruncation]),
                ..DbmsProfile::columnar(ProfileId::MysqlLike)
            },
        );
        let out = faulty
            .execute_sql("SELECT a.k FROM a JOIN b ON a.k = b.k")
            .unwrap();
        assert!(out.fired.contains(&FaultKind::ColumnarDictTruncation));
        assert_eq!(out.result.row_count(), 1, "clipped keys must collide");
    }

    #[test]
    fn hints_steer_the_shared_optimizer() {
        let mut db = columnar(ProfileId::MysqlLike);
        let stmt = parse_stmt("SELECT t1.id FROM t1 JOIN t2 ON t1.col1 = t2.id").unwrap();
        let merge = db
            .execute_with_hints(
                &stmt,
                &HintSet::new("merge").with_hint(tqs_sql::hints::Hint::MergeJoin(vec![])),
            )
            .unwrap();
        assert_eq!(merge.plan.joins[0].algo, JoinAlgo::SortMergeJoin);
        let default = db.execute(&stmt).unwrap();
        assert!(merge.result.same_bag(&default.result));
    }
}
