//! DML execution: INSERT / UPDATE / DELETE application, transaction control
//! and the mutation fault complement, shared by all three engines.
//!
//! The row engine owns the canonical implementation
//! ([`crate::engine::Database::execute_dml`]): mutations apply directly to
//! the in-memory catalog, `BEGIN` snapshots the catalog (cheap — tables are
//! `Arc`-shared copy-on-write), `ROLLBACK` restores the snapshot and `COMMIT`
//! drops it. Every applied mutation is recorded as a [`DmlOp`] that knows its
//! exact inverse. The columnar engine delegates to its inner row database
//! (its scans re-read the shared catalog per statement). The disk engine
//! applies the same ops in memory, buffers them per transaction, and at each
//! commit boundary appends them to a dedicated log table in the page store —
//! riding the store's WAL commit protocol, so an armed
//! [`tqs_pager::CrashPoint`] kills a DML commit at a *real* commit/abort
//! boundary and recovery decides visibility by whether the log batch's WAL
//! record was fsynced.
//!
//! The five [`FaultKind::DML`](crate::faults::FaultKind::DML) faults
//! (Table-4 ids 35–39) fire *here*, on specific mutation shapes, never on any
//! SELECT path:
//!
//! * **M1 `DmlStaleIndexAfterUpdate`** — an UPDATE that writes an indexed
//!   column leaves the first matching row's keyed cells unchanged (the index
//!   was "updated", the base row was not).
//! * **M2 `DmlDeleteSkipsNullKey`** — a DELETE quietly skips matching rows
//!   that carry NULL in a WHERE-referenced column (the delete scan consults
//!   an index that never stored the NULL entry).
//! * **M3 `DmlLostUpdateThroughPrunedColumn`** — an UPDATE writing a column
//!   the WHERE clause never reads loses that write on every matching row
//!   after the first (the write-path pruned the "unneeded" column).
//! * **M4 `DmlRollbackLeaksInsertedRow`** — ROLLBACK restores the snapshot
//!   but re-appends the transaction's first inserted row.
//! * **M5 `DmlCommitBoundaryTornVisibility`** — COMMIT publishes every
//!   buffered change except the last one.

use crate::engine::EngineError;
use crate::faults::{FaultKind, FaultSet};
use tqs_sql::ast::{DeleteStmt, DmlStmt, Expr, InsertStmt, UpdateStmt};
use tqs_sql::eval::{eval_expr, eval_predicate, NoSubqueries, SliceRow};
use tqs_sql::value::Value;
use tqs_storage::{Catalog, Row};

/// Result of executing one DML / transaction-control statement.
#[derive(Debug, Clone, Default)]
pub struct DmlOutcome {
    /// Rows the statement actually touched (0 for transaction control).
    pub rows_affected: usize,
    /// DML faults that fired while applying this statement.
    pub fired: Vec<FaultKind>,
    /// The ops this statement made *durable-eligible*: for an auto-commit
    /// mutation, the ops it applied; for `COMMIT`, the whole transaction's
    /// effective ops; for `ROLLBACK`, normally empty (a leaked row under M4
    /// appears here); for `BEGIN` and in-transaction mutations the disk
    /// engine must not persist yet, so callers consult
    /// [`crate::engine::Database::in_txn`].
    pub ops: Vec<DmlOp>,
}

impl DmlOutcome {
    pub(crate) fn fire(&mut self, kind: FaultKind) {
        if !self.fired.contains(&kind) {
            self.fired.push(kind);
        }
    }
}

/// One applied mutation, recorded with enough state to replay it forward
/// (disk scans, delta-vs-rebuild checks) or invert it exactly (M5).
///
/// `idx` is the row's position in the table *at the moment the op applied*,
/// so replaying a sequence of ops in order over the same starting state
/// reproduces the final state byte-for-byte, and reverting them in reverse
/// order restores the starting state exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum DmlOp {
    Insert {
        table: String,
        idx: usize,
        row: Vec<Value>,
    },
    Update {
        table: String,
        idx: usize,
        old: Vec<Value>,
        new: Vec<Value>,
    },
    Delete {
        table: String,
        idx: usize,
        old: Vec<Value>,
    },
}

impl DmlOp {
    pub fn table(&self) -> &str {
        match self {
            DmlOp::Insert { table, .. }
            | DmlOp::Update { table, .. }
            | DmlOp::Delete { table, .. } => table,
        }
    }

    /// Replay this op onto `catalog`. Out-of-range indices are clamped or
    /// skipped rather than panicking: the disk engine replays ops over
    /// *faulted* scans whose row counts may have been corrupted on purpose.
    pub fn apply(&self, catalog: &mut Catalog) {
        match self {
            DmlOp::Insert { table, idx, row } => {
                if let Some(t) = catalog.table_mut(table) {
                    let at = (*idx).min(t.rows.len());
                    t.rows.insert(at, Row::new(row.clone()));
                }
            }
            DmlOp::Update {
                table, idx, new, ..
            } => {
                if let Some(t) = catalog.table_mut(table) {
                    if let Some(r) = t.rows.get_mut(*idx) {
                        r.values = new.clone();
                    }
                }
            }
            DmlOp::Delete { table, idx, .. } => {
                if let Some(t) = catalog.table_mut(table) {
                    if *idx < t.rows.len() {
                        t.rows.remove(*idx);
                    }
                }
            }
        }
    }

    /// Undo this op on `catalog` (same clamping policy as [`DmlOp::apply`]).
    pub fn revert(&self, catalog: &mut Catalog) {
        match self {
            DmlOp::Insert { table, idx, .. } => {
                if let Some(t) = catalog.table_mut(table) {
                    if *idx < t.rows.len() {
                        t.rows.remove(*idx);
                    }
                }
            }
            DmlOp::Update {
                table, idx, old, ..
            } => {
                if let Some(t) = catalog.table_mut(table) {
                    if let Some(r) = t.rows.get_mut(*idx) {
                        r.values = old.clone();
                    }
                }
            }
            DmlOp::Delete { table, idx, old } => {
                if let Some(t) = catalog.table_mut(table) {
                    let at = (*idx).min(t.rows.len());
                    t.rows.insert(at, Row::new(old.clone()));
                }
            }
        }
    }

    /// Flatten to a value row for the disk engine's log table. The layout is
    /// `[tag, table, idx, arity, payload…]` where `payload` is the inserted /
    /// deleted row, or `old ++ new` for updates — all encoded by the store's
    /// ordinary row codec, so log batches get WAL protection for free.
    pub fn encode(&self) -> Vec<Value> {
        let (tag, table, idx, payload): (&str, &str, usize, Vec<&Value>) = match self {
            DmlOp::Insert { table, idx, row } => ("I", table, *idx, row.iter().collect()),
            DmlOp::Update {
                table,
                idx,
                old,
                new,
            } => ("U", table, *idx, old.iter().chain(new.iter()).collect()),
            DmlOp::Delete { table, idx, old } => ("D", table, *idx, old.iter().collect()),
        };
        let arity = match self {
            DmlOp::Update { old, .. } => old.len(),
            DmlOp::Insert { row, .. } => row.len(),
            DmlOp::Delete { old, .. } => old.len(),
        };
        let mut out = Vec::with_capacity(4 + payload.len());
        out.push(Value::str(tag));
        out.push(Value::str(table));
        out.push(Value::Int(idx as i64));
        out.push(Value::Int(arity as i64));
        out.extend(payload.into_iter().cloned());
        out
    }

    /// Inverse of [`DmlOp::encode`]; a malformed log row is a storage error.
    pub fn decode(vals: &[Value]) -> Result<DmlOp, EngineError> {
        let bad = |m: &str| EngineError::Storage(format!("corrupt DML log row: {m}"));
        if vals.len() < 4 {
            return Err(bad("fewer than 4 header values"));
        }
        let tag = vals[0]
            .as_str()
            .ok_or_else(|| bad("tag is not a string"))?
            .to_string();
        let table = vals[1]
            .as_str()
            .ok_or_else(|| bad("table is not a string"))?
            .to_string();
        let as_idx = |v: &Value| match v {
            Value::Int(i) if *i >= 0 => Ok(*i as usize),
            _ => Err(bad("index is not a non-negative integer")),
        };
        let idx = as_idx(&vals[2])?;
        let arity = as_idx(&vals[3])?;
        let payload = &vals[4..];
        match tag.as_str() {
            "I" | "D" => {
                if payload.len() != arity {
                    return Err(bad("payload arity mismatch"));
                }
                let row = payload.to_vec();
                Ok(if tag == "I" {
                    DmlOp::Insert { table, idx, row }
                } else {
                    DmlOp::Delete {
                        table,
                        idx,
                        old: row,
                    }
                })
            }
            "U" => {
                if payload.len() != arity * 2 {
                    return Err(bad("update payload arity mismatch"));
                }
                Ok(DmlOp::Update {
                    table,
                    idx,
                    old: payload[..arity].to_vec(),
                    new: payload[arity..].to_vec(),
                })
            }
            other => Err(bad(&format!("unknown tag `{other}`"))),
        }
    }
}

/// Column names (lowercased, deduped) an expression reads. Subquery interiors
/// are ignored — DML predicates reject subqueries at evaluation time anyway.
fn referenced_columns(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Column(c) => {
            let lc = c.column.to_lowercase();
            if !out.contains(&lc) {
                out.push(lc);
            }
        }
        Expr::Literal(_) | Expr::Exists { .. } => {}
        Expr::Binary { left, right, .. } => {
            referenced_columns(left, out);
            referenced_columns(right, out);
        }
        Expr::Unary { expr, .. }
        | Expr::IsNull { expr, .. }
        | Expr::Cast { expr, .. }
        | Expr::InSubquery { expr, .. } => referenced_columns(expr, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            referenced_columns(expr, out);
            referenced_columns(low, out);
            referenced_columns(high, out);
        }
        Expr::InList { expr, list, .. } => {
            referenced_columns(expr, out);
            for item in list {
                referenced_columns(item, out);
            }
        }
    }
}

/// Row indices matching `where_clause` (all rows when absent), evaluated
/// against the pre-statement state with the reference three-valued-logic
/// evaluator — a row is affected only when the predicate is *true*.
fn matching_rows(
    table: &tqs_storage::Table,
    where_clause: Option<&Expr>,
) -> Result<Vec<usize>, EngineError> {
    let Some(pred) = where_clause else {
        return Ok((0..table.rows.len()).collect());
    };
    let cols: Vec<(String, String)> = table
        .columns
        .iter()
        .map(|c| (table.name.clone(), c.name.clone()))
        .collect();
    let mut out = Vec::new();
    for (i, row) in table.rows.iter().enumerate() {
        let scope = SliceRow::new(&cols, &row.values);
        if eval_predicate(pred, &scope, &NoSubqueries)? == Some(true) {
            out.push(i);
        }
    }
    Ok(out)
}

fn unknown_table(name: &str) -> EngineError {
    EngineError::UnknownTable(name.to_string())
}

/// Apply one mutation statement (never transaction control) to `catalog`,
/// firing whatever enabled DML faults its shape triggers. Returns the
/// outcome with the exact ops applied (post-fault — ops record what
/// *actually* happened, so replaying them reproduces even a corrupted state).
pub(crate) fn apply_mutation(
    catalog: &mut Catalog,
    faults: &FaultSet,
    stmt: &DmlStmt,
) -> Result<DmlOutcome, EngineError> {
    match stmt {
        DmlStmt::Insert(i) => apply_insert(catalog, i),
        DmlStmt::Update(u) => apply_update(catalog, faults, u),
        DmlStmt::Delete(d) => apply_delete(catalog, faults, d),
        other => Err(EngineError::Unsupported(format!(
            "apply_mutation on transaction control: {other:?}"
        ))),
    }
}

fn apply_insert(catalog: &mut Catalog, stmt: &InsertStmt) -> Result<DmlOutcome, EngineError> {
    let table = catalog
        .table(&stmt.table)
        .ok_or_else(|| unknown_table(&stmt.table))?;
    let tname = table.name.clone();
    let ncols = table.columns.len();
    let mut col_indices = Vec::with_capacity(stmt.columns.len());
    for c in &stmt.columns {
        let ci = table.column_index(c).ok_or_else(|| {
            EngineError::Unsupported(format!("INSERT: unknown column {c} in {tname}"))
        })?;
        col_indices.push(ci);
    }
    // VALUES rows must be constant expressions; an empty scope rejects any
    // column reference with an UnknownColumn error.
    let scope = SliceRow::new(&[], &[]);
    let mut rows = Vec::with_capacity(stmt.rows.len());
    for exprs in &stmt.rows {
        let mut values = vec![Value::Null; ncols];
        for (ci, e) in col_indices.iter().zip(exprs) {
            values[*ci] = eval_expr(e, &scope, &NoSubqueries)?;
        }
        rows.push(values);
    }
    let mut out = DmlOutcome::default();
    let t = catalog
        .table_mut(&tname)
        .ok_or_else(|| unknown_table(&tname))?;
    for values in rows {
        let idx = t.rows.len();
        t.push_row(Row::new(values.clone()))
            .map_err(EngineError::Unsupported)?;
        out.ops.push(DmlOp::Insert {
            table: tname.clone(),
            idx,
            row: values,
        });
        out.rows_affected += 1;
    }
    Ok(out)
}

fn apply_update(
    catalog: &mut Catalog,
    faults: &FaultSet,
    stmt: &UpdateStmt,
) -> Result<DmlOutcome, EngineError> {
    let table = catalog
        .table(&stmt.table)
        .ok_or_else(|| unknown_table(&stmt.table))?;
    let tname = table.name.clone();
    // Resolve SET targets and classify them for the fault shapes.
    let mut set_cols = Vec::with_capacity(stmt.set.len());
    for a in &stmt.set {
        let ci = table.column_index(&a.column).ok_or_else(|| {
            EngineError::Unsupported(format!("UPDATE: unknown column {} in {tname}", a.column))
        })?;
        set_cols.push((ci, table.columns[ci].name.clone(), &a.value));
    }
    let mut where_cols = Vec::new();
    if let Some(w) = &stmt.where_clause {
        referenced_columns(w, &mut where_cols);
    }
    let keyed_set: Vec<usize> = set_cols
        .iter()
        .filter(|(_, name, _)| table.has_key_on(name))
        .map(|(ci, _, _)| *ci)
        .collect();
    let pruned_set: Vec<usize> = set_cols
        .iter()
        .filter(|(_, name, _)| !where_cols.contains(&name.to_lowercase()))
        .map(|(ci, _, _)| *ci)
        .collect();
    let matched = matching_rows(table, stmt.where_clause.as_ref())?;
    let m1 = faults.contains(FaultKind::DmlStaleIndexAfterUpdate) && !keyed_set.is_empty();
    let m3 = faults.contains(FaultKind::DmlLostUpdateThroughPrunedColumn)
        && !pruned_set.is_empty()
        && matched.len() >= 2;

    let cols: Vec<(String, String)> = table
        .columns
        .iter()
        .map(|c| (tname.clone(), c.name.clone()))
        .collect();
    let col_types: Vec<_> = table
        .columns
        .iter()
        .map(|c| (c.name.clone(), c.ty))
        .collect();

    let mut out = DmlOutcome::default();
    let t = catalog
        .table_mut(&tname)
        .ok_or_else(|| unknown_table(&tname))?;
    for (k, &i) in matched.iter().enumerate() {
        let old = t.rows[i].values.clone();
        let mut new = old.clone();
        // Every SET expression sees the pre-update row (standard semantics).
        let scope = SliceRow::new(&cols, &old);
        for (ci, _, e) in &set_cols {
            let v = eval_expr(e, &scope, &NoSubqueries)?;
            let (cname, ty) = &col_types[*ci];
            if !ty.admits(&v) {
                return Err(EngineError::Unsupported(format!(
                    "UPDATE {tname}: value {v} not admitted by column {cname} ({ty})"
                )));
            }
            new[*ci] = v;
        }
        if m1 && k == 0 {
            // The index entry moved; the base row's keyed cells did not.
            for &ci in &keyed_set {
                new[ci] = old[ci].clone();
            }
            out.fire(FaultKind::DmlStaleIndexAfterUpdate);
        }
        if m3 && k >= 1 {
            // The write path pruned columns the predicate never read.
            for &ci in &pruned_set {
                new[ci] = old[ci].clone();
            }
            out.fire(FaultKind::DmlLostUpdateThroughPrunedColumn);
        }
        t.rows[i].values = new.clone();
        out.ops.push(DmlOp::Update {
            table: tname.clone(),
            idx: i,
            old,
            new,
        });
        out.rows_affected += 1;
    }
    Ok(out)
}

fn apply_delete(
    catalog: &mut Catalog,
    faults: &FaultSet,
    stmt: &DeleteStmt,
) -> Result<DmlOutcome, EngineError> {
    let table = catalog
        .table(&stmt.table)
        .ok_or_else(|| unknown_table(&stmt.table))?;
    let tname = table.name.clone();
    let matched = matching_rows(table, stmt.where_clause.as_ref())?;
    let mut where_cols = Vec::new();
    if let Some(w) = &stmt.where_clause {
        referenced_columns(w, &mut where_cols);
    }
    let where_indices: Vec<usize> = where_cols
        .iter()
        .filter_map(|c| table.column_index(c))
        .collect();
    let m2 = faults.contains(FaultKind::DmlDeleteSkipsNullKey) && !where_indices.is_empty();

    let mut out = DmlOutcome::default();
    let mut skipped = false;
    let mut removed = 0usize;
    let t = catalog
        .table_mut(&tname)
        .ok_or_else(|| unknown_table(&tname))?;
    for &i in &matched {
        if m2
            && where_indices
                .iter()
                .any(|&ci| t.rows[i - removed].values[ci] == Value::Null)
        {
            // The delete scan used an index that never stored NULL entries.
            skipped = true;
            continue;
        }
        let idx = i - removed;
        let old = t.rows.remove(idx).values;
        removed += 1;
        out.ops.push(DmlOp::Delete {
            table: tname.clone(),
            idx,
            old,
        });
        out.rows_affected += 1;
    }
    if skipped {
        out.fire(FaultKind::DmlDeleteSkipsNullKey);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;
    use crate::profiles::{DbmsProfile, ProfileId};
    use tqs_sql::parser::parse_dml;
    use tqs_sql::types::{ColumnDef, ColumnType};
    use tqs_storage::Table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut t1 = Table::new(
            "t1",
            vec![
                ColumnDef::new("id", ColumnType::BigInt { unsigned: false }).not_null(),
                ColumnDef::new("col1", ColumnType::Int { unsigned: false }),
                ColumnDef::new("col2", ColumnType::Varchar(100)),
            ],
        )
        .with_primary_key(vec!["id"]);
        for (id, c1, c2) in [
            (1, Value::Int(10), Value::str("a")),
            (2, Value::Int(20), Value::str("b")),
            (3, Value::Null, Value::str("c")),
            (4, Value::Int(20), Value::str("d")),
        ] {
            t1.push_row(Row::new(vec![Value::Int(id), c1, c2])).unwrap();
        }
        cat.add_table(t1);
        cat
    }

    fn pristine() -> Database {
        Database::new(catalog(), DbmsProfile::pristine(ProfileId::MysqlLike))
    }

    fn seeded(kind: FaultKind) -> Database {
        Database::new(
            catalog(),
            DbmsProfile {
                faults: FaultSet::of(&[kind]),
                ..DbmsProfile::pristine(ProfileId::MysqlLike)
            },
        )
    }

    fn ids(db: &Database) -> Vec<i64> {
        db.execute_sql("SELECT t1.id FROM t1")
            .unwrap()
            .result
            .rows
            .iter()
            .map(|r| match r.get(0) {
                Value::Int(i) => *i,
                other => panic!("non-int id {other}"),
            })
            .collect()
    }

    fn run(db: &mut Database, sql: &str) -> DmlOutcome {
        db.execute_dml(&parse_dml(sql).unwrap())
            .unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let mut db = pristine();
        let out = run(
            &mut db,
            "INSERT INTO t1 (id, col1, col2) VALUES (5, 50, 'e'), (6, 60, 'f')",
        );
        assert_eq!(out.rows_affected, 2);
        assert_eq!(out.ops.len(), 2);
        assert!(out.fired.is_empty());
        assert_eq!(ids(&db), vec![1, 2, 3, 4, 5, 6]);

        let out = run(&mut db, "UPDATE t1 SET col1 = col1 + 1 WHERE t1.col1 = 20");
        assert_eq!(out.rows_affected, 2);
        assert_eq!(
            db.catalog.table("t1").unwrap().cell(1, "col1"),
            Some(&Value::Int(21))
        );

        let out = run(&mut db, "DELETE FROM t1 WHERE t1.id > 4");
        assert_eq!(out.rows_affected, 2);
        assert_eq!(ids(&db), vec![1, 2, 3, 4]);

        // NULL never matches an equality predicate (3VL).
        let out = run(&mut db, "DELETE FROM t1 WHERE t1.col1 = 999");
        assert_eq!(out.rows_affected, 0);
        assert_eq!(ids(&db), vec![1, 2, 3, 4]);
    }

    #[test]
    fn missing_insert_columns_default_to_null() {
        let mut db = pristine();
        run(&mut db, "INSERT INTO t1 (id) VALUES (9)");
        let t = db.catalog.table("t1").unwrap();
        assert_eq!(t.cell(4, "col1"), Some(&Value::Null));
        assert_eq!(t.cell(4, "col2"), Some(&Value::Null));
    }

    #[test]
    fn dml_errors_surface() {
        let mut db = pristine();
        for sql in [
            "INSERT INTO nope (id) VALUES (1)",
            "INSERT INTO t1 (ghost) VALUES (1)",
            "INSERT INTO t1 (id) VALUES ('not an int')",
            "UPDATE t1 SET ghost = 1",
            "DELETE FROM t1 WHERE t1.ghost = 1",
        ] {
            assert!(
                db.execute_dml(&parse_dml(sql).unwrap()).is_err(),
                "{sql} should fail"
            );
        }
        // Errors must not have mutated anything.
        assert_eq!(ids(&db), vec![1, 2, 3, 4]);
    }

    #[test]
    fn transactions_commit_and_rollback() {
        let mut db = pristine();
        assert!(db.execute_dml(&DmlStmt::Commit).is_err());
        assert!(db.execute_dml(&DmlStmt::Rollback).is_err());

        run(&mut db, "BEGIN");
        assert!(db.in_txn());
        assert!(db.execute_dml(&DmlStmt::Begin).is_err(), "nested BEGIN");
        run(&mut db, "INSERT INTO t1 (id, col1) VALUES (5, 50)");
        run(&mut db, "DELETE FROM t1 WHERE t1.id = 1");
        assert_eq!(ids(&db), vec![2, 3, 4, 5], "own writes visible in txn");
        assert_eq!(db.txn_ops().len(), 2);
        run(&mut db, "ROLLBACK");
        assert!(!db.in_txn());
        assert_eq!(ids(&db), vec![1, 2, 3, 4], "rollback restores exactly");

        run(&mut db, "BEGIN");
        run(&mut db, "UPDATE t1 SET col2 = 'z' WHERE t1.id = 2");
        let out = run(&mut db, "COMMIT");
        assert_eq!(out.ops.len(), 1, "commit returns the effective txn ops");
        assert_eq!(
            db.catalog.table("t1").unwrap().cell(1, "col2"),
            Some(&Value::str("z"))
        );
    }

    #[test]
    fn ops_encode_decode_roundtrip() {
        let ops = vec![
            DmlOp::Insert {
                table: "t1".into(),
                idx: 4,
                row: vec![Value::Int(5), Value::Null, Value::str("x'y\"z")],
            },
            DmlOp::Update {
                table: "t1".into(),
                idx: 0,
                old: vec![Value::Int(1), Value::Int(10), Value::str("a")],
                new: vec![Value::Int(1), Value::Int(11), Value::str("a")],
            },
            DmlOp::Delete {
                table: "t1".into(),
                idx: 2,
                old: vec![Value::Int(3), Value::Null, Value::str("c")],
            },
        ];
        for op in &ops {
            assert_eq!(&DmlOp::decode(&op.encode()).unwrap(), op);
        }
        assert!(DmlOp::decode(&[Value::Int(1)]).is_err());
        assert!(DmlOp::decode(&[
            Value::str("X"),
            Value::str("t"),
            Value::Int(0),
            Value::Int(0)
        ])
        .is_err());
    }

    #[test]
    fn ops_apply_then_revert_is_identity() {
        let mut db = pristine();
        let before = db.catalog.clone();
        let mut applied = Vec::new();
        for sql in [
            "INSERT INTO t1 (id, col1) VALUES (5, 50)",
            "UPDATE t1 SET col1 = 0 WHERE t1.id = 2",
            "DELETE FROM t1 WHERE t1.id = 1",
        ] {
            applied.extend(run(&mut db, sql).ops);
        }
        // Replaying the recorded ops over the starting state reproduces the
        // live catalog; reverting in reverse order restores the start.
        let mut replay = before.clone();
        for op in &applied {
            op.apply(&mut replay);
        }
        assert_eq!(
            replay.table("t1").unwrap().rows,
            db.catalog.table("t1").unwrap().rows
        );
        for op in applied.iter().rev() {
            op.revert(&mut db.catalog);
        }
        assert_eq!(
            db.catalog.table("t1").unwrap().rows,
            before.table("t1").unwrap().rows
        );
    }

    #[test]
    fn m1_stale_index_keeps_first_rows_keyed_cells() {
        let mut db = seeded(FaultKind::DmlStaleIndexAfterUpdate);
        // id is the primary key: writing it triggers the stale-index shape.
        let out = run(&mut db, "UPDATE t1 SET id = id + 100 WHERE t1.col1 = 20");
        assert_eq!(out.fired, vec![FaultKind::DmlStaleIndexAfterUpdate]);
        assert_eq!(ids(&db), vec![1, 2, 3, 104], "first match kept its old id");
        // A non-keyed UPDATE stays clean.
        let out = run(&mut db, "UPDATE t1 SET col2 = 'w' WHERE t1.id = 1");
        assert!(out.fired.is_empty());
    }

    #[test]
    fn m2_delete_skips_null_key_rows() {
        let mut db = seeded(FaultKind::DmlDeleteSkipsNullKey);
        let out = run(
            &mut db,
            "DELETE FROM t1 WHERE t1.col1 = 20 OR (t1.col1 IS NULL)",
        );
        assert_eq!(out.fired, vec![FaultKind::DmlDeleteSkipsNullKey]);
        // Row 3 (col1 NULL) matched but was skipped; rows 2 and 4 went.
        assert_eq!(ids(&db), vec![1, 3]);
        assert_eq!(out.rows_affected, 2);
    }

    #[test]
    fn m3_loses_pruned_writes_after_first_match() {
        let mut db = seeded(FaultKind::DmlLostUpdateThroughPrunedColumn);
        // col2 is written but never read by WHERE → pruned on rows 2+.
        let out = run(&mut db, "UPDATE t1 SET col2 = 'hit' WHERE t1.col1 = 20");
        assert_eq!(out.fired, vec![FaultKind::DmlLostUpdateThroughPrunedColumn]);
        let t = db.catalog.table("t1").unwrap();
        assert_eq!(t.cell(1, "col2"), Some(&Value::str("hit")));
        assert_eq!(
            t.cell(3, "col2"),
            Some(&Value::str("d")),
            "second write lost"
        );
        // Single-row matches never trigger the shape.
        let out = run(&mut db, "UPDATE t1 SET col2 = 'one' WHERE t1.id = 1");
        assert!(out.fired.is_empty());
    }

    #[test]
    fn m4_rollback_leaks_first_inserted_row() {
        let mut db = seeded(FaultKind::DmlRollbackLeaksInsertedRow);
        run(&mut db, "BEGIN");
        run(&mut db, "INSERT INTO t1 (id, col1) VALUES (7, 70)");
        run(&mut db, "INSERT INTO t1 (id, col1) VALUES (8, 80)");
        let out = run(&mut db, "ROLLBACK");
        assert_eq!(out.fired, vec![FaultKind::DmlRollbackLeaksInsertedRow]);
        assert_eq!(out.ops.len(), 1, "the leak is itself an op");
        assert_eq!(ids(&db), vec![1, 2, 3, 4, 7], "first insert leaked through");
        // A rollback of a txn with no inserts stays clean.
        run(&mut db, "BEGIN");
        run(&mut db, "DELETE FROM t1 WHERE t1.id = 7");
        let out = run(&mut db, "ROLLBACK");
        assert!(out.fired.is_empty());
        assert_eq!(ids(&db), vec![1, 2, 3, 4, 7]);
    }

    #[test]
    fn m5_commit_drops_the_last_buffered_change() {
        let mut db = seeded(FaultKind::DmlCommitBoundaryTornVisibility);
        run(&mut db, "BEGIN");
        run(&mut db, "INSERT INTO t1 (id, col1) VALUES (7, 70)");
        run(&mut db, "INSERT INTO t1 (id, col1) VALUES (8, 80)");
        let out = run(&mut db, "COMMIT");
        assert_eq!(out.fired, vec![FaultKind::DmlCommitBoundaryTornVisibility]);
        assert_eq!(out.ops.len(), 1, "only the surviving op is durable");
        assert_eq!(ids(&db), vec![1, 2, 3, 4, 7], "last change torn off");
        // An empty commit has nothing to tear.
        run(&mut db, "BEGIN");
        let out = run(&mut db, "COMMIT");
        assert!(out.fired.is_empty());
    }

    #[test]
    fn pristine_dml_never_fires() {
        let mut db = pristine();
        for sql in [
            "BEGIN",
            "INSERT INTO t1 (id, col1) VALUES (7, 70)",
            "UPDATE t1 SET id = id + 10, col2 = 'q' WHERE t1.col1 = 20",
            "DELETE FROM t1 WHERE t1.col1 IS NULL",
            "COMMIT",
        ] {
            let out = run(&mut db, sql);
            assert!(out.fired.is_empty(), "{sql} fired {:?}", out.fired);
        }
    }
}
